//! Overlay-equivalence determinism: the pre-decoded `PredictedTrace`
//! replay (and the engine's batched fast path over it) must be an
//! invisible optimisation. For any configuration — every policy, both
//! cache geometries, prefetchers on, classification on, speculative
//! history, pipelined bus — an engine fed a `PredictedSource` must produce
//! a `SimResult` byte-identical to one fed the underlying
//! `RecordedSource`.

use std::sync::Arc;

use specfetch_bpred::GhrUpdate;
use specfetch_core::{FetchPolicy, SimConfig, Simulator};
use specfetch_isa::{Addr, DynInstr, ProgramBuilder};
use specfetch_synth::{Workload, WorkloadSpec};
use specfetch_trace::{PredictedTrace, RecordedTrace, VecSource};

const INSTRS: u64 = 30_000;

fn record(workload: &Workload, seed: u64) -> Arc<RecordedTrace> {
    let mut live = workload.executor(seed);
    Arc::new(RecordedTrace::record(&mut live, INSTRS))
}

/// Runs one config over both replay paths and demands exact equality.
fn assert_equivalent(rec: &Arc<RecordedTrace>, cfg: SimConfig, what: &str) {
    let overlay = Arc::new(PredictedTrace::build(rec));
    let via_recorded = Simulator::new(cfg).run(RecordedTrace::source(rec));
    let via_overlay = Simulator::new(cfg).run(PredictedTrace::source(&overlay));
    assert_eq!(via_overlay, via_recorded, "{what}: overlay replay diverged");
    assert_eq!(
        via_overlay.ispi().to_bits(),
        via_recorded.ispi().to_bits(),
        "{what}: ISPI must be bit-identical"
    );
}

#[test]
fn every_policy_matches_on_a_branchy_workload() {
    let w = Workload::generate(&WorkloadSpec::c_like("ovl", 7)).unwrap();
    let rec = record(&w, 3);
    for policy in FetchPolicy::ALL {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        assert_equivalent(&rec, cfg, &format!("{policy}"));
    }
}

#[test]
fn sweep_axes_match() {
    let w = Workload::generate(&WorkloadSpec::cpp_like("ovl-axes", 11)).unwrap();
    let rec = record(&w, 5);
    let base = SimConfig::paper_baseline();

    let mut small = base;
    small.icache.size_bytes = 1024;
    small.miss_penalty = 20;
    assert_equivalent(&rec, small, "1K cache, 20-cycle penalty");

    let mut depth1 = base;
    depth1.max_unresolved = 1;
    assert_equivalent(&rec, depth1, "speculation depth 1");

    let mut classify = base;
    classify.classify = true;
    assert_equivalent(&rec, classify, "miss classification");

    let mut piped = base;
    piped.bus_slots = 2;
    assert_equivalent(&rec, piped, "pipelined bus");
}

#[test]
fn prefetchers_and_stream_buffer_match() {
    // These disable the batched fast path (per-access trigger side
    // effects) but must still replay identically through the overlay
    // cursor itself.
    let w = Workload::generate(&WorkloadSpec::c_like("ovl-pf", 13)).unwrap();
    let rec = record(&w, 2);
    let base = SimConfig::paper_baseline();

    let mut pf = base;
    pf.prefetch = true;
    assert_equivalent(&rec, pf, "next-line prefetch");

    let mut tpf = base;
    tpf.target_prefetch = true;
    tpf.prefetch = true;
    assert_equivalent(&rec, tpf, "target + next-line prefetch");

    let mut sb = base;
    sb.stream_buffer = true;
    assert_equivalent(&rec, sb, "stream buffer");
}

#[test]
fn speculative_history_ablation_matches() {
    // Speculative GHR update is outside what the outcome replay models;
    // the engine must skip the cross-check and still be byte-identical.
    let w = Workload::generate(&WorkloadSpec::c_like("ovl-ghr", 17)).unwrap();
    let rec = record(&w, 4);
    let mut cfg = SimConfig::paper_baseline();
    cfg.bpred.ghr_update = GhrUpdate::Speculative;
    assert_equivalent(&rec, cfg, "speculative GHR");
}

#[test]
fn straight_line_code_exercises_the_batch_path() {
    // Long sequential runs are where the batched fast path does the most
    // work; misses at every line boundary stress the batch/stall handoff.
    let n = 4096usize;
    let mut b = ProgramBuilder::new(Addr::new(0));
    b.push_seq(n);
    b.set_entry(Addr::new(0));
    let p = b.finish().unwrap();
    let path: Vec<DynInstr> = (0..n).map(|i| DynInstr::seq(Addr::from_word(i as u64))).collect();
    let mut live = VecSource::new(p, path);
    let rec = Arc::new(RecordedTrace::record(&mut live, u64::MAX));

    for policy in FetchPolicy::ALL {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        cfg.icache.size_bytes = 1024; // force capacity misses mid-run
        assert_equivalent(&rec, cfg, &format!("straight-line {policy}"));
    }
}

#[test]
fn truncated_overlay_matches_truncated_recording() {
    // A recording cut mid-run (tail_next carrying the final successor)
    // must replay identically through the overlay.
    let w = Workload::generate(&WorkloadSpec::c_like("ovl-cut", 23)).unwrap();
    let mut live = w.executor(9);
    let rec = Arc::new(RecordedTrace::record(&mut live, 7_777));
    assert_equivalent(&rec, SimConfig::paper_baseline(), "truncated recording");
}
