//! Lockstep-equivalence determinism: `run_lockstep` must be an invisible
//! *scheduling* optimisation. For any batch of configurations advanced in
//! lockstep over one shared overlay pass, every lane's `SimResult` must be
//! byte-identical to running that configuration alone through
//! `Simulator::run` — the sequential path the lockstep executor replaces.
//!
//! The grids here are randomized (deterministically — a tiny LCG, no
//! external crates) across every axis the sweep engine exposes, so the
//! batch mixes policies, cache geometries, speculation depths, bus
//! shapes, prefetchers, and predictor variants in one lane set: exactly
//! the heterogeneity `run_grid` schedules in production.

use std::sync::Arc;

use specfetch_bpred::GhrUpdate;
use specfetch_core::{run_lockstep, FetchPolicy, FrontEnd, SimConfig, Simulator};
use specfetch_synth::{Workload, WorkloadSpec};
use specfetch_trace::{PredictedTrace, RecordedTrace};

fn overlay(spec: &WorkloadSpec, seed: u64, instrs: u64) -> Arc<PredictedTrace> {
    let w = Workload::generate(spec).unwrap();
    let mut live = w.executor(seed);
    let rec = Arc::new(RecordedTrace::record(&mut live, instrs));
    Arc::new(PredictedTrace::build(&rec))
}

/// Deterministic splitmix64 step — enough randomness to shuffle axis
/// choices, with no dependency and no flaky seeds.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick<T: Copy>(rng: &mut u64, choices: &[T]) -> T {
    choices[(next(rng) % choices.len() as u64) as usize]
}

/// A random but always-valid configuration: every axis is drawn from the
/// values the sweep grid exposes, and the one cross-axis constraint
/// (`prefetch` and `stream_buffer` are mutually exclusive) is respected
/// by drawing the prefetcher as a single four-way choice.
fn random_config(rng: &mut u64) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = pick(rng, &FetchPolicy::ALL);
    cfg.icache.size_bytes = pick(rng, &[4 * 1024, 8 * 1024, 32 * 1024]);
    cfg.icache.assoc = pick(rng, &[1, 2]);
    cfg.miss_penalty = pick(rng, &[5, 10, 20]);
    cfg.max_unresolved = pick(rng, &[1, 2, 4, 8]);
    cfg.bus_slots = pick(rng, &[1, 2]);
    cfg.classify = next(rng).is_multiple_of(2);
    match next(rng) % 4 {
        0 => cfg.prefetch = true,
        1 => cfg.stream_buffer = true,
        2 => cfg.target_prefetch = true,
        _ => {}
    }
    if next(rng).is_multiple_of(2) {
        cfg.bpred.ghr_update = GhrUpdate::Speculative;
    }
    cfg.validate().expect("randomized config must stay valid");
    cfg
}

/// Runs `cfgs` as one lockstep batch and demands each lane's result be
/// exactly the sequential result for that configuration.
fn assert_batch_matches_sequential(ovl: &Arc<PredictedTrace>, cfgs: &[SimConfig], what: &str) {
    let fronts: Vec<FrontEnd> =
        cfgs.iter().map(|c| FrontEnd::build(*c).expect("valid config")).collect();
    let outcomes = run_lockstep(ovl, fronts);
    assert_eq!(outcomes.len(), cfgs.len(), "{what}: one outcome per lane");
    for (i, (cfg, outcome)) in cfgs.iter().zip(&outcomes).enumerate() {
        let got = outcome.as_ref().unwrap_or_else(|_| panic!("{what}: lane {i} panicked"));
        let want = Simulator::new(*cfg).run(PredictedTrace::source(ovl));
        assert_eq!(got, &want, "{what}: lane {i} ({:?}) diverged from sequential", cfg.policy);
        assert_eq!(
            got.ispi().to_bits(),
            want.ispi().to_bits(),
            "{what}: lane {i} ISPI must be bit-identical"
        );
    }
}

#[test]
fn randomized_grids_match_sequential() {
    let ovl = overlay(&WorkloadSpec::c_like("lockstep", 7), 3, 30_000);
    let mut rng = 0x5eed_0001u64;
    for round in 0..3 {
        let cfgs: Vec<SimConfig> = (0..8).map(|_| random_config(&mut rng)).collect();
        assert_batch_matches_sequential(&ovl, &cfgs, &format!("round {round}"));
    }
}

#[test]
fn duplicate_lanes_agree_with_each_other() {
    // The same configuration twice in one batch must produce the same
    // result in both lanes — lanes share the decode stream but nothing
    // mutable, so duplicates are the sharpest aliasing probe.
    let ovl = overlay(&WorkloadSpec::cpp_like("lockstep-dup", 11), 5, 30_000);
    let cfg = SimConfig::paper_baseline();
    let cfgs = [cfg, cfg, cfg];
    assert_batch_matches_sequential(&ovl, &cfgs, "duplicates");
}

#[test]
fn single_lane_batch_matches_sequential() {
    // Degenerate batch: the lockstep scheduler with one lane must still
    // be exactly the sequential run (this is what run_grid dispatches
    // for a one-point group).
    let ovl = overlay(&WorkloadSpec::c_like("lockstep-one", 13), 2, 30_000);
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = FetchPolicy::Resume;
    assert_batch_matches_sequential(&ovl, &[cfg], "single lane");
}

#[test]
#[ignore = "multi-minute in debug builds; run with --release -- --ignored"]
fn randomized_grids_match_sequential_500k() {
    // The long variant mirrors tests/overlay_equivalence.rs: same
    // assertion, production-scale instruction window, wider batch.
    let ovl = overlay(&WorkloadSpec::c_like("lockstep-long", 7), 3, 500_000);
    let mut rng = 0x5eed_0500u64;
    let mut cfgs: Vec<SimConfig> = (0..12).map(|_| random_config(&mut rng)).collect();
    // Pin the full policy axis into the batch on top of the random draw.
    for policy in FetchPolicy::ALL {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        cfgs.push(cfg);
    }
    assert_batch_matches_sequential(&ovl, &cfgs, "500k");
}
