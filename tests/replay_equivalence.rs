//! Replay-equivalence determinism: the shared-trace cache must be an
//! invisible optimisation.  Running a benchmark through the legacy
//! interpret-per-run path and through the record-once/replay-many path
//! must produce byte-identical `SimResult`s — same event counts, same
//! ISPI — for every policy, because both paths feed the engine the same
//! retired-instruction stream.

use specfetch_core::{FetchPolicy, SimConfig};
use specfetch_experiments::{simulate_benchmark, RunOptions};
use specfetch_synth::suite::Benchmark;

const INSTRS: u64 = 50_000;

/// One benchmark, two policies (the eager baseline and the paper's best
/// policy), both modes: results must match exactly, field for field.
#[test]
fn legacy_and_shared_trace_paths_are_equivalent() {
    let bench = Benchmark::by_name("gcc").expect("gcc is in the suite");
    let opts = RunOptions::new().with_instrs(INSTRS);

    for policy in [FetchPolicy::Optimistic, FetchPolicy::Resume] {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;

        let shared = simulate_benchmark(bench, cfg, opts);
        let legacy = simulate_benchmark(bench, cfg, opts.with_share_traces(false));

        assert_eq!(
            shared, legacy,
            "{policy:?}: shared-trace result diverged from the legacy interpreter path"
        );
        assert_eq!(
            shared.ispi().to_bits(),
            legacy.ispi().to_bits(),
            "{policy:?}: ISPI must be bit-identical, not merely approximately equal"
        );
        assert_eq!(shared.correct_instrs, INSTRS);
    }
}

/// Replaying the same cached trace twice is itself deterministic: a
/// second shared-mode run reproduces the first exactly.
#[test]
fn shared_trace_replay_is_deterministic_across_runs() {
    let bench = Benchmark::by_name("li").expect("li is in the suite");
    let opts = RunOptions::new().with_instrs(INSTRS);
    let cfg = SimConfig::paper_baseline();

    let first = simulate_benchmark(bench, cfg, opts);
    let second = simulate_benchmark(bench, cfg, opts);
    assert_eq!(first, second);
}
