//! Property tests: the `.sft` trace formats and the record/replay pair
//! are lossless for arbitrary valid programs and outcome streams.

use proptest::prelude::*;

use specfetch::isa::{Addr, InstrKind, Program, ProgramBuilder};
use specfetch::trace::{
    outcomes_of, read_trace_binary, read_trace_text, write_trace_binary, write_trace_text,
    Outcome, PathSource, Trace,
};

/// A strategy for valid programs: 4..=96 instructions with in-image
/// targets.
fn arb_program() -> impl Strategy<Value = Program> {
    (4usize..=96).prop_flat_map(|n| {
        let instr = (0u8..7, 0..n).prop_map(move |(op, t)| (op, t));
        (proptest::collection::vec(instr, n), 0..n).prop_map(move |(instrs, entry)| {
            let mut b = ProgramBuilder::new(Addr::new(0x4000));
            let addr_of = |i: usize| Addr::new(0x4000 + 4 * i as u64);
            for &(op, t) in &instrs {
                let target = addr_of(t);
                b.push(match op {
                    0 | 1 => InstrKind::Seq,
                    2 => InstrKind::CondBranch { target },
                    3 => InstrKind::Jump { target },
                    4 => InstrKind::Call { target },
                    5 => InstrKind::Return,
                    _ => InstrKind::IndirectCall,
                });
            }
            b.set_entry(addr_of(entry));
            b.finish().expect("targets are in-image by construction")
        })
    })
}

fn arb_outcomes(program: &Program) -> impl Strategy<Value = Vec<Outcome>> {
    let len = program.len();
    let outcome = (0u8..3, 0..len).prop_map(move |(tag, t)| match tag {
        0 => Outcome::not_taken(),
        1 => Outcome::taken(),
        _ => Outcome::indirect(Addr::new(0x4000 + 4 * t as u64)),
    });
    proptest::collection::vec(outcome, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Text serialisation round-trips any trace exactly.
    #[test]
    fn text_round_trip((program, outcomes) in arb_program().prop_flat_map(|p| {
        let o = arb_outcomes(&p);
        (Just(p), o)
    })) {
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_text(&trace, &mut buf).unwrap();
        let back = read_trace_text(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Binary serialisation round-trips any trace exactly.
    #[test]
    fn binary_round_trip((program, outcomes) in arb_program().prop_flat_map(|p| {
        let o = arb_outcomes(&p);
        (Just(p), o)
    })) {
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Truncating a binary trace never panics and never parses.
    #[test]
    fn binary_truncation_is_rejected((program, outcomes, frac) in arb_program().prop_flat_map(|p| {
        let o = arb_outcomes(&p);
        (Just(p), o, 0.0f64..1.0)
    })) {
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assert!(read_trace_binary(&buf[..cut]).is_err());
    }
}

/// record(replay(trace)) reproduces the trace's effective prefix: the
/// replayed path, re-recorded, replays identically.
#[test]
fn record_replay_fixpoint() {
    let w = specfetch::synth::Workload::generate(&specfetch::synth::WorkloadSpec::cpp_like(
        "fixpoint", 5,
    ))
    .unwrap();
    let mut live = w.executor(3);
    let trace = Trace::record(&mut live, 20_000);

    // Replay and re-record.
    let mut replay = trace.clone().into_source();
    let mut path = Vec::new();
    while let Some(d) = replay.next_instr() {
        path.push(d);
    }
    let rerecorded = outcomes_of(&path);
    assert_eq!(rerecorded.as_slice(), trace.outcomes());

    // And the replayed path itself matches the original executor.
    let mut live2 = w.executor(3);
    for d in &path {
        assert_eq!(Some(*d), live2.next_instr());
    }
}
