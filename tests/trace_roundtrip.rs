//! Property-style tests: the `.sft` trace formats and the record/replay
//! pair are lossless for arbitrary valid programs and outcome streams.
//!
//! Cases are drawn from the in-repo [`SynthRng`] under fixed seeds, so the
//! sweep is deterministic and reproducible.

use specfetch::isa::{Addr, InstrKind, Program, ProgramBuilder};
use specfetch::synth::SynthRng;
use specfetch::trace::{
    outcomes_of, read_trace_binary, read_trace_text, write_trace_binary, write_trace_text, Outcome,
    PathSource, Trace,
};

const CASES: usize = 64;

/// A random valid program: 4..=96 instructions with in-image targets.
fn random_program(rng: &mut SynthRng) -> Program {
    let n = rng.gen_range(4usize..=96);
    let mut b = ProgramBuilder::new(Addr::new(0x4000));
    let addr_of = |i: usize| Addr::new(0x4000 + 4 * i as u64);
    for _ in 0..n {
        let target = addr_of(rng.gen_range(0usize..=n - 1));
        b.push(match rng.gen_range(0u32..=6) {
            0 | 1 => InstrKind::Seq,
            2 => InstrKind::CondBranch { target },
            3 => InstrKind::Jump { target },
            4 => InstrKind::Call { target },
            5 => InstrKind::Return,
            _ => InstrKind::IndirectCall,
        });
    }
    b.set_entry(addr_of(rng.gen_range(0usize..=n - 1)));
    b.finish().expect("targets are in-image by construction")
}

fn random_outcomes(rng: &mut SynthRng, program: &Program) -> Vec<Outcome> {
    let len = program.len();
    let n = rng.gen_range(0usize..=199);
    (0..n)
        .map(|_| match rng.gen_range(0u32..=2) {
            0 => Outcome::not_taken(),
            1 => Outcome::taken(),
            _ => Outcome::indirect(Addr::new(0x4000 + 4 * rng.gen_range(0usize..=len - 1) as u64)),
        })
        .collect()
}

/// Text serialisation round-trips any trace exactly.
#[test]
fn text_round_trip() {
    let mut rng = SynthRng::seed_from_u64(0x7E87);
    for case in 0..CASES {
        let program = random_program(&mut rng);
        let outcomes = random_outcomes(&mut rng, &program);
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_text(&trace, &mut buf).unwrap();
        let back = read_trace_text(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, trace, "case {case}");
    }
}

/// Binary serialisation round-trips any trace exactly.
#[test]
fn binary_round_trip() {
    let mut rng = SynthRng::seed_from_u64(0xB17);
    for case in 0..CASES {
        let program = random_program(&mut rng);
        let outcomes = random_outcomes(&mut rng, &program);
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let back = read_trace_binary(buf.as_slice()).unwrap();
        assert_eq!(back, trace, "case {case}");
    }
}

/// Truncating a binary trace never panics and never parses.
#[test]
fn binary_truncation_is_rejected() {
    let mut rng = SynthRng::seed_from_u64(0x72C);
    for case in 0..CASES {
        let program = random_program(&mut rng);
        let outcomes = random_outcomes(&mut rng, &program);
        let trace = Trace::new(program, outcomes);
        let mut buf = Vec::new();
        write_trace_binary(&trace, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * rng.gen_f64()) as usize;
        assert!(read_trace_binary(&buf[..cut]).is_err(), "case {case}: cut at {cut}");
    }
}

/// record(replay(trace)) reproduces the trace's effective prefix: the
/// replayed path, re-recorded, replays identically.
#[test]
fn record_replay_fixpoint() {
    let w = specfetch::synth::Workload::generate(&specfetch::synth::WorkloadSpec::cpp_like(
        "fixpoint", 5,
    ))
    .unwrap();
    let mut live = w.executor(3);
    let trace = Trace::record(&mut live, 20_000);

    // Replay and re-record.
    let mut replay = trace.clone().into_source();
    let mut path = Vec::new();
    while let Some(d) = replay.next_instr() {
        path.push(d);
    }
    let rerecorded = outcomes_of(&path);
    assert_eq!(rerecorded.as_slice(), trace.outcomes());

    // And the replayed path itself matches the original executor.
    let mut live2 = w.executor(3);
    for d in &path {
        assert_eq!(Some(*d), live2.next_instr());
    }
}
