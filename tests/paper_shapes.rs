//! End-to-end checks that the paper's headline qualitative results hold
//! on the calibrated suite (moderate budgets; the full-budget numbers are
//! in EXPERIMENTS.md).

use specfetch::core::FetchPolicy;
use specfetch::experiments::experiments::{figure3, table4, table5};
use specfetch::experiments::RunOptions;

fn opts() -> RunOptions {
    RunOptions::new().with_instrs(150_000)
}

/// §5.1.2: "Optimistic is always better than Pessimistic" (baseline
/// penalty) — checked on the suite average and on nearly every benchmark.
#[test]
fn optimistic_beats_pessimistic_at_small_penalty() {
    let rows = table5::data(&opts());
    let d4: Vec<_> = rows.iter().filter(|r| r.depth == 4).collect();
    let mut wins = 0;
    for r in &d4 {
        if r.ispi[1].as_ref().unwrap() < r.ispi[3].as_ref().unwrap() {
            wins += 1;
        }
    }
    assert!(wins >= 12, "Optimistic beat Pessimistic on only {wins}/13 benchmarks");
}

/// §5.1.2: "Resume performs the best, and does as well as Oracle."
#[test]
fn resume_tracks_oracle() {
    let rows = table5::data(&opts());
    for r in rows.iter().filter(|r| r.depth == 4) {
        let (oracle, resume) = (*r.ispi[0].as_ref().unwrap(), *r.ispi[2].as_ref().unwrap());
        assert!(
            resume <= oracle * 1.05 + 0.02,
            "{}: Resume {resume:.3} strays from Oracle {oracle:.3}",
            r.benchmark.name
        );
    }
}

/// §5.2.2: deeper speculation lowers ISPI for every policy (suite
/// average), with the depth-1 -> 2 step bigger than 2 -> 4.
#[test]
fn depth_effect_matches_paper() {
    let rows = table5::data(&opts());
    let avg = |depth: usize, p: usize| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| r.depth == depth)
            .map(|r| *r.ispi[p].as_ref().unwrap())
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    for p in 0..5 {
        let (d1, d2, d4) = (avg(1, p), avg(2, p), avg(4, p));
        assert!(d2 < d1 && d4 <= d2 + 0.01, "policy {p}: {d1:.3} -> {d2:.3} -> {d4:.3}");
        assert!(
            (d1 - d2) > (d2 - d4) * 0.8,
            "policy {p}: first depth step should dominate ({d1:.3}/{d2:.3}/{d4:.3})"
        );
    }
}

/// §5.1.1 (Table 4): the wrong-path prefetch effect beats pollution, and
/// Fortran codes barely notice speculation.
#[test]
fn classification_shape() {
    let rows = table4::data(&opts());
    let avg_spr: f64 =
        rows.iter().map(|r| r.class.as_ref().unwrap().spec_prefetch_pct()).sum::<f64>()
            / rows.len() as f64;
    let avg_spo: f64 =
        rows.iter().map(|r| r.class.as_ref().unwrap().spec_pollute_pct()).sum::<f64>()
            / rows.len() as f64;
    assert!(avg_spr > avg_spo, "SPr {avg_spr:.2} must exceed SPo {avg_spo:.2}");

    // Fortran codes: both speculation effects are minimal (paper: "both
    // effects are minimal").
    for r in rows.iter().take(3) {
        assert!(
            r.class.as_ref().unwrap().spec_pollute_pct() < 0.5,
            "{}: Fortran pollution {:.2}% too high",
            r.benchmark.name,
            r.class.as_ref().unwrap().spec_pollute_pct()
        );
    }
}

/// §5.3: prefetching helps every policy at the small penalty and narrows
/// the policy spread.
#[test]
fn prefetch_helps_at_small_penalty() {
    let bars = figure3::data(&opts());
    for policy in figure3::PREFETCH_POLICIES {
        let avg = |pref: bool| {
            let xs: Vec<f64> = bars
                .iter()
                .filter(|b| b.policy == policy && b.prefetch == pref)
                .map(|b| b.result.as_ref().unwrap().ispi())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg(true) < avg(false), "{policy}: prefetch did not help");
    }
    // "Resume without next-line prefetching gives approximately the same
    // performance as Pessimistic with next-line prefetching."
    let avg_of = |policy: FetchPolicy, pref: bool| {
        let xs: Vec<f64> = bars
            .iter()
            .filter(|b| b.policy == policy && b.prefetch == pref)
            .map(|b| b.result.as_ref().unwrap().ispi())
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let resume_plain = avg_of(FetchPolicy::Resume, false);
    let pess_pref = avg_of(FetchPolicy::Pessimistic, true);
    assert!(
        (resume_plain - pess_pref).abs() < 0.35 * resume_plain,
        "Resume plain {resume_plain:.3} should approximate Pessimistic+Pref {pess_pref:.3}"
    );
}
