//! Golden regression: each `MissGate` must reproduce the pre-refactor
//! engine's per-benchmark `SimResult` exactly.
//!
//! The fixture was generated at commit d88d115 — the last revision where
//! the five paper policies were `match` arms inside `Engine::on_miss` —
//! by running this same harness with `SPECFETCH_REGEN_FIXTURE=1`. Any
//! digest drift means the extracted gates changed simulated behaviour,
//! which the refactor explicitly must not do.

use std::fmt::Write as _;

use specfetch::core::{FetchPolicy, SimConfig, SimResult, Simulator};
use specfetch::synth::suite::Benchmark;
use specfetch::trace::PathSource;

const INSTRS: u64 = 30_000;
const FIXTURE: &str = include_str!("fixtures/gate_results.txt");

fn digest(r: &SimResult) -> String {
    format!(
        "cycles={} instrs={} lost={}/{}/{}/{}/{}/{} pht={} btbmf={} btbmp={} \
         mf={} mp={} tmp={} traffic={}/{}/{}/{} pf={}/{}",
        r.cycles,
        r.correct_instrs,
        r.lost.branch_full,
        r.lost.branch,
        r.lost.force_resolve,
        r.lost.rt_icache,
        r.lost.wrong_icache,
        r.lost.bus,
        r.pht_mispredict_slots,
        r.btb_misfetch_slots,
        r.btb_mispredict_slots,
        r.misfetches,
        r.mispredicts,
        r.target_mispredicts,
        r.traffic_demand_correct,
        r.traffic_demand_wrong,
        r.traffic_prefetch,
        r.traffic_target_prefetch,
        r.prefetches_issued,
        r.prefetch_hits,
    )
}

fn current() -> String {
    let mut out = String::new();
    for bench in Benchmark::all() {
        let w = bench.workload().expect("calibrated specs generate");
        for policy in FetchPolicy::ALL {
            let mut cfg = SimConfig::paper_baseline();
            cfg.policy = policy;
            let r = Simulator::new(cfg).run(w.executor(bench.path_seed()).take_instrs(INSTRS));
            writeln!(out, "{} {} {}", bench.name, policy.short_name(), digest(&r)).unwrap();
        }
    }
    out
}

#[test]
fn gates_reproduce_pre_refactor_results() {
    let now = current();
    if std::env::var_os("SPECFETCH_REGEN_FIXTURE").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/gate_results.txt");
        std::fs::write(path, &now).expect("write fixture");
        return;
    }
    for (got, want) in now.lines().zip(FIXTURE.lines()) {
        assert_eq!(got, want, "SimResult digest drifted from the pre-refactor engine");
    }
    assert_eq!(
        now.lines().count(),
        FIXTURE.lines().count(),
        "fixture row count changed — regenerate deliberately, never casually"
    );
}
