//! Property-style tests of the whole fetch engine over randomly generated
//! (valid) workloads: for any program, path, policy, and machine
//! configuration, the engine must terminate, balance its slot accounting,
//! and respect each policy's structural guarantees.
//!
//! Cases are drawn from the in-repo [`SynthRng`] under a fixed seed, so the
//! sweep is deterministic and any failure names its reproducing case.

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::{SynthRng, Workload, WorkloadSpec};
use specfetch::trace::PathSource;

#[derive(Clone, Debug)]
struct Scenario {
    spec: WorkloadSpec,
    path_seed: u64,
    policy: FetchPolicy,
    miss_penalty: u64,
    max_unresolved: usize,
    prefetch: bool,
    target_prefetch: bool,
    small_cache: bool,
}

fn scenario(rng: &mut SynthRng) -> Scenario {
    let gen_seed = rng.gen_range(0u64..=999);
    let spec = match rng.gen_range(0usize..=2) {
        0 => WorkloadSpec::fortran_like("prop", gen_seed),
        1 => WorkloadSpec::c_like("prop", gen_seed),
        _ => WorkloadSpec::cpp_like("prop", gen_seed),
    };
    Scenario {
        spec,
        path_seed: rng.gen_range(0u64..=999),
        policy: FetchPolicy::ALL[rng.gen_range(0usize..=4)],
        miss_penalty: [2u64, 5, 13, 20][rng.gen_range(0usize..=3)],
        max_unresolved: [1usize, 2, 4, 8][rng.gen_range(0usize..=3)],
        prefetch: rng.gen_bool(0.5),
        target_prefetch: rng.gen_bool(0.5),
        small_cache: rng.gen_bool(0.5),
    }
}

const INSTRS: u64 = 6_000;
const CASES: usize = 48;

/// Cross-policy orderings that hold for *any* workload and machine
/// configuration, replaying the same path under each policy.
///
/// Note what is deliberately NOT asserted: "Oracle's ISPI lower-bounds
/// every policy". That is false — in this model and in the paper itself
/// (Table 6: Resume 0.51 vs Oracle 0.52 on doduc at 32K). Oracle
/// squashes wrong-path fills, so it forgoes their prefetch benefit; a
/// fetching policy that fills a wrong-path line the correct path needs
/// moments later beats Oracle outright. The orderings below are the
/// ones the gate mechanisms make structural:
///
/// * **Oracle <= Pessimistic** — both generate exactly the correct-path
///   fills (footnote 3), but Pessimistic additionally delays every
///   right-path miss behind the resolve gate, so it can only lose slots
///   relative to Oracle, never gain lines.
/// * **Resume <= Optimistic** — identical gate (service every miss);
///   Resume's only difference is detaching a redirected fill into the
///   resume buffer instead of blocking fetch through it, which strictly
///   frees slots.
/// * **Oracle and Pessimistic keep the bus clean** — zero wrong-path
///   demand traffic on every configuration, not just the paper's
///   (`fills_wrong_path()` contract), and Oracle never pays any
///   speculative-miss stall component.
#[test]
fn structural_policy_orderings_hold_on_random_configs() {
    let mut rng = SynthRng::seed_from_u64(0x0DD5);
    for case in 0..24 {
        let sc = scenario(&mut rng); // sc.policy is ignored: each runs below
        let workload = Workload::generate(&sc.spec).expect("presets are valid");
        let run = |policy: FetchPolicy| {
            let mut cfg = SimConfig::paper_baseline();
            cfg.policy = policy;
            cfg.miss_penalty = sc.miss_penalty;
            cfg.max_unresolved = sc.max_unresolved;
            cfg.prefetch = sc.prefetch;
            cfg.target_prefetch = sc.target_prefetch;
            if sc.small_cache {
                cfg.icache.size_bytes = 1024;
            }
            Simulator::new(cfg).run(workload.executor(sc.path_seed).take_instrs(INSTRS))
        };

        let oracle = run(FetchPolicy::Oracle);
        let pess = run(FetchPolicy::Pessimistic);
        let resume = run(FetchPolicy::Resume);
        let opt = run(FetchPolicy::Optimistic);

        assert!(
            oracle.ispi() <= pess.ispi() + 1e-12,
            "case {case}: Oracle ISPI {:.6} worse than Pessimistic {:.6} ({sc:?})",
            oracle.ispi(),
            pess.ispi()
        );
        assert!(
            resume.ispi() <= opt.ispi() + 1e-12,
            "case {case}: Resume ISPI {:.6} worse than Optimistic {:.6} ({sc:?})",
            resume.ispi(),
            opt.ispi()
        );

        // Clean-bus contract and identical fills for the non-speculating
        // pair.
        assert_eq!(oracle.traffic_demand_wrong, 0, "case {case}: {sc:?}");
        assert_eq!(pess.traffic_demand_wrong, 0, "case {case}: {sc:?}");
        assert_eq!(
            oracle.traffic_demand_correct, pess.traffic_demand_correct,
            "case {case}: Oracle and Pessimistic must fill identical lines ({sc:?})"
        );

        // Oracle never pays any speculative-miss stall component. (Bus
        // waits only vanish without prefetchers competing for the bus.)
        assert_eq!(oracle.lost.wrong_icache, 0, "case {case}: {sc:?}");
        assert_eq!(oracle.lost.force_resolve, 0, "case {case}: {sc:?}");
        if !sc.prefetch && !sc.target_prefetch {
            assert_eq!(oracle.lost.bus, 0, "case {case}: {sc:?}");
        }
    }
}

#[test]
fn engine_invariants_hold_for_any_scenario() {
    let mut rng = SynthRng::seed_from_u64(0xE16E);
    for case in 0..CASES {
        let sc = scenario(&mut rng);
        let workload = Workload::generate(&sc.spec).expect("presets are valid");
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = sc.policy;
        cfg.miss_penalty = sc.miss_penalty;
        cfg.max_unresolved = sc.max_unresolved;
        cfg.prefetch = sc.prefetch;
        cfg.target_prefetch = sc.target_prefetch;
        cfg.classify = true;
        if sc.small_cache {
            cfg.icache.size_bytes = 1024; // stress conflicts and eviction
        }

        let r = Simulator::new(cfg).run(workload.executor(sc.path_seed).take_instrs(INSTRS));

        // Termination with the full path consumed.
        assert_eq!(r.correct_instrs, INSTRS, "case {case}: {sc:?}");

        // Slot accounting: cycles x width == issued + lost (+ final
        // partial group).
        let total = r.cycles * r.issue_width as u64;
        let used = r.correct_instrs + r.lost.total();
        assert!(
            total >= used && total - used < r.issue_width as u64,
            "case {case}: slots {total} vs used {used} ({sc:?})"
        );

        // Branch-slot decomposition is exact.
        assert_eq!(
            r.lost.branch,
            r.pht_mispredict_slots + r.btb_misfetch_slots + r.btb_mispredict_slots,
            "case {case}: {sc:?}"
        );

        // Structural zeroes per policy (prefetching may add `bus` to any
        // policy, so only the stronger invariants are asserted).
        match sc.policy {
            FetchPolicy::Oracle | FetchPolicy::Pessimistic => {
                assert_eq!(r.traffic_demand_wrong, 0, "case {case}: {sc:?}");
                assert_eq!(r.lost.wrong_icache, 0, "case {case}: {sc:?}");
            }
            FetchPolicy::Resume => {
                assert_eq!(r.lost.wrong_icache, 0, "case {case}: {sc:?}");
                assert_eq!(r.lost.force_resolve, 0, "case {case}: {sc:?}");
            }
            FetchPolicy::Optimistic => {
                assert_eq!(r.lost.force_resolve, 0, "case {case}: {sc:?}");
            }
            FetchPolicy::Decode | FetchPolicy::Dynamic => {}
        }

        // Classification is internally consistent.
        let cls = r.classification.expect("classification enabled");
        assert_eq!(cls.correct_accesses, r.correct_instrs, "case {case}: {sc:?}");
        assert_eq!(cls.both_miss + cls.spec_pollute, r.cache_correct.misses, "case {case}: {sc:?}");

        // Traffic counters cover exactly the bus transactions.
        assert_eq!(
            r.total_traffic(),
            r.traffic_demand_correct
                + r.traffic_demand_wrong
                + r.traffic_prefetch
                + r.traffic_target_prefetch,
            "case {case}: {sc:?}"
        );
        if !sc.prefetch {
            assert_eq!(r.traffic_prefetch, 0, "case {case}: {sc:?}");
        }
        if !sc.target_prefetch {
            assert_eq!(r.traffic_target_prefetch, 0, "case {case}: {sc:?}");
        }

        // Determinism: the same scenario replays identically.
        let again = Simulator::new(cfg).run(workload.executor(sc.path_seed).take_instrs(INSTRS));
        assert_eq!(r, again, "case {case}: {sc:?}");
    }
}
