//! Property tests of the whole fetch engine over randomly generated
//! (valid) workloads: for any program, path, policy, and machine
//! configuration, the engine must terminate, balance its slot accounting,
//! and respect each policy's structural guarantees.

use proptest::prelude::*;

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::{Workload, WorkloadSpec};
use specfetch::trace::PathSource;

#[derive(Clone, Debug)]
struct Scenario {
    spec: WorkloadSpec,
    path_seed: u64,
    policy: FetchPolicy,
    miss_penalty: u64,
    max_unresolved: usize,
    prefetch: bool,
    target_prefetch: bool,
    small_cache: bool,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        0u64..1000,                      // generator seed
        0u64..1000,                      // path seed
        0usize..5,                       // policy index
        prop_oneof![Just(2u64), Just(5), Just(13), Just(20)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..3, // workload family
    )
        .prop_map(
            |(gen_seed, path_seed, policy, penalty, depth, prefetch, target, small, family)| {
                let spec = match family {
                    0 => WorkloadSpec::fortran_like("prop", gen_seed),
                    1 => WorkloadSpec::c_like("prop", gen_seed),
                    _ => WorkloadSpec::cpp_like("prop", gen_seed),
                };
                Scenario {
                    spec,
                    path_seed,
                    policy: FetchPolicy::ALL[policy],
                    miss_penalty: penalty,
                    max_unresolved: depth,
                    prefetch,
                    target_prefetch: target,
                    small_cache: small,
                }
            },
        )
}

const INSTRS: u64 = 6_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_invariants_hold_for_any_scenario(sc in arb_scenario()) {
        let workload = Workload::generate(&sc.spec).expect("presets are valid");
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = sc.policy;
        cfg.miss_penalty = sc.miss_penalty;
        cfg.max_unresolved = sc.max_unresolved;
        cfg.prefetch = sc.prefetch;
        cfg.target_prefetch = sc.target_prefetch;
        cfg.classify = true;
        if sc.small_cache {
            cfg.icache.size_bytes = 1024; // stress conflicts and eviction
        }

        let r = Simulator::new(cfg)
            .run(workload.executor(sc.path_seed).take_instrs(INSTRS));

        // Termination with the full path consumed.
        prop_assert_eq!(r.correct_instrs, INSTRS);

        // Slot accounting: cycles x width == issued + lost (+ final
        // partial group).
        let total = r.cycles * r.issue_width as u64;
        let used = r.correct_instrs + r.lost.total();
        prop_assert!(total >= used && total - used < r.issue_width as u64,
            "slots {} vs used {}", total, used);

        // Branch-slot decomposition is exact.
        prop_assert_eq!(
            r.lost.branch,
            r.pht_mispredict_slots + r.btb_misfetch_slots + r.btb_mispredict_slots
        );

        // Structural zeroes per policy (prefetching may add `bus` to any
        // policy, so only the stronger invariants are asserted).
        match sc.policy {
            FetchPolicy::Oracle | FetchPolicy::Pessimistic => {
                prop_assert_eq!(r.traffic_demand_wrong, 0);
                prop_assert_eq!(r.lost.wrong_icache, 0);
            }
            FetchPolicy::Resume => {
                prop_assert_eq!(r.lost.wrong_icache, 0);
                prop_assert_eq!(r.lost.force_resolve, 0);
            }
            FetchPolicy::Optimistic => {
                prop_assert_eq!(r.lost.force_resolve, 0);
            }
            FetchPolicy::Decode => {}
        }

        // Classification is internally consistent.
        let cls = r.classification.expect("classification enabled");
        prop_assert_eq!(cls.correct_accesses, r.correct_instrs);
        prop_assert_eq!(cls.both_miss + cls.spec_pollute, r.cache_correct.misses);

        // Traffic counters cover exactly the bus transactions.
        prop_assert_eq!(
            r.total_traffic(),
            r.traffic_demand_correct
                + r.traffic_demand_wrong
                + r.traffic_prefetch
                + r.traffic_target_prefetch
        );
        if !sc.prefetch {
            prop_assert_eq!(r.traffic_prefetch, 0);
        }
        if !sc.target_prefetch {
            prop_assert_eq!(r.traffic_target_prefetch, 0);
        }

        // Determinism: the same scenario replays identically.
        let again = Simulator::new(cfg)
            .run(workload.executor(sc.path_seed).take_instrs(INSTRS));
        prop_assert_eq!(r, again);
    }
}
