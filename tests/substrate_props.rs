//! Property tests on the hardware substrates: caches against a reference
//! model, saturating counters, the RAS, and the gshare PHT.

use std::collections::HashMap;

use proptest::prelude::*;

use specfetch::bpred::{Btb, Counter2, Ras};
use specfetch::cache::{CacheConfig, ICache};
use specfetch::isa::{Addr, InstrKind, LineAddr};

/// A reference LRU set-associative cache model (slow but obviously
/// correct).
struct RefCache {
    sets: usize,
    assoc: usize,
    /// set -> (tag, last-use tick), most-recent ordering by tick.
    data: HashMap<u64, Vec<(u64, u64)>>,
    tick: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize) -> Self {
        RefCache { sets, assoc, data: HashMap::new(), tick: 0 }
    }

    fn split(&self, line: u64) -> (u64, u64) {
        (line % self.sets as u64, line / self.sets as u64)
    }

    fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.split(line);
        let ways = self.data.entry(set).or_default();
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.tick;
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) {
        self.tick += 1;
        let (set, tag) = self.split(line);
        let assoc = self.assoc;
        let tick = self.tick;
        let ways = self.data.entry(set).or_default();
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = tick;
            return;
        }
        if ways.len() == assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            ways.remove(lru);
        }
        ways.push((tag, tick));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The I-cache agrees with the reference LRU model on every access of
    /// arbitrary access/fill interleavings, for several geometries.
    #[test]
    fn icache_matches_reference_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..400),
        geometry in 0usize..3,
    ) {
        let cfg = match geometry {
            0 => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 1 },
            1 => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 2 },
            _ => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 4 },
        };
        let mut dut = ICache::new(&cfg);
        let mut reference = RefCache::new(cfg.num_sets(), cfg.assoc);
        for (is_fill, line) in ops {
            if is_fill {
                dut.fill(LineAddr::new(line));
                reference.fill(line);
            } else {
                let got = dut.access(LineAddr::new(line));
                let want = reference.access(line);
                prop_assert_eq!(got, want, "access divergence on line {}", line);
            }
        }
    }

    /// A 2-bit counter never leaves its 0..=3 lattice and always predicts
    /// the direction it last saturated toward.
    #[test]
    fn counter2_lattice(updates in proptest::collection::vec(any::<bool>(), 1..64)) {
        let mut c = Counter2::default();
        for &taken in &updates {
            c.update(taken);
            prop_assert!(c.state() <= 3);
        }
        // Two identical updates force the prediction.
        let last = updates[updates.len() - 1];
        c.update(last);
        c.update(last);
        prop_assert_eq!(c.predict_taken(), last);
    }

    /// The RAS behaves as a bounded stack: with fewer than `depth` live
    /// entries it is exactly LIFO.
    #[test]
    fn ras_is_lifo_within_capacity(ops in proptest::collection::vec(any::<Option<u8>>(), 1..64)) {
        let mut ras = Ras::new(64); // deeper than any test sequence
        let mut model: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Some(x) => {
                    let a = Addr::new(4 * x as u64);
                    ras.push(a);
                    model.push(a);
                }
                None => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
            }
        }
        prop_assert_eq!(ras.depth(), model.len());
    }

    /// The BTB never invents entries: a lookup hit always returns the
    /// most recent insert for that exact PC.
    #[test]
    fn btb_returns_latest_insert(
        ops in proptest::collection::vec((0u64..128, 0u64..32), 1..300),
    ) {
        let mut btb = Btb::new(16, 4);
        let mut latest: HashMap<u64, Addr> = HashMap::new();
        for (pc_word, target_word) in ops {
            let pc = Addr::from_word(pc_word);
            let target = Addr::from_word(target_word);
            btb.insert(pc, target, InstrKind::Jump { target });
            latest.insert(pc_word, target);
            if let Some(hit) = btb.lookup(pc) {
                prop_assert_eq!(hit.target, latest[&pc_word]);
            } else {
                prop_assert!(false, "an entry just inserted must hit");
            }
        }
        // Any surviving entry must match the latest insert for its PC.
        for (&pc_word, &target) in &latest {
            if let Some(hit) = btb.peek(Addr::from_word(pc_word)) {
                prop_assert_eq!(hit.target, target);
            }
        }
    }
}

/// First-ref bits: set by fill, cleared by `clear_first_ref`, reset by a
/// refill — over arbitrary interleavings.
#[test]
fn first_ref_bit_lifecycle_exhaustive() {
    let cfg = CacheConfig { size_bytes: 256, line_bytes: 32, assoc: 1 };
    let mut c = ICache::new(&cfg);
    for line in 0..8u64 {
        let l = LineAddr::new(line);
        assert!(!c.first_ref_set(l));
        c.fill(l);
        assert!(c.first_ref_set(l));
        c.clear_first_ref(l);
        assert!(!c.first_ref_set(l));
        c.fill(l);
        assert!(c.first_ref_set(l), "refill must re-arm the bit");
    }
    // Evicting a line clears its state entirely.
    c.fill(LineAddr::new(8)); // maps onto set 0, evicting line 0
    assert!(!c.first_ref_set(LineAddr::new(0)));
    assert!(c.first_ref_set(LineAddr::new(8)));
}
