//! Property-style tests on the hardware substrates: caches against a
//! reference model, saturating counters, the RAS, and the gshare PHT.
//!
//! Random interleavings come from the in-repo [`SynthRng`] under fixed
//! seeds, so every run exercises the same reproducible cases.

use std::collections::HashMap;

use specfetch::bpred::{Btb, Counter2, Ras};
use specfetch::cache::{CacheConfig, ICache};
use specfetch::isa::{Addr, InstrKind, LineAddr};
use specfetch::synth::SynthRng;

const CASES: usize = 48;

/// A reference LRU set-associative cache model (slow but obviously
/// correct).
struct RefCache {
    sets: usize,
    assoc: usize,
    /// set -> (tag, last-use tick), most-recent ordering by tick.
    data: HashMap<u64, Vec<(u64, u64)>>,
    tick: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize) -> Self {
        RefCache { sets, assoc, data: HashMap::new(), tick: 0 }
    }

    fn split(&self, line: u64) -> (u64, u64) {
        (line % self.sets as u64, line / self.sets as u64)
    }

    fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let (set, tag) = self.split(line);
        let ways = self.data.entry(set).or_default();
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = self.tick;
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) {
        self.tick += 1;
        let (set, tag) = self.split(line);
        let assoc = self.assoc;
        let tick = self.tick;
        let ways = self.data.entry(set).or_default();
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == tag) {
            w.1 = tick;
            return;
        }
        if ways.len() == assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            ways.remove(lru);
        }
        ways.push((tag, tick));
    }
}

/// The I-cache agrees with the reference LRU model on every access of
/// arbitrary access/fill interleavings, for several geometries.
#[test]
fn icache_matches_reference_model() {
    let mut rng = SynthRng::seed_from_u64(0xCAC4E);
    for case in 0..CASES {
        let cfg = match rng.gen_range(0usize..=2) {
            0 => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 1 },
            1 => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 2 },
            _ => CacheConfig { size_bytes: 512, line_bytes: 32, assoc: 4 },
        };
        let mut dut = ICache::new(&cfg);
        let mut reference = RefCache::new(cfg.num_sets(), cfg.assoc);
        let n_ops = rng.gen_range(1usize..=400);
        for _ in 0..n_ops {
            let line = rng.gen_range(0u64..=63);
            if rng.gen_bool(0.5) {
                dut.fill(LineAddr::new(line));
                reference.fill(line);
            } else {
                let got = dut.access(LineAddr::new(line));
                let want = reference.access(line);
                assert_eq!(got, want, "case {case}: access divergence on line {line}");
            }
        }
    }
}

/// A 2-bit counter never leaves its 0..=3 lattice and always predicts
/// the direction it last saturated toward.
#[test]
fn counter2_lattice() {
    let mut rng = SynthRng::seed_from_u64(0xC027);
    for case in 0..CASES {
        let mut c = Counter2::default();
        let n = rng.gen_range(1usize..=63);
        let mut last = false;
        for _ in 0..n {
            last = rng.gen_bool(0.5);
            c.update(last);
            assert!(c.state() <= 3, "case {case}");
        }
        // Two identical updates force the prediction.
        c.update(last);
        c.update(last);
        assert_eq!(c.predict_taken(), last, "case {case}");
    }
}

/// The RAS behaves as a bounded stack: with fewer than `depth` live
/// entries it is exactly LIFO.
#[test]
fn ras_is_lifo_within_capacity() {
    let mut rng = SynthRng::seed_from_u64(0x2A5);
    for case in 0..CASES {
        let mut ras = Ras::new(64); // deeper than any test sequence
        let mut model: Vec<Addr> = Vec::new();
        let n = rng.gen_range(1usize..=63);
        for _ in 0..n {
            if rng.gen_bool(0.5) {
                let a = Addr::new(4 * rng.gen_range(0u64..=255));
                ras.push(a);
                model.push(a);
            } else {
                assert_eq!(ras.pop(), model.pop(), "case {case}");
            }
        }
        assert_eq!(ras.depth(), model.len(), "case {case}");
    }
}

/// The BTB never invents entries: a lookup hit always returns the
/// most recent insert for that exact PC.
#[test]
fn btb_returns_latest_insert() {
    let mut rng = SynthRng::seed_from_u64(0xB7B);
    for case in 0..CASES {
        let mut btb = Btb::new(16, 4);
        let mut latest: HashMap<u64, Addr> = HashMap::new();
        let n = rng.gen_range(1usize..=300);
        for _ in 0..n {
            let pc_word = rng.gen_range(0u64..=127);
            let target_word = rng.gen_range(0u64..=31);
            let pc = Addr::from_word(pc_word);
            let target = Addr::from_word(target_word);
            btb.insert(pc, target, InstrKind::Jump { target });
            latest.insert(pc_word, target);
            let hit = btb.lookup(pc).expect("an entry just inserted must hit");
            assert_eq!(hit.target, latest[&pc_word], "case {case}");
        }
        // Any surviving entry must match the latest insert for its PC.
        for (&pc_word, &target) in &latest {
            if let Some(hit) = btb.peek(Addr::from_word(pc_word)) {
                assert_eq!(hit.target, target, "case {case}");
            }
        }
    }
}

/// First-ref bits: set by fill, cleared by `clear_first_ref`, reset by a
/// refill — over arbitrary interleavings.
#[test]
fn first_ref_bit_lifecycle_exhaustive() {
    let cfg = CacheConfig { size_bytes: 256, line_bytes: 32, assoc: 1 };
    let mut c = ICache::new(&cfg);
    for line in 0..8u64 {
        let l = LineAddr::new(line);
        assert!(!c.first_ref_set(l));
        c.fill(l);
        assert!(c.first_ref_set(l));
        c.clear_first_ref(l);
        assert!(!c.first_ref_set(l));
        c.fill(l);
        assert!(c.first_ref_set(l), "refill must re-arm the bit");
    }
    // Evicting a line clears its state entirely.
    c.fill(LineAddr::new(8)); // maps onto set 0, evicting line 0
    assert!(!c.first_ref_set(LineAddr::new(0)));
    assert!(c.first_ref_set(LineAddr::new(8)));
}
