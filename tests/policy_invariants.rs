//! Cross-crate invariants of the fetch-policy engine, checked over the
//! calibrated benchmark models.

use specfetch::core::{FetchPolicy, SimConfig, SimResult, Simulator};
use specfetch::synth::suite::Benchmark;
use specfetch::trace::PathSource;

const INSTRS: u64 = 60_000;

fn run(bench: &Benchmark, cfg: SimConfig) -> SimResult {
    let w = bench.workload().expect("calibrated specs generate");
    Simulator::new(cfg).run(w.executor(bench.path_seed()).take_instrs(INSTRS))
}

fn baseline(policy: FetchPolicy) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = policy;
    cfg
}

/// Every policy on every benchmark satisfies the slot-accounting
/// identity: cycles x width >= issued + lost, with the gap under one
/// fetch group (the final partial cycle).
#[test]
fn slot_accounting_identity() {
    for bench in Benchmark::all() {
        for policy in FetchPolicy::ALL {
            let r = run(bench, baseline(policy));
            let total = r.cycles * r.issue_width as u64;
            let used = r.correct_instrs + r.lost.total();
            assert!(
                total >= used && total - used < r.issue_width as u64,
                "{bench} {policy}: {total} slots vs {used} used"
            );
        }
    }
}

/// The paper's footnote 3: Oracle and Pessimistic generate the same
/// misses (they never fill wrong paths); Optimistic and Resume fill the
/// same lines modulo resume-buffer reuse.
#[test]
fn miss_pairing_footnote() {
    for bench in Benchmark::all() {
        let oracle = run(bench, baseline(FetchPolicy::Oracle));
        let pess = run(bench, baseline(FetchPolicy::Pessimistic));
        assert_eq!(oracle.traffic_demand_wrong, 0, "{bench}");
        assert_eq!(pess.traffic_demand_wrong, 0, "{bench}");
        assert_eq!(
            oracle.traffic_demand_correct, pess.traffic_demand_correct,
            "{bench}: Oracle and Pessimistic must generate identical fills"
        );

        let opt = run(bench, baseline(FetchPolicy::Optimistic));
        let res = run(bench, baseline(FetchPolicy::Resume));
        let (a, b) = (opt.total_traffic(), res.total_traffic());
        assert!(
            a.abs_diff(b) as f64 <= 0.03 * a.max(b) as f64 + 16.0,
            "{bench}: Optimistic {a} vs Resume {b} traffic"
        );
    }
}

/// The correct path is policy-invariant: every policy retires the same
/// instructions and resolves (almost) the same branches. Prediction
/// *events* may differ slightly — how deep a wrong path runs is policy
/// dependent, and wrong-path branches update the BTB/RAS speculatively,
/// so predictor state feeds back — but only within a small margin.
#[test]
fn correct_path_is_policy_invariant() {
    for bench in [Benchmark::by_name("li").unwrap(), Benchmark::by_name("fpppp").unwrap()] {
        let results: Vec<SimResult> =
            FetchPolicy::ALL.iter().map(|&p| run(bench, baseline(p))).collect();
        for r in &results[1..] {
            assert_eq!(r.correct_instrs, results[0].correct_instrs, "{bench}");
            let conds = (r.bpred.cond_resolved, results[0].bpred.cond_resolved);
            assert!(
                conds.0.abs_diff(conds.1) <= 8,
                "{bench}: resolved conds {conds:?} (only the end-of-run window may differ)"
            );
            let mp = (r.mispredicts, results[0].mispredicts);
            assert!(
                mp.0.abs_diff(mp.1) as f64 <= 0.05 * mp.1 as f64 + 8.0,
                "{bench}: mispredicts {mp:?} differ beyond predictor-feedback noise"
            );
        }
    }
}

/// Policy-structural zeroes: each component can only appear under the
/// policies whose mechanism produces it.
#[test]
fn component_structure_by_policy() {
    for bench in Benchmark::all() {
        for policy in FetchPolicy::ALL {
            let r = run(bench, baseline(policy));
            match policy {
                FetchPolicy::Oracle => {
                    assert_eq!(r.lost.force_resolve, 0);
                    assert_eq!(r.lost.wrong_icache, 0);
                    assert_eq!(r.lost.bus, 0);
                }
                FetchPolicy::Optimistic => {
                    assert_eq!(r.lost.force_resolve, 0);
                    assert_eq!(r.lost.bus, 0);
                }
                FetchPolicy::Resume => {
                    assert_eq!(r.lost.force_resolve, 0);
                    assert_eq!(r.lost.wrong_icache, 0);
                }
                FetchPolicy::Pessimistic => {
                    assert_eq!(r.lost.wrong_icache, 0);
                    assert_eq!(r.lost.bus, 0);
                }
                FetchPolicy::Decode => {
                    assert_eq!(r.lost.bus, 0);
                }
                // Dynamic alternates between the Resume and Pessimistic
                // mechanisms, so any component may appear.
                FetchPolicy::Dynamic => {}
            }
        }
    }
}

/// Halving the cache can only increase (or preserve) the miss rate, and
/// the 20-cycle penalty can only increase ISPI.
#[test]
fn monotone_in_cache_size_and_penalty() {
    for name in ["gcc", "groff", "doduc"] {
        let bench = Benchmark::by_name(name).unwrap();
        let small = run(bench, baseline(FetchPolicy::Resume));
        let mut cfg32 = baseline(FetchPolicy::Resume);
        cfg32.icache = specfetch::cache::CacheConfig::paper_32k();
        let big = run(bench, cfg32);
        assert!(
            big.miss_rate_pct() <= small.miss_rate_pct() + 1e-9,
            "{name}: 32K missed more than 8K"
        );

        let mut cfg20 = baseline(FetchPolicy::Resume);
        cfg20.miss_penalty = 20;
        let slow = run(bench, cfg20);
        assert!(slow.ispi() > small.ispi(), "{name}: higher penalty must cost ISPI");
    }
}

/// Branch-penalty slots decompose exactly into the three trigger
/// categories.
#[test]
fn branch_slots_decompose_by_trigger() {
    for bench in Benchmark::all() {
        let r = run(bench, baseline(FetchPolicy::Resume));
        assert_eq!(
            r.lost.branch,
            r.pht_mispredict_slots + r.btb_misfetch_slots + r.btb_mispredict_slots,
            "{bench}"
        );
    }
}

/// Identical configuration and path seed produce bit-identical results
/// (the whole study depends on replayability).
#[test]
fn determinism_end_to_end() {
    let bench = Benchmark::by_name("porky").unwrap();
    let mut cfg = baseline(FetchPolicy::Resume);
    cfg.prefetch = true;
    cfg.classify = true;
    assert_eq!(run(bench, cfg), run(bench, cfg));
}

/// A stream buffer on a pipelined bus must not starve demand fills.
///
/// Regression test: the stream tracks one in-flight prefetch, and with
/// `bus_slots > 1` the tick stage used to issue a second prefetch into
/// the freed slot every cycle — orphaning the first (its completion was
/// dropped as stale), so the FIFO never filled and an outstanding demand
/// miss waited on a free slot forever (the engine's stall valve fired).
#[test]
fn stream_buffer_on_pipelined_bus_makes_progress() {
    for policy in [FetchPolicy::Resume, FetchPolicy::Optimistic] {
        let mut cfg = baseline(policy);
        cfg.stream_buffer = true;
        cfg.bus_slots = 2;
        cfg.miss_penalty = 5;
        let r = run(Benchmark::by_name("li").unwrap(), cfg);
        assert_eq!(r.correct_instrs, INSTRS, "{policy}: run must complete");
    }
}
