//! End-to-end tests of the `specfetch` command-line binary.

use std::process::Command;

fn specfetch() -> Command {
    Command::new(env!("CARGO_BIN_EXE_specfetch"))
}

#[test]
fn bench_run_reports_all_sections() {
    let out = specfetch()
        .args(["--bench", "li", "--instrs", "50000", "--policy", "resume"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["policy:", "Resume", "ISPI:", "miss rate:", "traffic:", "bpred:"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn classify_flag_adds_classification() {
    let out = specfetch()
        .args(["--bench", "li", "--instrs", "30000", "--policy", "optimistic", "--classify"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("classification:"), "{stdout}");
    assert!(stdout.contains("BM"), "{stdout}");
}

#[test]
fn unknown_benchmark_fails_with_suggestions() {
    let out = specfetch().args(["--bench", "nonesuch"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark"));
    assert!(stderr.contains("gcc"), "should list known benchmarks: {stderr}");
}

#[test]
fn missing_input_fails() {
    let out = specfetch().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace or --bench"));
}

#[test]
fn conflicting_prefetchers_fail_cleanly() {
    let out = specfetch()
        .args(["--bench", "li", "--prefetch", "--stream-buffer"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not both"), "{stderr}");
}

#[test]
fn stream_buffer_flag_runs() {
    let out = specfetch()
        .args(["--bench", "li", "--instrs", "30000", "--stream-buffer"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn bad_policy_fails() {
    let out =
        specfetch().args(["--bench", "li", "--policy", "yolo"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn trace_round_trip_through_cli() {
    use specfetch::synth::{Workload, WorkloadSpec};
    use specfetch::trace::{write_trace_binary, Trace};

    // Record a small trace to a temp file.
    let w = Workload::generate(&WorkloadSpec::c_like("cli-trace", 3)).unwrap();
    let mut exec = w.executor(1);
    let trace = Trace::record(&mut exec, 20_000);
    let dir = std::env::temp_dir().join(format!("specfetch-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.sftb");
    write_trace_binary(&trace, &mut std::fs::File::create(&path).unwrap()).unwrap();

    let out = specfetch()
        .args(["--trace", path.to_str().unwrap(), "--policy", "pessimistic"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Pessimistic"));
    assert!(stdout.contains("instructions:  2000") || stdout.contains("instructions:"));

    std::fs::remove_dir_all(&dir).ok();
}
