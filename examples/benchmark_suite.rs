//! Run the full thirteen-benchmark suite under one configuration and
//! print per-benchmark ISPI, miss rate, and memory traffic — the view the
//! paper's evaluation section is built from.
//!
//! Run with: `cargo run --release --example benchmark_suite [policy] [instrs]`
//! where `policy` is one of oracle/optimistic/resume/pessimistic/decode.

use specfetch::core::{FetchPolicy, SimConfig};
use specfetch::experiments::{suite_results, RunOptions};

fn parse_policy(s: &str) -> Option<FetchPolicy> {
    match s.to_ascii_lowercase().as_str() {
        "oracle" => Some(FetchPolicy::Oracle),
        "optimistic" | "opt" => Some(FetchPolicy::Optimistic),
        "resume" | "res" => Some(FetchPolicy::Resume),
        "pessimistic" | "pess" => Some(FetchPolicy::Pessimistic),
        "decode" | "dec" => Some(FetchPolicy::Decode),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let policy = match args.next() {
        Some(s) => parse_policy(&s).ok_or_else(|| format!("unknown policy {s:?}"))?,
        None => FetchPolicy::Resume,
    };
    let instrs: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(500_000);

    let opts = RunOptions::new().with_instrs(instrs);
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = policy;

    println!("policy: {policy}   ({instrs} instructions per benchmark)\n");
    println!(
        "{:<8} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "bench", "ISPI", "miss%", "IPC", "demand", "wrong", "mispred"
    );

    let results = suite_results(&opts, |_| cfg);
    let mut total_ispi = 0.0;
    for br in &results {
        let r = &br.result;
        let ipc = r.correct_instrs as f64 / r.cycles as f64;
        println!(
            "{:<8} {:>8.3} {:>7.2} {:>7.2} {:>9} {:>9} {:>9}",
            br.benchmark.name,
            r.ispi(),
            r.miss_rate_pct(),
            ipc,
            r.traffic_demand_correct,
            r.traffic_demand_wrong,
            r.mispredicts,
        );
        total_ispi += r.ispi();
    }
    println!("{:<8} {:>8.3}", "Average", total_ispi / results.len() as f64);
    Ok(())
}
