//! Quickstart: compare all five fetch policies on one calibrated
//! benchmark and print the paper's headline metric (ISPI) with its
//! component breakdown.
//!
//! Run with: `cargo run --release --example quickstart [bench] [instrs]`

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::suite::Benchmark;
use specfetch::trace::PathSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().unwrap_or_else(|| "gcc".to_owned());
    let instrs: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(500_000);

    let bench = Benchmark::by_name(&bench_name)
        .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
    let workload = bench.workload()?;

    println!("benchmark: {bench}  ({instrs} instructions)");
    println!("workload:  {workload}");
    println!();
    println!(
        "{:<12} {:>6}  {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>6}",
        "policy", "ISPI", "br_full", "branch", "force", "rt_ic", "wr_ic", "bus", "miss%"
    );

    for policy in FetchPolicy::ALL {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        let sim = Simulator::new(cfg);
        // Every policy replays the same execution path: same seed.
        let r = sim.run(workload.executor(bench.path_seed()).take_instrs(instrs));
        let c = |slots: u64| r.ispi_component(slots);
        println!(
            "{:<12} {:>6.3}  {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}   {:>6.2}",
            policy.to_string(),
            r.ispi(),
            c(r.lost.branch_full),
            c(r.lost.branch),
            c(r.lost.force_resolve),
            c(r.lost.rt_icache),
            c(r.lost.wrong_icache),
            c(r.lost.bus),
            r.miss_rate_pct(),
        );
    }

    println!();
    println!("(paper, Table 5 depth 4, gcc: Oracle 1.87, Opt 2.11, Res 1.88, Pess 2.28, Dec 2.30)");
    Ok(())
}
