//! Sweep the miss penalty to find where next-line prefetching stops
//! paying off — the paper's §5.3 conclusion ("not recommended" at high
//! latency) as a crossover study.
//!
//! Run with: `cargo run --release --example prefetch_study [bench]`

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::suite::Benchmark;
use specfetch::trace::PathSource;

const INSTRS: u64 = 300_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench_name = std::env::args().nth(1).unwrap_or_else(|| "groff".to_owned());
    let bench = Benchmark::by_name(&bench_name)
        .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
    let workload = bench.workload()?;

    println!("Prefetch benefit vs miss penalty on {bench} (Resume policy)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>12}",
        "penalty", "plain", "prefetch", "gain%", "traffic x"
    );

    for penalty in [3u64, 5, 8, 12, 16, 20, 30] {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = FetchPolicy::Resume;
        cfg.miss_penalty = penalty;

        let plain =
            Simulator::new(cfg).run(workload.executor(bench.path_seed()).take_instrs(INSTRS));

        cfg.prefetch = true;
        let pref =
            Simulator::new(cfg).run(workload.executor(bench.path_seed()).take_instrs(INSTRS));

        let gain = 100.0 * (plain.ispi() - pref.ispi()) / plain.ispi();
        let traffic = pref.total_traffic() as f64 / plain.total_traffic().max(1) as f64;
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>9.1} {:>12.2}",
            penalty,
            plain.ispi(),
            pref.ispi(),
            gain,
            traffic
        );
    }

    println!();
    println!("Expected shape (paper Figures 3-4 and Table 7): solid gains at small");
    println!("penalties, shrinking or negative gains as fills monopolise the bus,");
    println!("while prefetching keeps costing 20-80% extra memory traffic.");
    Ok(())
}
