//! Record a workload execution to the portable `.sft` trace formats,
//! read it back, and simulate from the file — the workflow for feeding
//! externally captured traces to the simulator.
//!
//! Run with: `cargo run --release --example trace_files`

use std::io::BufReader;

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::{Workload, WorkloadSpec};
use specfetch::trace::{
    read_trace_binary, read_trace_text, write_trace_binary, write_trace_text, PathSource, Trace,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce an execution and record it (100k instructions).
    let workload = Workload::generate(&WorkloadSpec::c_like("traced", 42))?;
    let mut live = workload.executor(7);
    let trace = Trace::record(&mut live, 100_000);
    println!(
        "recorded: image {} instrs, {} data-dependent outcomes",
        trace.program().len(),
        trace.outcomes().len()
    );

    // 2. Write both formats to a temp directory.
    let dir = std::env::temp_dir().join("specfetch-trace-demo");
    std::fs::create_dir_all(&dir)?;
    let text_path = dir.join("demo.sft");
    let bin_path = dir.join("demo.sftb");
    write_trace_text(&trace, &mut std::fs::File::create(&text_path)?)?;
    write_trace_binary(&trace, &mut std::fs::File::create(&bin_path)?)?;
    let text_len = std::fs::metadata(&text_path)?.len();
    let bin_len = std::fs::metadata(&bin_path)?.len();
    println!(
        "wrote {} ({text_len} bytes) and {} ({bin_len} bytes)",
        text_path.display(),
        bin_path.display()
    );

    // 3. Read back and verify both formats agree.
    let from_text = read_trace_text(BufReader::new(std::fs::File::open(&text_path)?))?;
    let from_bin = read_trace_binary(BufReader::new(std::fs::File::open(&bin_path)?))?;
    assert_eq!(from_text, from_bin, "formats must round-trip identically");
    println!("round-trip OK: text and binary parse to the same trace");

    // 4. Simulate straight from the file-loaded trace.
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = FetchPolicy::Resume;
    let result = Simulator::new(cfg).run(from_bin.into_source());
    println!(
        "simulated from file: {} instrs, ISPI {:.3}, miss {:.2}%",
        result.correct_instrs,
        result.ispi(),
        result.miss_rate_pct()
    );

    // 5. The file replay must match simulating the live path directly.
    let direct = Simulator::new(cfg).run(workload.executor(7).take_instrs(result.correct_instrs));
    assert_eq!(direct.ispi(), result.ispi(), "file replay must match the live path");
    println!("file replay matches the live execution exactly");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
