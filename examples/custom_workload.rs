//! Build custom workloads and explore how *branch predictability* decides
//! which fetch policy wins — the paper's central trade-off: aggressive
//! policies gamble on predictions being right.
//!
//! Run with: `cargo run --release --example custom_workload`

use specfetch::core::{FetchPolicy, SimConfig, Simulator};
use specfetch::synth::{Workload, WorkloadSpec};
use specfetch::trace::PathSource;

const INSTRS: u64 = 300_000;

fn run(workload: &Workload, policy: FetchPolicy) -> f64 {
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = policy;
    Simulator::new(cfg).run(workload.executor(1).take_instrs(INSTRS)).ispi()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("How branch predictability shifts the policy ranking");
    println!("(8K cache, 5-cycle penalty, depth 4, {INSTRS} instructions)\n");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "Oracle", "Opt", "Res", "Pess", "Dec"
    );

    // Sweep the fraction of weakly-biased (hard) branches from almost
    // none (loop-dominated Fortran style) to most (input-dependent).
    for (label, weak_frac) in [
        ("predictable (5% weak)", 0.05),
        ("paper-like (30% weak)", 0.30),
        ("hostile (70% weak)", 0.70),
    ] {
        let mut spec = WorkloadSpec::c_like(label, 99);
        spec.weak_branch_frac = weak_frac;
        let w = Workload::generate(&spec)?;
        let ispi: Vec<f64> = FetchPolicy::ALL.iter().map(|&p| run(&w, p)).collect();
        println!(
            "{:<26} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            label, ispi[0], ispi[1], ispi[2], ispi[3], ispi[4]
        );
    }

    println!();
    println!("Expected: with predictable branches the aggressive policies dominate;");
    println!("as branches get hostile, wrong paths multiply and the conservative");
    println!("policies close the gap (the paper's large-latency argument, induced");
    println!("here through prediction quality instead).");
    Ok(())
}
