//! `bench-snapshot`: measure the shared-trace speedup and write a
//! machine-readable `BENCH_1.json` to seed the perf trajectory.
//!
//! ```text
//! bench-snapshot [--out BENCH_1.json] [--instrs 500000] [--all-instrs 2000000] [--skip-all]
//! ```
//!
//! Two comparisons, each run with the trace cache off (the legacy
//! interpret-per-run path) and on (record-once / replay-many):
//!
//! - `table4`: one experiment (`--experiment table4`), 500k instructions —
//!   the satellite's standing wall-clock probe;
//! - `all`: the full `--experiment all` sweep at the reproduction budget —
//!   the tentpole's ≥2× acceptance measurement (skippable with
//!   `--skip-all` when iterating).

use std::fmt::Write as _;
use std::time::Instant;

use specfetch_experiments::{run_experiment, RunOptions, EXPERIMENT_IDS};

struct Measurement {
    name: &'static str,
    instrs: u64,
    legacy_s: f64,
    shared_s: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.legacy_s / self.shared_s
    }
}

fn run_ids(ids: &[&str], opts: &RunOptions) -> f64 {
    let t = Instant::now();
    for id in ids {
        let report = run_experiment(id, opts).expect("known experiment id");
        std::hint::black_box(report);
    }
    t.elapsed().as_secs_f64()
}

/// Times `ids` under both modes in a fresh cache state.
///
/// The legacy pass runs first; the shared pass then starts with a cold
/// cache *for this window* only if the window was not used before, so
/// callers use distinct instruction windows per measurement.
fn measure(name: &'static str, ids: &[&str], instrs: u64) -> Measurement {
    let legacy = RunOptions::new().with_instrs(instrs).with_share_traces(false);
    let shared = RunOptions::new().with_instrs(instrs);
    let legacy_s = run_ids(ids, &legacy);
    let shared_s = run_ids(ids, &shared);
    let m = Measurement { name, instrs, legacy_s, shared_s };
    eprintln!(
        "[{name}: legacy {legacy_s:.2}s, shared {:.2}s, speedup {:.2}x]",
        m.shared_s,
        m.speedup()
    );
    m
}

fn main() {
    let mut out = "BENCH_1.json".to_owned();
    let mut table4_instrs = 500_000u64;
    let mut all_instrs = 2_000_000u64;
    let mut skip_all = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            "--instrs" => {
                table4_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --instrs")
            }
            "--all-instrs" => {
                all_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --all-instrs")
            }
            "--skip-all" => skip_all = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut measurements = vec![measure("table4", &["table4"], table4_instrs)];
    if !skip_all {
        measurements.push(measure("all", &EXPERIMENT_IDS, all_instrs));
    }

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"specfetch-bench-snapshot/1\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"experiment\": \"{}\", \"instrs\": {}, \"legacy_wall_s\": {:.3}, \
             \"shared_wall_s\": {:.3}, \"speedup\": {:.2}}}{comma}",
            m.name,
            m.instrs,
            m.legacy_s,
            m.shared_s,
            m.speedup()
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("writable output path");
    println!("{json}");
    eprintln!("[wrote {out}]");
}
