//! `bench-snapshot`: measure the replay-layer speedup and write a
//! machine-readable snapshot to extend the perf trajectory.
//!
//! ```text
//! bench-snapshot [--out BENCH_4.json] [--instrs 500000] [--all-instrs 2000000]
//!                [--skip-all] [--quick] [--baseline BENCH_3.json] [--tolerance 2.0]
//!                [--warm-min-speedup 5]
//! ```
//!
//! Schema 2 compares the **predicted-trace overlay + result memo** (the
//! default replay path) against the **shared-recording path** it
//! replaces (`--no-predict-cache`, the schema-1 "shared" configuration
//! whose `--experiment all` wall time is the baseline in
//! `BENCH_1.json`):
//!
//! - `table4`: one experiment, 500k instructions — the standing
//!   wall-clock probe;
//! - `all`: the full `--experiment all` sweep at the reproduction
//!   budget — the tentpole's ≥1.25× acceptance measurement (skippable
//!   with `--skip-all` when iterating).
//!
//! `--quick` shrinks the probes for CI smoke runs (table4 and `all`
//! at 60k instructions, the full-budget `all` skipped) — it checks the
//! harness, not the speedup. Full runs *also* record the quick probes,
//! so a committed snapshot always has a matching `(experiment, instrs)`
//! entry for the CI guard's quick-mode measurements.
//!
//! `--baseline <snapshot.json>` compares the new fast-path
//! (`overlay_wall_s`) times against a previous snapshot and exits
//! nonzero when any measurement with a matching `(experiment, instrs)`
//! entry regressed by more than `--tolerance` percent (default 2) —
//! the guard that keeps robustness plumbing off the hot path. Only
//! meaningful on the machine that recorded the baseline.
//!
//! Both paths replay the same shared recordings (the §5c layer this
//! comparison sits on top of), so each measurement pre-records its
//! window before timing either pass; within the timed region the
//! overlay pass still pays for building its overlays and runs first.
//!
//! Schema 3 adds the persistent result store (§5i): each measurement
//! also spawns the `specfetch-repro` binary twice against a scratch
//! `--result-dir` — a cold child that computes and persists every grid
//! point, then a warm child that replays the finished rows straight
//! from disk — and records the walls as `store_cold_wall_s` /
//! `warm_wall_s`. `--warm-min-speedup X` turns the pair into a CI
//! guard: exit 1 unless warm is at least `X`× faster than cold.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use specfetch_experiments::{run_experiment, RunOptions, EXPERIMENT_IDS};

struct Measurement {
    name: &'static str,
    instrs: u64,
    shared_s: f64,
    overlay_s: f64,
    /// Cross-process result-store probe: (cold wall, warm wall), when
    /// the sibling `specfetch-repro` binary was available to spawn.
    store: Option<(f64, f64)>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.shared_s / self.overlay_s
    }

    fn warm_speedup(&self) -> Option<f64> {
        self.store.map(|(cold, warm)| cold / warm)
    }
}

/// The `specfetch-repro` binary next to this one in the target dir, if
/// it has been built.
fn repro_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.join(format!("specfetch-repro{}", std::env::consts::EXE_SUFFIX));
    bin.exists().then_some(bin)
}

/// Times one `specfetch-repro` child against `dir` and returns its
/// wall clock plus captured stdout.
fn spawn_repro(bin: &Path, experiment: &str, instrs: u64, dir: &Path) -> (f64, Vec<u8>) {
    let t = Instant::now();
    let out = std::process::Command::new(bin)
        .args(["--experiment", experiment, "--instrs", &instrs.to_string()])
        .args(["--result-dir", dir.to_str().expect("utf-8 scratch path")])
        .output()
        .expect("spawning specfetch-repro");
    let wall = t.elapsed().as_secs_f64();
    assert!(out.status.success(), "specfetch-repro --experiment {experiment} failed: {out:?}");
    (wall, out.stdout)
}

/// Cold-vs-warm wall clock through the on-disk result store, measured
/// across processes: the cold child starts from an empty store and
/// persists every grid point; the warm child replays them from disk
/// without touching the simulation engine. `None` (with a warning)
/// when `specfetch-repro` is not built.
fn store_probe(experiment: &'static str, instrs: u64) -> Option<(f64, f64)> {
    let Some(bin) = repro_bin() else {
        eprintln!(
            "warning: specfetch-repro is not built next to bench-snapshot; \
             skipping the result-store probe (cargo build --release first)"
        );
        return None;
    };
    let dir = std::env::temp_dir()
        .join(format!("specfetch-store-probe-{}-{experiment}-{instrs}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale probe dir");
    }
    let (cold_s, cold_out) = spawn_repro(&bin, experiment, instrs, &dir);
    let (warm_s, warm_out) = spawn_repro(&bin, experiment, instrs, &dir);
    assert_eq!(cold_out, warm_out, "warm replay must render the cold run byte for byte");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[{experiment} store: cold {cold_s:.2}s, warm {warm_s:.2}s, {:.1}x]",
        cold_s / warm_s
    );
    Some((cold_s, warm_s))
}

fn run_ids(ids: &[&str], opts: &RunOptions) -> f64 {
    let t = Instant::now();
    for id in ids {
        let report = run_experiment(id, opts).expect("known experiment id");
        std::hint::black_box(report);
    }
    t.elapsed().as_secs_f64()
}

/// Times `ids` under both replay paths. Callers use distinct instruction
/// windows per measurement so each starts with cold overlay and result
/// caches; the recordings both paths replay are warmed up front so the
/// comparison times replay, not the shared recording layer.
fn measure(name: &'static str, ids: &[&str], instrs: u64) -> Measurement {
    for b in specfetch_synth::suite::Benchmark::all() {
        std::hint::black_box(specfetch_experiments::trace_cache::shared_trace(b, instrs));
    }
    // `--overlay-min 0` keeps the timed pass on the overlay path even
    // for probe windows below the default size heuristic — this
    // measurement tracks the overlay itself, not the heuristic.
    let overlay = RunOptions::new().with_instrs(instrs).with_overlay_min(0);
    let shared = overlay.with_predict_cache(false);
    let overlay_s = run_ids(ids, &overlay);
    let shared_s = run_ids(ids, &shared);
    let store = store_probe(name, instrs);
    let m = Measurement { name, instrs, shared_s, overlay_s, store };
    eprintln!(
        "[{name}: shared {shared_s:.2}s, overlay {:.2}s, speedup {:.2}x]",
        m.overlay_s,
        m.speedup()
    );
    m
}

/// A prior snapshot's measurement, as read back from its JSON.
struct BaselineEntry {
    name: String,
    instrs: u64,
    overlay_s: f64,
}

/// Pulls `"key": value` off a single line of snapshot JSON. The parser
/// only has to read the one-measurement-per-line format `main` writes.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                name: json_field(line, "experiment")?.to_owned(),
                instrs: json_field(line, "instrs")?.parse().ok()?,
                overlay_s: json_field(line, "overlay_wall_s")?.parse().ok()?,
            })
        })
        .collect()
}

/// Compares fast-path wall times against `baseline`, returning the
/// worst regression in percent over the matching measurements (negative
/// means we got faster). `None` when nothing matched.
fn guard_against(baseline: &[BaselineEntry], measurements: &[Measurement]) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for m in measurements {
        match baseline.iter().find(|b| b.name == m.name && b.instrs == m.instrs) {
            Some(b) => {
                let pct = (m.overlay_s / b.overlay_s - 1.0) * 100.0;
                eprintln!(
                    "[guard {}: overlay {:.3}s vs baseline {:.3}s ({pct:+.1}%)]",
                    m.name, m.overlay_s, b.overlay_s
                );
                worst = Some(worst.map_or(pct, |w: f64| w.max(pct)));
            }
            None => {
                eprintln!("[guard {}: no baseline entry at {} instrs, skipped]", m.name, m.instrs)
            }
        }
    }
    worst
}

fn git_sha() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(sha) = git(&["rev-parse", "HEAD"]) else { return "unknown".to_owned() };
    let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    format!("{}{}", sha.trim(), if dirty { "-dirty" } else { "" })
}

/// The `--quick` probe size — what the CI guard measures.
const QUICK_INSTRS: u64 = 60_000;

fn main() {
    let mut out = "BENCH_4.json".to_owned();
    let mut table4_instrs = 500_000u64;
    let mut all_instrs = 2_000_000u64;
    let mut skip_all = false;
    let mut baseline: Option<String> = None;
    let mut tolerance = 2.0f64;
    let mut warm_min: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            "--baseline" => baseline = Some(it.next().expect("--baseline needs a value")),
            "--tolerance" => {
                tolerance = it.next().and_then(|v| v.parse().ok()).expect("bad --tolerance")
            }
            "--warm-min-speedup" => {
                warm_min =
                    Some(it.next().and_then(|v| v.parse().ok()).expect("bad --warm-min-speedup"))
            }
            "--instrs" => {
                table4_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --instrs")
            }
            "--all-instrs" => {
                all_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --all-instrs")
            }
            "--skip-all" => skip_all = true,
            "--quick" => {
                table4_instrs = QUICK_INSTRS;
                skip_all = true;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let sha = git_sha();
    if sha.ends_with("-dirty") || sha == "unknown" {
        // A trajectory point must pin an exact revision: BENCH_2.json's
        // `-dirty` sha cannot be reproduced by any checkout.
        eprintln!(
            "warning: recording from a {} tree — commit first so the snapshot's \
             git_sha names a revision that can be checked out and re-measured",
            if sha == "unknown" { "non-git" } else { "dirty" }
        );
    }

    let mut measurements = Vec::new();
    // Full runs carry the quick probes too, so the CI guard's quick-mode
    // measurements always find a matching baseline entry.
    if table4_instrs != QUICK_INSTRS {
        measurements.push(measure("table4", &["table4"], QUICK_INSTRS));
    }
    measurements.push(measure("table4", &["table4"], table4_instrs));
    // The all-experiments sweep is probed at the quick window in every
    // mode — it is what the warm-store CI guard measures — and at the
    // full reproduction budget unless skipped.
    measurements.push(measure("all", &EXPERIMENT_IDS, QUICK_INSTRS));
    if !skip_all {
        measurements.push(measure("all", &EXPERIMENT_IDS, all_instrs));
    }

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The experiment runner saturates available parallelism when
    // `opts.parallel` is set (the default used above).
    let threads = host_cores;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"specfetch-bench-snapshot/3\",");
    let _ = writeln!(json, "  \"git_sha\": \"{sha}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let mut store_fields = String::new();
        if let Some((cold, warm)) = m.store {
            let _ = write!(
                store_fields,
                ", \"store_cold_wall_s\": {cold:.3}, \"warm_wall_s\": {warm:.3}, \
                 \"warm_speedup\": {:.2}",
                cold / warm
            );
        }
        let _ = writeln!(
            json,
            "    {{\"experiment\": \"{}\", \"instrs\": {}, \"shared_wall_s\": {:.3}, \
             \"overlay_wall_s\": {:.3}, \"speedup\": {:.2}{store_fields}}}{comma}",
            m.name,
            m.instrs,
            m.shared_s,
            m.overlay_s,
            m.speedup()
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("writable output path");
    println!("{json}");
    eprintln!("[wrote {out}]");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("readable --baseline snapshot");
        match guard_against(&parse_baseline(&text), &measurements) {
            Some(worst) if worst > tolerance => {
                eprintln!(
                    "error: fast path regressed {worst:+.1}% vs {path} \
                     (tolerance {tolerance}%)"
                );
                std::process::exit(1);
            }
            Some(worst) => eprintln!("[guard ok: worst delta {worst:+.1}% <= {tolerance}%]"),
            None => eprintln!("[guard: nothing comparable in {path}]"),
        }
    }

    if let Some(min) = warm_min {
        // The guard reads the all-experiments rows only: single-table
        // probes are dominated by process startup, not replayed work.
        let probed: Vec<&Measurement> =
            measurements.iter().filter(|m| m.name == "all" && m.store.is_some()).collect();
        if probed.is_empty() {
            eprintln!("error: --warm-min-speedup set but no all-experiments store probe ran");
            std::process::exit(1);
        }
        for m in probed {
            let speedup = m.warm_speedup().expect("probed measurement");
            if speedup < min {
                eprintln!(
                    "error: warm store replay of {} at {} instrs is only {speedup:.2}x \
                     faster than cold (minimum {min}x)",
                    m.name, m.instrs
                );
                std::process::exit(1);
            }
            eprintln!("[warm guard ok: {} {speedup:.2}x >= {min}x]", m.name);
        }
    }
}
