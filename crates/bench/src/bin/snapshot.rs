//! `bench-snapshot`: measure the replay-layer speedup and write a
//! machine-readable snapshot to extend the perf trajectory.
//!
//! ```text
//! bench-snapshot [--out BENCH_2.json] [--instrs 500000] [--all-instrs 2000000]
//!                [--skip-all] [--quick] [--baseline BENCH_2.json] [--tolerance 2.0]
//! ```
//!
//! Schema 2 compares the **predicted-trace overlay + result memo** (the
//! default replay path) against the **shared-recording path** it
//! replaces (`--no-predict-cache`, the schema-1 "shared" configuration
//! whose `--experiment all` wall time is the baseline in
//! `BENCH_1.json`):
//!
//! - `table4`: one experiment, 500k instructions — the standing
//!   wall-clock probe;
//! - `all`: the full `--experiment all` sweep at the reproduction
//!   budget — the tentpole's ≥1.25× acceptance measurement (skippable
//!   with `--skip-all` when iterating).
//!
//! `--quick` shrinks the probe for CI smoke runs (table4 at 60k
//! instructions, `all` skipped) — it checks the harness, not the
//! speedup. Full runs *also* record the quick probe, so a committed
//! snapshot always has a matching `(experiment, instrs)` entry for the
//! CI guard's quick-mode measurement.
//!
//! `--baseline <snapshot.json>` compares the new fast-path
//! (`overlay_wall_s`) times against a previous snapshot and exits
//! nonzero when any measurement with a matching `(experiment, instrs)`
//! entry regressed by more than `--tolerance` percent (default 2) —
//! the guard that keeps robustness plumbing off the hot path. Only
//! meaningful on the machine that recorded the baseline.
//!
//! Both paths replay the same shared recordings (the §5c layer this
//! comparison sits on top of), so each measurement pre-records its
//! window before timing either pass; within the timed region the
//! overlay pass still pays for building its overlays and runs first.

use std::fmt::Write as _;
use std::time::Instant;

use specfetch_experiments::{run_experiment, RunOptions, EXPERIMENT_IDS};

struct Measurement {
    name: &'static str,
    instrs: u64,
    shared_s: f64,
    overlay_s: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.shared_s / self.overlay_s
    }
}

fn run_ids(ids: &[&str], opts: &RunOptions) -> f64 {
    let t = Instant::now();
    for id in ids {
        let report = run_experiment(id, opts).expect("known experiment id");
        std::hint::black_box(report);
    }
    t.elapsed().as_secs_f64()
}

/// Times `ids` under both replay paths. Callers use distinct instruction
/// windows per measurement so each starts with cold overlay and result
/// caches; the recordings both paths replay are warmed up front so the
/// comparison times replay, not the shared recording layer.
fn measure(name: &'static str, ids: &[&str], instrs: u64) -> Measurement {
    for b in specfetch_synth::suite::Benchmark::all() {
        std::hint::black_box(specfetch_experiments::trace_cache::shared_trace(b, instrs));
    }
    let overlay = RunOptions::new().with_instrs(instrs);
    let shared = overlay.with_predict_cache(false);
    let overlay_s = run_ids(ids, &overlay);
    let shared_s = run_ids(ids, &shared);
    let m = Measurement { name, instrs, shared_s, overlay_s };
    eprintln!(
        "[{name}: shared {shared_s:.2}s, overlay {:.2}s, speedup {:.2}x]",
        m.overlay_s,
        m.speedup()
    );
    m
}

/// A prior snapshot's measurement, as read back from its JSON.
struct BaselineEntry {
    name: String,
    instrs: u64,
    overlay_s: f64,
}

/// Pulls `"key": value` off a single line of snapshot JSON. The parser
/// only has to read the one-measurement-per-line format `main` writes.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                name: json_field(line, "experiment")?.to_owned(),
                instrs: json_field(line, "instrs")?.parse().ok()?,
                overlay_s: json_field(line, "overlay_wall_s")?.parse().ok()?,
            })
        })
        .collect()
}

/// Compares fast-path wall times against `baseline`, returning the
/// worst regression in percent over the matching measurements (negative
/// means we got faster). `None` when nothing matched.
fn guard_against(baseline: &[BaselineEntry], measurements: &[Measurement]) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for m in measurements {
        match baseline.iter().find(|b| b.name == m.name && b.instrs == m.instrs) {
            Some(b) => {
                let pct = (m.overlay_s / b.overlay_s - 1.0) * 100.0;
                eprintln!(
                    "[guard {}: overlay {:.3}s vs baseline {:.3}s ({pct:+.1}%)]",
                    m.name, m.overlay_s, b.overlay_s
                );
                worst = Some(worst.map_or(pct, |w: f64| w.max(pct)));
            }
            None => {
                eprintln!("[guard {}: no baseline entry at {} instrs, skipped]", m.name, m.instrs)
            }
        }
    }
    worst
}

fn git_sha() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(sha) = git(&["rev-parse", "HEAD"]) else { return "unknown".to_owned() };
    let dirty = git(&["status", "--porcelain"]).is_none_or(|s| !s.trim().is_empty());
    format!("{}{}", sha.trim(), if dirty { "-dirty" } else { "" })
}

/// The `--quick` probe size — what the CI guard measures.
const QUICK_INSTRS: u64 = 60_000;

fn main() {
    let mut out = "BENCH_2.json".to_owned();
    let mut table4_instrs = 500_000u64;
    let mut all_instrs = 2_000_000u64;
    let mut skip_all = false;
    let mut baseline: Option<String> = None;
    let mut tolerance = 2.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().expect("--out needs a value"),
            "--baseline" => baseline = Some(it.next().expect("--baseline needs a value")),
            "--tolerance" => {
                tolerance = it.next().and_then(|v| v.parse().ok()).expect("bad --tolerance")
            }
            "--instrs" => {
                table4_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --instrs")
            }
            "--all-instrs" => {
                all_instrs = it.next().and_then(|v| v.parse().ok()).expect("bad --all-instrs")
            }
            "--skip-all" => skip_all = true,
            "--quick" => {
                table4_instrs = QUICK_INSTRS;
                skip_all = true;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let sha = git_sha();
    if sha.ends_with("-dirty") || sha == "unknown" {
        // A trajectory point must pin an exact revision: BENCH_2.json's
        // `-dirty` sha cannot be reproduced by any checkout.
        eprintln!(
            "warning: recording from a {} tree — commit first so the snapshot's \
             git_sha names a revision that can be checked out and re-measured",
            if sha == "unknown" { "non-git" } else { "dirty" }
        );
    }

    let mut measurements = Vec::new();
    // Full runs carry the quick probe too, so the CI guard's quick-mode
    // measurement always finds a matching baseline entry.
    if table4_instrs != QUICK_INSTRS {
        measurements.push(measure("table4", &["table4"], QUICK_INSTRS));
    }
    measurements.push(measure("table4", &["table4"], table4_instrs));
    if !skip_all {
        measurements.push(measure("all", &EXPERIMENT_IDS, all_instrs));
    }

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The experiment runner saturates available parallelism when
    // `opts.parallel` is set (the default used above).
    let threads = host_cores;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"specfetch-bench-snapshot/2\",");
    let _ = writeln!(json, "  \"git_sha\": \"{sha}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"experiment\": \"{}\", \"instrs\": {}, \"shared_wall_s\": {:.3}, \
             \"overlay_wall_s\": {:.3}, \"speedup\": {:.2}}}{comma}",
            m.name,
            m.instrs,
            m.shared_s,
            m.overlay_s,
            m.speedup()
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("writable output path");
    println!("{json}");
    eprintln!("[wrote {out}]");

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path).expect("readable --baseline snapshot");
        match guard_against(&parse_baseline(&text), &measurements) {
            Some(worst) if worst > tolerance => {
                eprintln!(
                    "error: fast path regressed {worst:+.1}% vs {path} \
                     (tolerance {tolerance}%)"
                );
                std::process::exit(1);
            }
            Some(worst) => eprintln!("[guard ok: worst delta {worst:+.1}% <= {tolerance}%]"),
            None => eprintln!("[guard: nothing comparable in {path}]"),
        }
    }
}
