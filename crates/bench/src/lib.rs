//! Benchmark harness support for `specfetch`.
//!
//! The benches live under `benches/`: one group per paper table
//! (`benches/tables.rs`) and figure (`benches/figures.rs`) — each runs a
//! scaled-down regeneration of that artifact — plus microbenchmarks of
//! the substrates (`benches/components.rs`) and the record-once /
//! replay-many comparison (`benches/replay.rs`). All four are
//! `harness = false` binaries built on the dependency-free [`Runner`]
//! here (the workspace builds offline, so no Criterion).
//!
//! Under `cargo bench` each measurement runs its full sample count; under
//! `cargo test` (no `--bench` flag) everything collapses to one sample so
//! the harnesses stay compile-checked and smoke-run without the cost.

use std::time::{Duration, Instant};

/// Instructions per benchmark for table/figure regeneration benches
/// (scaled down from the reproduction default so iterations stay fast).
pub const BENCH_INSTRS: u64 = 30_000;

/// Instructions for single-run engine-throughput benches.
pub const THROUGHPUT_INSTRS: u64 = 200_000;

/// The options experiment benches run with.
pub fn bench_options() -> specfetch_experiments::RunOptions {
    specfetch_experiments::RunOptions::new().with_instrs(BENCH_INSTRS)
}

/// A minimal wall-clock benchmark runner.
///
/// # Examples
///
/// ```
/// let mut r = specfetch_bench::Runner::from_args("demo");
/// r.bench("add", 5, || std::hint::black_box(2 + 2));
/// r.finish();
/// ```
pub struct Runner {
    group: &'static str,
    /// True under `cargo bench` (cargo passes `--bench` to the binary);
    /// false under `cargo test`, where each bench runs a single sample.
    bench_mode: bool,
    filter: Option<String>,
    ran: usize,
}

impl Runner {
    /// Builds a runner from the process arguments: `--bench` selects full
    /// sampling, a bare argument filters benches by substring.
    pub fn from_args(group: &'static str) -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                bench_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        println!("# bench group: {group}{}", if bench_mode { "" } else { " (smoke: 1 sample)" });
        Runner { group, bench_mode, filter, ran: 0 }
    }

    /// Times `f` for `samples` iterations (one warm-up discarded) and
    /// prints min/median wall-clock.
    pub fn bench<R>(&mut self, name: &str, samples: usize, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.bench_mode { samples.max(1) } else { 1 };
        std::hint::black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        println!(
            "{:<44} min {:>10}  median {:>10}  ({} samples)",
            format!("{}/{}", self.group, name),
            fmt_duration(min),
            fmt_duration(median),
            samples
        );
        self.ran += 1;
    }

    /// Prints the group summary. Call last.
    pub fn finish(self) {
        println!("# {}: {} benches", self.group, self.ran);
    }
}

/// Renders a duration with a unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate config sanity checks
    fn budgets_are_sane() {
        assert!(BENCH_INSTRS >= 10_000);
        assert!(THROUGHPUT_INSTRS > BENCH_INSTRS);
        assert_eq!(bench_options().instrs_per_benchmark, BENCH_INSTRS);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(42)), "42.0us");
        assert_eq!(fmt_duration(Duration::from_millis(13)), "13.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(11)), "11.00s");
    }

    #[test]
    fn runner_counts_and_filters() {
        let mut r = Runner { group: "t", bench_mode: false, filter: Some("yes".into()), ran: 0 };
        let mut hits = 0;
        r.bench("yes_one", 3, || hits += 1);
        r.bench("no_two", 3, || hits += 100);
        assert_eq!(r.ran, 1);
        assert_eq!(hits, 2, "warm-up + one sample, filtered bench untouched");
    }
}
