//! Criterion harness support for `specfetch`.
//!
//! The benches live under `benches/`: one group per paper table
//! (`benches/tables.rs`) and figure (`benches/figures.rs`) — each runs a
//! scaled-down regeneration of that artifact — plus microbenchmarks of
//! the substrates (`benches/components.rs`). This library only carries
//! the shared budget constants so the three harnesses stay consistent.

/// Instructions per benchmark for table/figure regeneration benches
/// (scaled down from the reproduction default so Criterion iterations
/// stay fast).
pub const BENCH_INSTRS: u64 = 30_000;

/// Instructions for single-run engine-throughput benches.
pub const THROUGHPUT_INSTRS: u64 = 200_000;

/// The options experiment benches run with.
pub fn bench_options() -> specfetch_experiments::RunOptions {
    specfetch_experiments::RunOptions::new().with_instrs(BENCH_INSTRS)
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate config sanity checks
    fn budgets_are_sane() {
        assert!(super::BENCH_INSTRS >= 10_000);
        assert!(super::THROUGHPUT_INSTRS > super::BENCH_INSTRS);
        assert_eq!(
            super::bench_options().instrs_per_benchmark,
            super::BENCH_INSTRS
        );
    }
}
