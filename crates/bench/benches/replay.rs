//! The tentpole comparison: interpret-once / replay-N versus
//! interpret-N, both as raw stream production and end-to-end through the
//! engine — the measurement behind the shared-trace layer.

use std::hint::black_box;
use std::sync::Arc;

use specfetch_bench::{Runner, THROUGHPUT_INSTRS};
use specfetch_core::{SimConfig, Simulator};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PathSource, RecordedTrace};

/// How many configurations the sweep-shaped benches replay the same path
/// under (the reproduction replays each benchmark far more often).
const REPLAYS: usize = 8;

fn main() {
    let mut r = Runner::from_args("replay");
    let bench = Benchmark::by_name("gcc").unwrap();
    let workload = bench.workload().unwrap();

    // Raw stream production: N interpretations vs one recording + N array
    // walks.
    r.bench("stream/interpret_n", 10, || {
        let mut n = 0u64;
        for _ in 0..REPLAYS {
            let mut e = workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS);
            while e.next_instr().is_some() {
                n += 1;
            }
        }
        black_box(n)
    });
    r.bench("stream/record_once_replay_n", 10, || {
        let mut live = workload.executor(bench.path_seed());
        let trace = Arc::new(RecordedTrace::record(&mut live, THROUGHPUT_INSTRS));
        let mut n = 0u64;
        for _ in 0..REPLAYS {
            let mut s = RecordedTrace::source(&trace);
            while s.next_instr().is_some() {
                n += 1;
            }
        }
        black_box(n)
    });

    // End-to-end: the same N engine runs fed by fresh interpretation vs by
    // the shared recording.
    let cfg = SimConfig::paper_baseline();
    r.bench("engine/interpret_n", 5, || {
        for _ in 0..REPLAYS {
            black_box(
                Simulator::new(cfg)
                    .run(workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS)),
            );
        }
    });
    r.bench("engine/record_once_replay_n", 5, || {
        let mut live = workload.executor(bench.path_seed());
        let trace = Arc::new(RecordedTrace::record(&mut live, THROUGHPUT_INSTRS));
        for _ in 0..REPLAYS {
            black_box(Simulator::new(cfg).run(RecordedTrace::source(&trace)));
        }
    });

    r.finish();
}
