//! Overlay economics: what the pre-decoded `PredictedTrace` costs to
//! build, and what it saves per configuration — cursor throughput and
//! end-to-end engine replay, recorded vs overlay (the engine's batched
//! fetch fast path keys off the overlay).

use std::hint::black_box;
use std::sync::Arc;

use specfetch_bench::{Runner, THROUGHPUT_INSTRS};
use specfetch_core::{FetchPolicy, SimConfig, Simulator};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PathSource, PredictedTrace, RecordedTrace};

/// How many configurations the sweep-shaped benches replay the same path
/// under (the reproduction replays each benchmark far more often).
const REPLAYS: usize = 8;

fn main() {
    let mut r = Runner::from_args("overlay");
    let bench = Benchmark::by_name("gcc").unwrap();
    let workload = bench.workload().unwrap();
    let mut live = workload.executor(bench.path_seed());
    let trace = Arc::new(RecordedTrace::record(&mut live, THROUGHPUT_INSTRS));
    let overlay = Arc::new(PredictedTrace::build(&trace));

    // The one-off construction cost, paid once per (benchmark, window)
    // and amortised over every configuration that replays it.
    r.bench("build/overlay", 10, || black_box(PredictedTrace::build(&trace)));

    // Raw cursor throughput: walking the recording re-decodes each
    // instruction against the image; the overlay cursor reads the
    // pre-decoded arrays.
    r.bench("stream/recorded", 10, || {
        let mut s = RecordedTrace::source(&trace);
        let mut n = 0u64;
        while s.next_instr().is_some() {
            n += 1;
        }
        black_box(n)
    });
    r.bench("stream/predicted", 10, || {
        let mut s = PredictedTrace::source(&overlay);
        let mut n = 0u64;
        while s.next_instr().is_some() {
            n += 1;
        }
        black_box(n)
    });

    // Per-config replay cost through the engine, separated from the
    // build: the same N-config sweep fed by the recording vs the overlay.
    for policy in [FetchPolicy::Oracle, FetchPolicy::Resume] {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        r.bench(&format!("engine/recorded/{policy}"), 5, || {
            for _ in 0..REPLAYS {
                black_box(Simulator::new(cfg).run(RecordedTrace::source(&trace)));
            }
        });
        r.bench(&format!("engine/overlay/{policy}"), 5, || {
            for _ in 0..REPLAYS {
                black_box(Simulator::new(cfg).run(PredictedTrace::source(&overlay)));
            }
        });
    }

    // Build + single replay, the worst case for the overlay (nothing to
    // amortise over).
    let cfg = SimConfig::paper_baseline();
    r.bench("engine/overlay_build_plus_one_replay", 5, || {
        let overlay = Arc::new(PredictedTrace::build(&trace));
        black_box(Simulator::new(cfg).run(PredictedTrace::source(&overlay)));
    });

    r.finish();
}
