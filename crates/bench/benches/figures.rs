//! One Criterion bench per paper *figure*: each iteration regenerates the
//! figure's bars at a scaled-down instruction budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use specfetch_bench::bench_options;
use specfetch_experiments::experiments::{figure1, figure2, figure3, figure4};

fn bench_figure1(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("figure1_baseline_breakdown", |b| {
        b.iter(|| black_box(figure1::data(&opts)))
    });
}

fn bench_figure2(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("figure2_long_latency_breakdown", |b| {
        b.iter(|| black_box(figure2::data(&opts)))
    });
}

fn bench_figure3(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("figure3_prefetch_baseline", |b| {
        b.iter(|| black_box(figure3::data(&opts)))
    });
}

fn bench_figure4(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("figure4_prefetch_long_latency", |b| {
        b.iter(|| black_box(figure4::data(&opts)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_figure1, bench_figure2, bench_figure3, bench_figure4
}
criterion_main!(figures);
