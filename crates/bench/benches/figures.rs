//! One bench per paper *figure*: each iteration regenerates the figure's
//! bars at a scaled-down instruction budget.

use std::hint::black_box;

use specfetch_bench::{bench_options, Runner};
use specfetch_experiments::experiments::{figure1, figure2, figure3, figure4};

fn main() {
    let opts = bench_options();
    let mut r = Runner::from_args("figures");
    r.bench("figure1_baseline_breakdown", 10, || black_box(figure1::data(&opts)));
    r.bench("figure2_long_latency_breakdown", 10, || black_box(figure2::data(&opts)));
    r.bench("figure3_prefetch_baseline", 10, || black_box(figure3::data(&opts)));
    r.bench("figure4_prefetch_long_latency", 10, || black_box(figure4::data(&opts)));
    r.finish();
}
