//! Microbenchmarks of the substrates and the engine's raw throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use specfetch_bench::THROUGHPUT_INSTRS;
use specfetch_bpred::{BpredConfig, BranchUnit, DirectionPredictor, Gshare};
use specfetch_cache::{CacheConfig, ICache};
use specfetch_core::{FetchPolicy, SimConfig, Simulator};
use specfetch_isa::{Addr, InstrKind, LineAddr};
use specfetch_synth::suite::Benchmark;
use specfetch_synth::{Workload, WorkloadSpec};
use specfetch_trace::PathSource;

fn bench_icache(c: &mut Criterion) {
    let mut group = c.benchmark_group("icache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("access_hit_stream", |b| {
        let mut cache = ICache::new(&CacheConfig::paper_8k());
        for i in 0..256 {
            cache.fill(LineAddr::new(i));
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access(LineAddr::new(i % 256)));
            }
        })
    });
    group.bench_function("fill_conflict_stream", |b| {
        let mut cache = ICache::new(&CacheConfig::paper_8k());
        b.iter(|| {
            for i in 0..1024u64 {
                cache.fill(LineAddr::new(i));
            }
        })
    });
    group.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpred");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("gshare_predict_update", |b| {
        let mut pht = Gshare::new(512);
        b.iter(|| {
            let mut ghr = 0u32;
            for i in 0..1024u64 {
                let pc = Addr::from_word(i % 97);
                let taken = i % 3 != 0;
                black_box(pht.predict(pc, ghr));
                pht.update(pc, ghr, taken);
                ghr = (ghr << 1) | taken as u32;
            }
        })
    });
    group.bench_function("btb_lookup_insert", |b| {
        let mut unit = BranchUnit::new(&BpredConfig::paper());
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = Addr::from_word(i % 211);
                if unit.btb_lookup(pc).is_none() {
                    unit.btb_insert(pc, Addr::from_word(i % 64), InstrKind::Jump {
                        target: Addr::from_word(i % 64),
                    });
                }
            }
        })
    });
    group.finish();
}

fn bench_synth(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth");
    group.bench_function("generate_gcc_image", |b| {
        let spec = Benchmark::by_name("gcc").unwrap().spec();
        b.iter(|| black_box(Workload::generate(&spec).unwrap()))
    });
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("executor_100k_instrs", |b| {
        let w = Workload::generate(&WorkloadSpec::c_like("bench", 1)).unwrap();
        b.iter(|| {
            let mut e = w.executor(1).take_instrs(100_000);
            let mut n = 0u64;
            while e.next_instr().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(THROUGHPUT_INSTRS));
    let bench = Benchmark::by_name("gcc").unwrap();
    let workload = bench.workload().unwrap();
    for policy in FetchPolicy::ALL {
        group.bench_function(format!("gcc_{}", policy.short_name()), |b| {
            let mut cfg = SimConfig::paper_baseline();
            cfg.policy = policy;
            let sim = Simulator::new(cfg);
            b.iter(|| {
                black_box(
                    sim.run(workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS)),
                )
            })
        });
    }
    group.bench_function("gcc_resume_prefetch", |b| {
        let mut cfg = SimConfig::paper_baseline();
        cfg.prefetch = true;
        let sim = Simulator::new(cfg);
        b.iter(|| {
            black_box(
                sim.run(workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS)),
            )
        })
    });
    group.finish();
}

criterion_group!(components, bench_icache, bench_bpred, bench_synth, bench_engine);
criterion_main!(components);
