//! Microbenchmarks of the substrates and the engine's raw throughput.

use std::hint::black_box;

use specfetch_bench::{Runner, THROUGHPUT_INSTRS};
use specfetch_bpred::{BpredConfig, BranchUnit, DirectionPredictor, Gshare};
use specfetch_cache::{CacheConfig, ICache};
use specfetch_core::{FetchPolicy, SimConfig, Simulator};
use specfetch_isa::{Addr, InstrKind, LineAddr};
use specfetch_synth::suite::Benchmark;
use specfetch_synth::{Workload, WorkloadSpec};
use specfetch_trace::PathSource;

fn bench_icache(r: &mut Runner) {
    let mut cache = ICache::new(&CacheConfig::paper_8k());
    for i in 0..256 {
        cache.fill(LineAddr::new(i));
    }
    r.bench("icache/access_hit_stream", 20, || {
        for i in 0..1024u64 {
            black_box(cache.access(LineAddr::new(i % 256)));
        }
    });
    let mut cache = ICache::new(&CacheConfig::paper_8k());
    r.bench("icache/fill_conflict_stream", 20, || {
        for i in 0..1024u64 {
            cache.fill(LineAddr::new(i));
        }
    });
}

fn bench_bpred(r: &mut Runner) {
    let mut pht = Gshare::new(512);
    r.bench("bpred/gshare_predict_update", 20, || {
        let mut ghr = 0u32;
        for i in 0..1024u64 {
            let pc = Addr::from_word(i % 97);
            let taken = i % 3 != 0;
            black_box(pht.predict(pc, ghr));
            pht.update(pc, ghr, taken);
            ghr = (ghr << 1) | taken as u32;
        }
    });
    let mut unit = BranchUnit::new(&BpredConfig::paper());
    r.bench("bpred/btb_lookup_insert", 20, || {
        for i in 0..1024u64 {
            let pc = Addr::from_word(i % 211);
            if unit.btb_lookup(pc).is_none() {
                unit.btb_insert(
                    pc,
                    Addr::from_word(i % 64),
                    InstrKind::Jump { target: Addr::from_word(i % 64) },
                );
            }
        }
    });
}

fn bench_synth(r: &mut Runner) {
    let spec = Benchmark::by_name("gcc").unwrap().spec();
    r.bench("synth/generate_gcc_image", 10, || black_box(Workload::generate(&spec).unwrap()));
    let w = Workload::generate(&WorkloadSpec::c_like("bench", 1)).unwrap();
    r.bench("synth/executor_100k_instrs", 10, || {
        let mut e = w.executor(1).take_instrs(100_000);
        let mut n = 0u64;
        while e.next_instr().is_some() {
            n += 1;
        }
        black_box(n)
    });
}

fn bench_engine(r: &mut Runner) {
    let bench = Benchmark::by_name("gcc").unwrap();
    let workload = bench.workload().unwrap();
    for policy in FetchPolicy::ALL {
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = policy;
        let sim = Simulator::new(cfg);
        let name = format!("engine/gcc_{}", policy.short_name());
        r.bench(&name, 10, || {
            black_box(sim.run(workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS)))
        });
    }
    let mut cfg = SimConfig::paper_baseline();
    cfg.prefetch = true;
    let sim = Simulator::new(cfg);
    r.bench("engine/gcc_resume_prefetch", 10, || {
        black_box(sim.run(workload.executor(bench.path_seed()).take_instrs(THROUGHPUT_INSTRS)))
    });
}

fn main() {
    let mut r = Runner::from_args("components");
    bench_icache(&mut r);
    bench_bpred(&mut r);
    bench_synth(&mut r);
    bench_engine(&mut r);
    r.finish();
}
