//! One bench per paper *table*: each iteration regenerates the table's
//! data at a scaled-down instruction budget.
//!
//! The experiment layer serves all of these from the shared-trace cache,
//! so after the first iteration warms it, iterations measure pure
//! simulation (replay + engine), not workload interpretation.

use std::hint::black_box;

use specfetch_bench::{bench_options, Runner};
use specfetch_experiments::experiments::{table2, table3, table4, table5, table6, table7};

fn main() {
    let opts = bench_options();
    let mut r = Runner::from_args("tables");
    r.bench("table2_workload_inventory", 10, || black_box(table2::data(&opts)));
    r.bench("table3_miss_rates_and_bpred_ispi", 10, || black_box(table3::data(&opts)));
    r.bench("table4_miss_classification", 10, || black_box(table4::data(&opts)));
    r.bench("table5_speculation_depth_sweep", 10, || black_box(table5::data(&opts)));
    r.bench("table6_32k_cache", 10, || black_box(table6::data(&opts)));
    r.bench("table7_prefetch_traffic", 10, || black_box(table7::data(&opts)));
    r.finish();
}
