//! One Criterion bench per paper *table*: each iteration regenerates the
//! table's data at a scaled-down instruction budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use specfetch_bench::bench_options;
use specfetch_experiments::experiments::{table2, table3, table4, table5, table6, table7};

fn bench_table2(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table2_workload_inventory", |b| {
        b.iter(|| black_box(table2::data(&opts)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table3_miss_rates_and_bpred_ispi", |b| {
        b.iter(|| black_box(table3::data(&opts)))
    });
}

fn bench_table4(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table4_miss_classification", |b| {
        b.iter(|| black_box(table4::data(&opts)))
    });
}

fn bench_table5(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table5_speculation_depth_sweep", |b| {
        b.iter(|| black_box(table5::data(&opts)))
    });
}

fn bench_table6(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table6_32k_cache", |b| b.iter(|| black_box(table6::data(&opts))));
}

fn bench_table7(c: &mut Criterion) {
    let opts = bench_options();
    c.bench_function("table7_prefetch_traffic", |b| {
        b.iter(|| black_box(table7::data(&opts)))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_table5, bench_table6, bench_table7
}
criterion_main!(tables);
