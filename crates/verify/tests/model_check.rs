//! The exhaustive model-check runs the acceptance criteria name: all
//! three protocol machines explore clean (every enumerated
//! `(state, event)` pair handled, no deadlock, every invariant holds)
//! with at least 1k distinct states covered in total.

use specfetch_verify::{
    explore, job_step, point_step, random_walk, replay_of, replay_step, Counters, JobEvent,
    JobMachine, JobPhase, JobState, PointEvent, PointState, Step, SweepEvent, SweepMachine,
    SweepState, WorkerMachine, WorkerState, MAX_ATTEMPTS,
};

#[test]
fn all_three_machines_explore_clean_with_over_1k_states() {
    let worker = explore(&WorkerMachine::default(), 10_000).expect("worker protocol verifies");
    let sweep = explore(&SweepMachine, 10_000).expect("journal lifecycle verifies");
    let job = explore(&JobMachine, 10_000).expect("job lifecycle verifies");

    let total = worker.states.len() + sweep.states.len() + job.states.len();
    assert!(
        total >= 1_000,
        "need >= 1k distinct states across the machines, got {} (worker {}, sweep {}, job {})",
        total,
        worker.states.len(),
        sweep.states.len(),
        job.states.len()
    );
    assert!(worker.terminals >= 1);
    assert!(sweep.terminals >= 1);
    assert!(job.terminals >= 1);
}

#[test]
fn worker_larger_groups_add_states_but_no_violations() {
    let x = explore(&WorkerMachine { max_points: 6 }, 10_000).expect("verifies at any bound");
    assert!(x.states.len() > explore(&WorkerMachine::default(), 10_000).unwrap().states.len());
}

/// ISSUE invariant: replay of any reachable WAL prefix yields a
/// consistent Progress. Every reachable sweep state's counters agree
/// with its point states (that is `SweepMachine::check`), and the
/// lenient replay fold reproduces the strict writer on every prefix
/// the writer can actually produce.
#[test]
fn replay_agrees_with_the_strict_writer_on_every_legal_edge() {
    let all_states = [
        PointState::Unscheduled,
        PointState::Scheduled,
        PointState::Attempting { attempt: 0 },
        PointState::Attempting { attempt: 1 },
        PointState::Attempting { attempt: MAX_ATTEMPTS },
        PointState::Completed,
        PointState::Failed,
        PointState::Interrupted,
    ];
    let all_events = [
        PointEvent::Schedule,
        PointEvent::Attempt,
        PointEvent::Complete,
        PointEvent::Fail,
        PointEvent::Interrupt,
    ];
    for s in all_states {
        for e in all_events {
            if let Step::Next(strict) = point_step(&s, &e) {
                assert_eq!(
                    replay_step(s, &e),
                    strict,
                    "replay diverges from the writer on ({s:?}, {e:?})"
                );
            }
        }
    }
}

/// The lenient fold is total: any event in any state lands somewhere
/// (a torn WAL can present any suffix-free prefix to a resume).
#[test]
fn replay_is_total_over_hostile_prefixes() {
    let all_states = [
        PointState::Unscheduled,
        PointState::Scheduled,
        PointState::Attempting { attempt: MAX_ATTEMPTS },
        PointState::Completed,
        PointState::Failed,
        PointState::Interrupted,
    ];
    let all_events = [
        PointEvent::Schedule,
        PointEvent::Attempt,
        PointEvent::Complete,
        PointEvent::Fail,
        PointEvent::Interrupt,
    ];
    for s in all_states {
        for e in all_events {
            // Must not panic, and terminal successes never silently
            // un-complete from stale existence events.
            let next = replay_step(s, &e);
            if s == PointState::Completed
                && matches!(e, PointEvent::Schedule | PointEvent::Attempt | PointEvent::Interrupt)
            {
                assert_eq!(next, PointState::Completed);
            }
        }
    }
}

/// ISSUE invariant: cancellation (shutdown) drains every in-flight
/// point to Interrupted or a terminal it earned — never to a state a
/// resume would lose. In every terminal sweep state reached after
/// shutdown, every journalled point replays as Pending, Completed or
/// Failed; none vanish.
#[test]
fn shutdown_never_loses_a_scheduled_point() {
    let x = explore(&SweepMachine, 10_000).expect("journal lifecycle verifies");
    let machine = SweepMachine;
    use specfetch_verify::Machine;
    for state in x.states.iter().filter(|s| s.shutdown && machine.is_terminal(s)) {
        for p in &state.points {
            match p {
                PointState::Unscheduled => {} // never journalled; nothing owed
                PointState::Scheduled | PointState::Attempting { .. } => {
                    panic!("terminal shutdown state left a point in flight: {state:?}")
                }
                _ => assert!(replay_of(*p).is_some(), "journalled point lost: {p:?}"),
            }
        }
        // A drained point is Interrupted (or earned Completed/Failed),
        // and the counters account for every one of them.
        let owed = state.points.iter().filter(|p| !matches!(p, PointState::Unscheduled)).count();
        let accounted =
            state.counters.completed + state.counters.failed + state.counters.interrupted;
        assert_eq!(accounted as usize, owed, "{state:?}");
    }
}

/// Cancellation drains to Interrupted, never to a fabricated terminal:
/// a point that was Scheduled (no attempt ever ran) can only leave via
/// Interrupt once shutdown is requested.
#[test]
fn a_never_attempted_point_cannot_fabricate_an_outcome_under_shutdown() {
    use specfetch_verify::Machine;
    let machine = SweepMachine;
    let x = explore(&machine, 10_000).unwrap();
    for state in x.states.iter().filter(|s| s.shutdown) {
        for (idx, p) in state.points.iter().enumerate() {
            if matches!(p, PointState::Scheduled) {
                let evs = machine.events(state);
                let mine: Vec<&SweepEvent> = evs
                    .iter()
                    .filter(|e| matches!(e, SweepEvent::Point { idx: i, .. } if *i == idx))
                    .collect();
                assert_eq!(mine.len(), 1, "{state:?}");
                assert!(
                    matches!(mine[0], SweepEvent::Point { event: PointEvent::Interrupt, .. }),
                    "{state:?}"
                );
            }
        }
    }
}

/// Worker protocol: from every reachable state, `done` or death is
/// reachable — a supervisor never waits on a state that cannot resolve.
#[test]
fn every_worker_state_resolves() {
    use specfetch_verify::Machine;
    let machine = WorkerMachine::default();
    let x = explore(&machine, 10_000).unwrap();
    for s in &x.states {
        if machine.is_terminal(s) {
            continue;
        }
        // EOF is always a legal resolution path.
        let evs = machine.events(s);
        assert!(
            evs.iter().any(|e| matches!(
                machine.step(s, e),
                Step::Next(WorkerState::Dead(_) | WorkerState::Complete { .. })
            )),
            "unresolvable worker state {s:?}"
        );
    }
}

/// Job lifecycle: every trajectory ends terminal, terminal states
/// never observe a Finish (the driver reports exactly once), and a
/// cancelled-while-queued job survives its stale queue entry.
#[test]
fn job_lifecycle_edges_match_the_controller() {
    let q = JobPhase::queued();
    // Queued -> cancel -> Cancelled, and the stale dequeue is absorbed.
    let Step::Next(c) = job_step(&q, &JobEvent::Cancel) else { panic!() };
    assert_eq!(c.state, JobState::Cancelled);
    assert!(c.cancel_requested);
    assert_eq!(job_step(&c, &JobEvent::Dequeue), Step::Stay);

    // Queued -> dequeue -> Running -> cancel -> Draining -> any finish
    // -> Cancelled (drain always lands on Cancelled).
    let Step::Next(r) = job_step(&q, &JobEvent::Dequeue) else { panic!() };
    let Step::Next(d) = job_step(&r, &JobEvent::Cancel) else { panic!() };
    assert_eq!(d.state, JobState::Draining);
    for (failed, interrupted) in [(false, false), (true, false), (false, true), (true, true)] {
        let Step::Next(t) = job_step(&d, &JobEvent::Finish { failed, interrupted }) else {
            panic!()
        };
        assert_eq!(t.state, JobState::Cancelled);
    }

    // An uncancelled run classifies by outcome.
    for (failed, interrupted, want) in [
        (false, false, JobState::Done),
        (true, false, JobState::Failed),
        (false, true, JobState::Cancelled),
        (true, true, JobState::Cancelled),
    ] {
        let Step::Next(t) = job_step(&r, &JobEvent::Finish { failed, interrupted }) else {
            panic!()
        };
        assert_eq!(t.state, want, "failed={failed} interrupted={interrupted}");
    }
}

/// Random walks over the sweep machine are legal event sequences: the
/// conformance property tests replay these into the real journal.
#[test]
fn sweep_walks_replay_to_consistent_counters() {
    for seed in 0..64 {
        let walk = random_walk(&SweepMachine, seed, 64);
        let mut state = SweepState {
            points: [PointState::Unscheduled; specfetch_verify::MODEL_POINTS],
            shutdown: false,
            counters: Counters::default(),
        };
        let mut replayed = [PointState::Unscheduled; specfetch_verify::MODEL_POINTS];
        use specfetch_verify::Machine;
        for e in &walk {
            if let SweepEvent::Point { idx, event } = e {
                replayed[*idx] = replay_step(replayed[*idx], event);
            }
            match SweepMachine.step(&state, e) {
                Step::Next(n) => state = n,
                Step::Stay => {}
                Step::Unhandled => panic!("walk (seed {seed}) took an unhandled event {e:?}"),
            }
        }
        SweepMachine.check(&state).expect("walked-to state passes invariants");
        // The lenient reader agrees with the strict writer along the
        // whole walked prefix.
        for (i, p) in state.points.iter().enumerate() {
            assert_eq!(replay_of(replayed[i]), replay_of(*p), "seed {seed} point {i}");
        }
    }
}
