//! A small bounded breadth-first model checker.
//!
//! [`explore`] exhaustively enumerates every state a [`Machine`] can
//! reach from its initial states, driving every event the machine
//! declares plausible in each state, and checks three things at every
//! step:
//!
//! 1. **Totality** — the transition function must *define* an outcome
//!    for every `(state, event)` pair the machine enumerates. A
//!    [`Step::Unhandled`] return is a verification failure, never a
//!    runtime surprise.
//! 2. **Progress** — every non-terminal state must have at least one
//!    event that moves it somewhere else. A state that is not terminal
//!    but cannot move is a deadlock.
//! 3. **Per-state invariants** — [`Machine::check`] runs on every
//!    reachable state; a violated predicate fails the exploration with
//!    the full event trace that reached the bad state.
//!
//! Exploration is bounded (`max_states`) so a machine whose state space
//! accidentally becomes infinite fails loudly instead of spinning; the
//! production machines all stay well under the bound.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// The outcome of one transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Step<S> {
    /// Move to a (possibly identical-by-value) successor state.
    Next(S),
    /// The event is explicitly absorbed: legal, but changes nothing.
    Stay,
    /// The machine does not define this `(state, event)` pair — always
    /// a verification failure when the checker reaches it.
    Unhandled,
}

/// A finite-state protocol: states, plausible events per state, and a
/// total transition function.
pub trait Machine {
    /// The state type. `Hash + Eq` for deduplication; `Debug` for
    /// counterexample traces.
    type State: Clone + Eq + Hash + Debug;
    /// The event type.
    type Event: Clone + Debug;

    /// Every state exploration may start from.
    fn initial(&self) -> Vec<Self::State>;

    /// Every event that is *physically possible* in `state` — including
    /// hostile ones (crashes, stale messages, torn writes). The checker
    /// drives all of them.
    fn events(&self, state: &Self::State) -> Vec<Self::Event>;

    /// The transition function. Must be total over [`Machine::events`].
    fn step(&self, state: &Self::State, event: &Self::Event) -> Step<Self::State>;

    /// Whether `state` is terminal (allowed to have no outgoing moves).
    fn is_terminal(&self, state: &Self::State) -> bool;

    /// A per-state invariant; `Err` describes what is violated.
    ///
    /// # Errors
    ///
    /// A human-readable description of the broken invariant.
    fn check(&self, state: &Self::State) -> Result<(), String>;
}

/// What an exhaustive exploration covered.
#[derive(Clone, Debug)]
pub struct Exploration<S> {
    /// Every distinct reachable state, in BFS discovery order.
    pub states: Vec<S>,
    /// Total `(state, event)` pairs driven.
    pub transitions: usize,
    /// How many reachable states are terminal.
    pub terminals: usize,
}

/// A failed verification: which invariant broke, where, and the event
/// trace that got there.
#[derive(Clone, Debug)]
pub struct ModelError {
    /// What went wrong (`unhandled event`, `deadlock`, or the
    /// machine's own invariant message).
    pub reason: String,
    /// Debug rendering of the offending state.
    pub state: String,
    /// Debug renderings of the events leading from an initial state to
    /// the offending state, in order.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {} (trace: {})", self.reason, self.state, self.trace.join(" -> "))
    }
}

/// Exhaustively explores `machine` up to `max_states` distinct states.
///
/// # Errors
///
/// [`ModelError`] on the first unhandled `(state, event)` pair,
/// deadlocked non-terminal state, violated per-state invariant, or if
/// the state space exceeds `max_states` (exploration must be finite to
/// be exhaustive).
pub fn explore<M: Machine>(
    machine: &M,
    max_states: usize,
) -> Result<Exploration<M::State>, ModelError> {
    // Parent pointers for counterexample traces: state index ->
    // (parent index, event that reached it).
    let mut parents: Vec<Option<(usize, String)>> = Vec::new();
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();

    let trace_to = |parents: &[Option<(usize, String)>], mut i: usize| {
        let mut t = Vec::new();
        while let Some((p, e)) = parents[i].clone() {
            t.push(e);
            i = p;
        }
        t.reverse();
        t
    };
    let fail = |reason: String, state: &M::State, parents: &[Option<(usize, String)>], i: usize| {
        ModelError { reason, state: format!("{state:?}"), trace: trace_to(parents, i) }
    };

    for s in machine.initial() {
        if !index.contains_key(&s) {
            let i = states.len();
            index.insert(s.clone(), i);
            states.push(s);
            parents.push(None);
            frontier.push(i);
        }
    }

    let mut transitions = 0usize;
    let mut terminals = 0usize;
    let mut cursor = 0usize;
    while cursor < frontier.len() {
        let i = frontier[cursor];
        cursor += 1;
        let state = states[i].clone();
        machine.check(&state).map_err(|reason| fail(reason, &state, &parents, i))?;

        let events = machine.events(&state);
        let mut moved = false;
        for e in &events {
            transitions += 1;
            match machine.step(&state, e) {
                Step::Unhandled => {
                    return Err(fail(format!("unhandled event {e:?}"), &state, &parents, i));
                }
                Step::Stay => {}
                Step::Next(next) => {
                    if next != state {
                        moved = true;
                    }
                    if !index.contains_key(&next) {
                        if states.len() >= max_states {
                            return Err(fail(
                                format!("state space exceeds the {max_states}-state bound"),
                                &next,
                                &parents,
                                i,
                            ));
                        }
                        let j = states.len();
                        index.insert(next.clone(), j);
                        states.push(next);
                        parents.push(Some((i, format!("{e:?}"))));
                        frontier.push(j);
                    }
                }
            }
        }
        if machine.is_terminal(&state) {
            terminals += 1;
        } else if !moved {
            return Err(fail(
                "deadlock: non-terminal state with no outgoing move".to_owned(),
                &state,
                &parents,
                i,
            ));
        }
    }

    Ok(Exploration { states, transitions, terminals })
}

/// A deterministic pseudo-random walk over `machine`'s reachable graph:
/// from an initial state, repeatedly pick one enabled event (xorshift
/// over `seed`) and step, recording the events taken. Used by property
/// tests to feed model-derived event sequences into the real
/// implementations.
pub fn random_walk<M: Machine>(machine: &M, seed: u64, max_len: usize) -> Vec<M::Event> {
    let mut rng = if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed };
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let inits = machine.initial();
    if inits.is_empty() {
        return Vec::new();
    }
    let mut state = inits[(next() as usize) % inits.len()].clone();
    let mut taken = Vec::new();
    for _ in 0..max_len {
        if machine.is_terminal(&state) {
            break;
        }
        let events = machine.events(&state);
        if events.is_empty() {
            break;
        }
        // Prefer events that actually move; fall back to any.
        let moving: Vec<&M::Event> = events
            .iter()
            .filter(|e| matches!(machine.step(&state, e), Step::Next(ref n) if *n != state))
            .collect();
        let e = if moving.is_empty() {
            events[(next() as usize) % events.len()].clone()
        } else {
            moving[(next() as usize) % moving.len()].clone()
        };
        if let Step::Next(n) = machine.step(&state, &e) {
            state = n;
        }
        taken.push(e);
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy three-state machine for checker self-tests.
    struct Toy {
        /// Inject a deadlock state for the negative test.
        broken: bool,
    }

    impl Machine for Toy {
        type State = u8;
        type Event = char;

        fn initial(&self) -> Vec<u8> {
            vec![0]
        }
        fn events(&self, s: &u8) -> Vec<char> {
            match s {
                0 => vec!['a', 'b'],
                1 => {
                    if self.broken {
                        vec!['x']
                    } else {
                        vec!['b']
                    }
                }
                _ => vec![],
            }
        }
        fn step(&self, s: &u8, e: &char) -> Step<u8> {
            match (s, e) {
                (0, 'a') => Step::Next(1),
                (0, 'b') => Step::Next(2),
                (1, 'b') => Step::Next(2),
                (1, 'x') => Step::Stay,
                _ => Step::Unhandled,
            }
        }
        fn is_terminal(&self, s: &u8) -> bool {
            *s == 2
        }
        fn check(&self, s: &u8) -> Result<(), String> {
            if *s > 2 {
                Err(format!("impossible state {s}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn explores_the_toy_machine_exhaustively() {
        let x = explore(&Toy { broken: false }, 100).expect("toy machine verifies");
        assert_eq!(x.states.len(), 3);
        assert_eq!(x.terminals, 1);
        assert!(x.transitions >= 3);
    }

    #[test]
    fn a_stuck_state_is_a_deadlock_with_a_trace() {
        let e = explore(&Toy { broken: true }, 100).expect_err("state 1 cannot move");
        assert!(e.reason.contains("deadlock"), "{e}");
        assert_eq!(e.state, "1");
        assert_eq!(e.trace, vec!["'a'"]);
    }

    #[test]
    fn the_state_bound_is_enforced() {
        let e = explore(&Toy { broken: false }, 2).expect_err("3 states > bound 2");
        assert!(e.reason.contains("bound"), "{e}");
    }

    #[test]
    fn random_walks_are_deterministic_and_legal() {
        let m = Toy { broken: false };
        let w1 = random_walk(&m, 7, 10);
        let w2 = random_walk(&m, 7, 10);
        assert_eq!(w1, w2, "same seed, same walk");
        assert!(!w1.is_empty());
        // Replaying the walk never hits Unhandled.
        let mut s = 0u8;
        for e in &w1 {
            match m.step(&s, e) {
                Step::Next(n) => s = n,
                Step::Stay => {}
                Step::Unhandled => panic!("walk took an unhandled event"),
            }
        }
    }
}
