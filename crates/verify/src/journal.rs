//! The sweep journal WAL lifecycle as a typed state machine.
//!
//! One grid point moves `Unscheduled → Scheduled → Attempting{n} →
//! Completed | Failed | Interrupted`, mirroring the five WAL event
//! kinds (`s`/`a`/`c`/`f`/`i`). Two transition functions cover the two
//! sides of the log:
//!
//! - [`point_step`] is the **strict writer-side** machine: the exact
//!   event orders `experiments::runner` is allowed to record. The
//!   production journal asserts every record against it.
//! - [`replay_step`] is the **lenient reader-side** projection: total
//!   over *any* event in *any* state, because a `--resume` must accept
//!   whatever prefix a crash left behind (including prefixes truncated
//!   mid-point). It reproduces the production `or_insert` /
//!   last-terminal-wins fold exactly.
//!
//! The model test proves the two agree on every strict edge, so the
//! lenient reader can never re-interpret a legally-written log.
//!
//! [`SweepMachine`] composes a few points with a shutdown flag and
//! running [`Counters`], and the checker proves the ISSUE invariants:
//! replay of any reachable prefix is consistent with the counters,
//! cancellation drains every in-flight point to `Interrupted` (never a
//! terminal success/failure it did not earn), and shutdown never loses
//! a scheduled point.

use crate::explore::{Machine, Step};

/// Retry budget mirrored from production (`--retries` default ceiling
/// in the bounded model; production budgets are per-run but the guard
/// logic is magnitude-blind).
pub const MAX_ATTEMPTS: u8 = 3;

/// One grid point's journalled lifecycle state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PointState {
    /// Not yet journalled.
    Unscheduled,
    /// `s` written: the point exists and is owed an outcome.
    Scheduled,
    /// `a` written `attempt + 1` times: an execution is in flight.
    Attempting {
        /// Zero-based attempt index of the in-flight execution.
        attempt: u8,
    },
    /// `c` written: terminal success.
    Completed,
    /// `f` written: terminal failure (retry budget exhausted or
    /// permanent).
    Failed,
    /// `i` written: shutdown landed before an outcome; a resume owes
    /// this point a fresh run.
    Interrupted,
}

/// One WAL event kind for one point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PointEvent {
    /// `s` — the point is reserved in the journal.
    Schedule,
    /// `a` — an attempt starts.
    Attempt,
    /// `c` — the attempt succeeded.
    Complete,
    /// `f` — the point failed terminally.
    Fail,
    /// `i` — shutdown interrupted the point.
    Interrupt,
}

/// The strict writer-side transition function: exactly the record
/// orders the runner may produce. Production's `journal::Active`
/// dispatches every `record_*` through this.
#[must_use]
pub fn point_step(state: &PointState, event: &PointEvent) -> Step<PointState> {
    use PointEvent as E;
    use PointState as S;
    match (state, event) {
        (S::Unscheduled, E::Schedule) => Step::Next(S::Scheduled),
        (S::Scheduled, E::Attempt) => Step::Next(S::Attempting { attempt: 0 }),
        // Shutdown can land after scheduling but before any attempt.
        (S::Scheduled, E::Interrupt) => Step::Next(S::Interrupted),
        // Production retry budgets are user-set; the attempt counter
        // saturates at MAX_ATTEMPTS so the *model* stays bounded while
        // the transition stays total over any real retry count.
        (S::Attempting { attempt }, E::Attempt) => {
            Step::Next(S::Attempting { attempt: attempt.saturating_add(1).min(MAX_ATTEMPTS) })
        }
        (S::Attempting { .. }, E::Complete) => Step::Next(S::Completed),
        (S::Attempting { .. }, E::Fail) => Step::Next(S::Failed),
        (S::Attempting { .. }, E::Interrupt) => Step::Next(S::Interrupted),
        _ => Step::Unhandled,
    }
}

/// The lenient reader-side fold a `--resume` applies: total over any
/// `(state, event)` pair, because a crash can truncate the WAL at any
/// byte and replay must still land somewhere sensible. Semantics match
/// the production fold: `s`/`a`/`i` only establish existence
/// (`or_insert`), `c`/`f` are last-terminal-wins.
#[must_use]
pub fn replay_step(state: PointState, event: &PointEvent) -> PointState {
    use PointEvent as E;
    use PointState as S;
    match (state, event) {
        (S::Unscheduled, E::Schedule) => S::Scheduled,
        (s, E::Schedule) => s,
        (S::Unscheduled | S::Scheduled, E::Attempt) => S::Attempting { attempt: 0 },
        (S::Attempting { attempt }, E::Attempt) => {
            S::Attempting { attempt: attempt.saturating_add(1).min(MAX_ATTEMPTS) }
        }
        (s, E::Attempt) => s,
        (_, E::Complete) => S::Completed,
        (_, E::Fail) => S::Failed,
        (S::Unscheduled | S::Scheduled | S::Attempting { .. }, E::Interrupt) => S::Interrupted,
        (s @ (S::Completed | S::Failed | S::Interrupted), E::Interrupt) => s,
    }
}

/// What a resume does with a replayed point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayClass {
    /// Scheduled / mid-attempt / interrupted: run it (again).
    Pending,
    /// Done; skip and reuse the recorded cell.
    Completed,
    /// Terminally failed; surface without re-running (unless retried
    /// explicitly).
    Failed,
}

/// Projects a replayed [`PointState`] to what a resume does with it.
/// `None` for [`PointState::Unscheduled`] — a point the WAL never
/// mentioned is simply absent from the replay map.
#[must_use]
pub fn replay_of(state: PointState) -> Option<ReplayClass> {
    match state {
        PointState::Unscheduled => None,
        PointState::Scheduled | PointState::Attempting { .. } | PointState::Interrupted => {
            Some(ReplayClass::Pending)
        }
        PointState::Completed => Some(ReplayClass::Completed),
        PointState::Failed => Some(ReplayClass::Failed),
    }
}

/// The Progress counters a sweep reports, updated per WAL event. The
/// production journal carries exactly this struct.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Counters {
    /// Points journalled with `s`.
    pub scheduled: u64,
    /// Points journalled with `c`.
    pub completed: u64,
    /// Points journalled with `f`.
    pub failed: u64,
    /// Points journalled with `i`.
    pub interrupted: u64,
}

impl Counters {
    /// Folds one WAL event into the counters (`Attempt` is progress-
    /// neutral).
    pub fn apply(&mut self, event: &PointEvent) {
        match event {
            PointEvent::Schedule => self.scheduled += 1,
            PointEvent::Attempt => {}
            PointEvent::Complete => self.completed += 1,
            PointEvent::Fail => self.failed += 1,
            PointEvent::Interrupt => self.interrupted += 1,
        }
    }
}

/// The single-char WAL tag for an event — the byte production writes.
#[must_use]
pub fn event_tag(event: &PointEvent) -> &'static str {
    match event {
        PointEvent::Schedule => "s",
        PointEvent::Attempt => "a",
        PointEvent::Complete => "c",
        PointEvent::Fail => "f",
        PointEvent::Interrupt => "i",
    }
}

/// The inverse of [`event_tag`]; `None` for an unknown tag.
#[must_use]
pub fn parse_tag(tag: &str) -> Option<PointEvent> {
    match tag {
        "s" => Some(PointEvent::Schedule),
        "a" => Some(PointEvent::Attempt),
        "c" => Some(PointEvent::Complete),
        "f" => Some(PointEvent::Fail),
        "i" => Some(PointEvent::Interrupt),
        _ => None,
    }
}

/// How many points the bounded sweep model tracks.
pub const MODEL_POINTS: usize = 3;

/// The composed sweep state: a few points, the shutdown flag, and the
/// running counters.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SweepState {
    /// Per-point lifecycle states.
    pub points: [PointState; MODEL_POINTS],
    /// Whether graceful shutdown has been requested.
    pub shutdown: bool,
    /// Counters folded over every event so far.
    pub counters: Counters,
}

/// One sweep-level event: a WAL event against one point, or the
/// shutdown request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepEvent {
    /// A WAL event for `points[idx]`.
    Point {
        /// Which point.
        idx: usize,
        /// The WAL event.
        event: PointEvent,
    },
    /// Graceful shutdown is requested (SIGINT / cancel).
    Shutdown,
}

/// The bounded sweep machine: [`MODEL_POINTS`] points driven through
/// every strict order, with shutdown possible at every state.
#[derive(Default)]
pub struct SweepMachine;

impl Machine for SweepMachine {
    type State = SweepState;
    type Event = SweepEvent;

    fn initial(&self) -> Vec<SweepState> {
        vec![SweepState {
            points: [PointState::Unscheduled; MODEL_POINTS],
            shutdown: false,
            counters: Counters::default(),
        }]
    }

    fn events(&self, state: &SweepState) -> Vec<SweepEvent> {
        use PointEvent as E;
        use PointState as S;
        let mut ev = Vec::new();
        for (idx, p) in state.points.iter().enumerate() {
            let kinds: &[E] = if state.shutdown {
                // After shutdown the runner stops scheduling and
                // retrying; in-flight attempts finish or drain to
                // Interrupted, scheduled-but-unstarted points drain.
                match p {
                    S::Scheduled => &[E::Interrupt],
                    S::Attempting { .. } => &[E::Complete, E::Fail, E::Interrupt],
                    _ => &[],
                }
            } else {
                match p {
                    S::Unscheduled => &[E::Schedule],
                    S::Scheduled => &[E::Attempt],
                    S::Attempting { attempt } if *attempt < MAX_ATTEMPTS => {
                        &[E::Attempt, E::Complete, E::Fail]
                    }
                    S::Attempting { .. } => &[E::Complete, E::Fail],
                    _ => &[],
                }
            };
            ev.extend(kinds.iter().map(|&event| SweepEvent::Point { idx, event }));
        }
        if !state.shutdown {
            ev.push(SweepEvent::Shutdown);
        }
        ev
    }

    fn step(&self, state: &SweepState, event: &SweepEvent) -> Step<SweepState> {
        match event {
            SweepEvent::Shutdown => {
                let mut next = state.clone();
                next.shutdown = true;
                Step::Next(next)
            }
            SweepEvent::Point { idx, event } => match point_step(&state.points[*idx], event) {
                Step::Next(p) => {
                    let mut next = state.clone();
                    next.points[*idx] = p;
                    next.counters.apply(event);
                    Step::Next(next)
                }
                Step::Stay => Step::Stay,
                Step::Unhandled => Step::Unhandled,
            },
        }
    }

    fn is_terminal(&self, state: &SweepState) -> bool {
        state.points.iter().all(|p| {
            matches!(p, PointState::Completed | PointState::Failed | PointState::Interrupted)
                || (state.shutdown && matches!(p, PointState::Unscheduled))
        })
    }

    fn check(&self, state: &SweepState) -> Result<(), String> {
        use PointState as S;
        let mut tally = Counters::default();
        for p in &state.points {
            match p {
                S::Unscheduled => {}
                S::Scheduled | S::Attempting { .. } => tally.scheduled += 1,
                S::Completed => {
                    tally.scheduled += 1;
                    tally.completed += 1;
                }
                S::Failed => {
                    tally.scheduled += 1;
                    tally.failed += 1;
                }
                S::Interrupted => {
                    tally.scheduled += 1;
                    tally.interrupted += 1;
                }
            }
        }
        if tally != state.counters {
            return Err(format!(
                "counters {:?} disagree with point states (expect {:?})",
                state.counters, tally
            ));
        }
        // Shutdown never loses a scheduled point: terminal under
        // shutdown means every journalled point reached c/f/i, so
        // replay still owes each one an answer.
        if state.shutdown && self.is_terminal(state) {
            for p in &state.points {
                if replay_of(*p).is_none() && !matches!(p, S::Unscheduled) {
                    return Err(format!("scheduled point lost across shutdown: {p:?}"));
                }
            }
        }
        Ok(())
    }
}
