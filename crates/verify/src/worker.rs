//! The parent↔child worker protocol, v2, as a typed state machine.
//!
//! One supervised child moves through: handshake (`hello proto=2`),
//! idle between groups, working a dispatched group (heartbeats and
//! per-point `cell` replies), and either `done` (group complete — even
//! with unfilled slots, which stay transient and are retried) or dead
//! (handshake failure, protocol violation, heartbeat silence, group
//! deadline, or a closed pipe).
//!
//! `experiments::worker` drives every child reply through
//! [`worker_step`] — the model below *is* the shipped dispatch logic.
//! The checker additionally drives hostile events production hopes
//! never to see (duplicate cells, out-of-range indices, garbage lines,
//! EOF at every state) and proves each one lands in a defined state.

use crate::explore::{Machine, Step};

/// Why a child is considered dead.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeadReason {
    /// No (or malformed) `hello` before the handshake timeout/EOF.
    Handshake,
    /// A message that violates the wire protocol.
    Protocol,
    /// No heartbeat within the silence window.
    Hung,
    /// The group overran its `point_timeout × group_size` deadline.
    DeadlineExceeded,
    /// stdout closed (child exited or crashed).
    Pipe,
}

/// One child's protocol state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkerState {
    /// Spawned; waiting for `hello proto=2`.
    AwaitingHello,
    /// Handshake done; no group in flight.
    Idle,
    /// A group of `expected` points is in flight; `filled` distinct
    /// cells have arrived.
    Working { expected: u32, filled: u32 },
    /// The child said `done` for the current group. `filled` may be
    /// short of `expected`: unfilled slots keep their transient
    /// pending reason and are retried elsewhere.
    Complete { expected: u32, filled: u32 },
    /// The child is gone; the supervisor fails over.
    Dead(DeadReason),
}

/// One observable event at a child's stdout (or a supervisor timer).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkerEvent {
    /// A well-formed `hello` with the expected protocol version.
    HelloOk,
    /// A first line that is not a well-formed v2 `hello`.
    HelloBad,
    /// The supervisor sends a group of `points` points.
    Dispatch { points: u32 },
    /// A `hb` keep-alive line.
    Heartbeat,
    /// A `cell` reply. `in_range` is `idx < expected`; `duplicate`
    /// means this index was already filled.
    Cell { in_range: bool, duplicate: bool },
    /// The `done` end-of-group marker.
    Done,
    /// The heartbeat silence window elapsed with no line.
    Silence,
    /// The group deadline elapsed.
    Deadline,
    /// stdout reached EOF.
    Eof,
    /// Any other line.
    Garbage,
}

/// The worker protocol transition function — total over every event
/// [`WorkerMachine::events`] enumerates, and the exact dispatch
/// production uses.
#[must_use]
pub fn worker_step(state: &WorkerState, event: &WorkerEvent) -> Step<WorkerState> {
    use WorkerEvent as E;
    use WorkerState as S;
    match (state, event) {
        // Handshake: exactly one line decides; timers and EOF kill.
        (S::AwaitingHello, E::HelloOk) => Step::Next(S::Idle),
        (S::AwaitingHello, E::HelloBad | E::Garbage) => Step::Next(S::Dead(DeadReason::Handshake)),
        (S::AwaitingHello, E::Silence | E::Eof) => Step::Next(S::Dead(DeadReason::Handshake)),

        // Idle / Complete: the slot can take another group. A stray
        // heartbeat between groups is harmless; anything else from the
        // child is a protocol violation.
        (S::Idle | S::Complete { .. }, E::Dispatch { points }) if *points >= 1 => {
            Step::Next(S::Working { expected: *points, filled: 0 })
        }
        (S::Idle | S::Complete { .. }, E::Heartbeat) => Step::Stay,
        (S::Idle | S::Complete { .. }, E::Eof) => Step::Next(S::Dead(DeadReason::Pipe)),
        (S::Idle | S::Complete { .. }, E::Garbage) => Step::Next(S::Dead(DeadReason::Protocol)),

        // Working: the heart of the protocol.
        (S::Working { .. }, E::Heartbeat) => Step::Stay,
        (S::Working { expected, filled }, E::Cell { in_range: true, duplicate: false }) => {
            Step::Next(S::Working { expected: *expected, filled: filled + 1 })
        }
        // A duplicate index re-writes the same slot; the fill count
        // must not advance past `expected`.
        (S::Working { .. }, E::Cell { in_range: true, duplicate: true }) => Step::Stay,
        (S::Working { .. }, E::Cell { in_range: false, .. }) => {
            Step::Next(S::Dead(DeadReason::Protocol))
        }
        (S::Working { expected, filled }, E::Done) => {
            Step::Next(S::Complete { expected: *expected, filled: *filled })
        }
        (S::Working { .. }, E::Silence) => Step::Next(S::Dead(DeadReason::Hung)),
        (S::Working { .. }, E::Deadline) => Step::Next(S::Dead(DeadReason::DeadlineExceeded)),
        (S::Working { .. }, E::Eof) => Step::Next(S::Dead(DeadReason::Pipe)),
        (S::Working { .. }, E::Garbage) => Step::Next(S::Dead(DeadReason::Protocol)),

        // Dead is terminal; nothing arrives after failover.
        _ => Step::Unhandled,
    }
}

/// The bounded worker machine the checker explores: groups of up to
/// `max_points` points (production group sizes are unbounded, but the
/// per-event logic never inspects magnitudes, only `filled < expected`,
/// so 3 points exercise every guard).
pub struct WorkerMachine {
    /// Largest group size to enumerate.
    pub max_points: u32,
}

impl Default for WorkerMachine {
    fn default() -> Self {
        Self { max_points: 3 }
    }
}

impl Machine for WorkerMachine {
    type State = WorkerState;
    type Event = WorkerEvent;

    fn initial(&self) -> Vec<WorkerState> {
        vec![WorkerState::AwaitingHello]
    }

    fn events(&self, state: &WorkerState) -> Vec<WorkerEvent> {
        use WorkerEvent as E;
        match state {
            WorkerState::AwaitingHello => vec![E::HelloOk, E::HelloBad, E::Silence, E::Eof],
            WorkerState::Idle | WorkerState::Complete { .. } => {
                let mut ev = vec![E::Heartbeat, E::Eof, E::Garbage];
                for points in 1..=self.max_points {
                    ev.push(E::Dispatch { points });
                }
                ev
            }
            WorkerState::Working { expected, filled } => {
                let mut ev = vec![
                    E::Heartbeat,
                    E::Cell { in_range: false, duplicate: false },
                    E::Done,
                    E::Silence,
                    E::Deadline,
                    E::Eof,
                    E::Garbage,
                ];
                if filled < expected {
                    ev.push(E::Cell { in_range: true, duplicate: false });
                }
                if *filled > 0 {
                    ev.push(E::Cell { in_range: true, duplicate: true });
                }
                ev
            }
            WorkerState::Dead(_) => Vec::new(),
        }
    }

    fn step(&self, state: &WorkerState, event: &WorkerEvent) -> Step<WorkerState> {
        worker_step(state, event)
    }

    fn is_terminal(&self, state: &WorkerState) -> bool {
        matches!(state, WorkerState::Dead(_))
    }

    fn check(&self, state: &WorkerState) -> Result<(), String> {
        match state {
            WorkerState::Working { expected, filled }
            | WorkerState::Complete { expected, filled } => {
                if filled > expected {
                    return Err(format!("filled {filled} exceeds group size {expected}"));
                }
                if *expected == 0 || *expected > self.max_points {
                    return Err(format!("group size {expected} outside 1..={}", self.max_points));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}
