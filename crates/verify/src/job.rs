//! The controller job lifecycle as a typed state machine.
//!
//! [`JobState`] is the canonical definition — `service::job` re-exports
//! it, and `service::controller` applies every lifecycle change through
//! [`job_step`]. The checker drives cancellation at every state (twice,
//! for idempotency), stale queue entries, and every `Finish` outcome
//! combination, and proves the terminal classification the HTTP layer
//! serves is consistent with what was requested.

use crate::explore::{Machine, Step};

/// Where a job is in its lifecycle.
///
/// ```text
/// Queued ── dequeue ──▶ Running ── cancel ──▶ Draining ─┐
///    │                     │                            │
///    │ cancel              ├──▶ Done / Failed           │
///    ▼                     ▼                            ▼
/// Cancelled ◀──────── (interrupted) ◀───────────────────┘
/// ```
///
/// `Done`, `Failed` and `Cancelled` are terminal; only then does
/// `GET /jobs/<id>/result` serve a body.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum JobState {
    /// Accepted and waiting for a driver slot.
    Queued,
    /// A driver is executing the spec.
    Running,
    /// Cancelled while running: the driver is draining in-flight points.
    Draining,
    /// Ran to completion with nothing wrong.
    Done,
    /// Ran, but with failed cells or failed experiments in the outcome.
    Failed,
    /// Cancelled (before running, or after draining) or interrupted.
    Cancelled,
}

impl JobState {
    /// The lowercase wire name (`"queued"`, `"running"`, ...).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Draining => "draining",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can change no further (its result is final).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// A job's lifecycle state plus the cancellation latch — the pair the
/// transition function actually needs (production's `JobRecord` carries
/// both fields; this is their projection).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct JobPhase {
    /// The externally visible state.
    pub state: JobState,
    /// Whether a cancel was ever requested for this job.
    pub cancel_requested: bool,
}

impl JobPhase {
    /// A freshly submitted job.
    #[must_use]
    pub fn queued() -> Self {
        JobPhase { state: JobState::Queued, cancel_requested: false }
    }
}

/// One lifecycle event.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum JobEvent {
    /// A driver thread pops the job's id off the queue. On a job no
    /// longer `Queued` (cancelled while waiting) this is a stale entry
    /// the driver skips.
    Dequeue,
    /// `DELETE /jobs/<id>` (or the service's own drain). Idempotent.
    Cancel,
    /// The driver finished executing the spec.
    Finish {
        /// The outcome had failed cells or failed experiments.
        failed: bool,
        /// The run was interrupted (graceful shutdown / cancel drain).
        interrupted: bool,
    },
}

/// The job lifecycle transition function — total over every event
/// [`JobMachine::events`] enumerates, and the exact dispatch
/// `service::controller` uses.
#[must_use]
pub fn job_step(phase: &JobPhase, event: &JobEvent) -> Step<JobPhase> {
    use JobEvent as E;
    use JobState as S;
    match (phase.state, event) {
        (S::Queued, E::Dequeue) => {
            Step::Next(JobPhase { state: S::Running, cancel_requested: phase.cancel_requested })
        }
        (S::Queued, E::Cancel) => {
            Step::Next(JobPhase { state: S::Cancelled, cancel_requested: true })
        }
        (S::Running, E::Cancel) => {
            Step::Next(JobPhase { state: S::Draining, cancel_requested: true })
        }
        // An interrupted run — or any run whose job was asked to cancel
        // — lands on Cancelled regardless of cell failures; otherwise
        // the outcome decides Done vs Failed.
        (S::Running | S::Draining, E::Finish { failed, interrupted }) => {
            let state = if *interrupted || phase.cancel_requested {
                S::Cancelled
            } else if *failed {
                S::Failed
            } else {
                S::Done
            };
            Step::Next(JobPhase { state, cancel_requested: phase.cancel_requested })
        }
        // Cancel is idempotent while draining and after any terminal.
        (S::Draining | S::Done | S::Failed | S::Cancelled, E::Cancel) => Step::Stay,
        // A queue entry for a job cancelled while queued: the driver
        // pops the id, sees a non-Queued state, and skips it.
        (S::Cancelled, E::Dequeue) => Step::Stay,
        _ => Step::Unhandled,
    }
}

/// The job lifecycle machine the checker explores.
#[derive(Default)]
pub struct JobMachine;

impl Machine for JobMachine {
    type State = JobPhase;
    type Event = JobEvent;

    fn initial(&self) -> Vec<JobPhase> {
        vec![JobPhase::queued()]
    }

    fn events(&self, phase: &JobPhase) -> Vec<JobEvent> {
        use JobEvent as E;
        use JobState as S;
        let finishes = [
            E::Finish { failed: false, interrupted: false },
            E::Finish { failed: true, interrupted: false },
            E::Finish { failed: false, interrupted: true },
            E::Finish { failed: true, interrupted: true },
        ];
        match phase.state {
            S::Queued => vec![E::Dequeue, E::Cancel],
            S::Running | S::Draining => {
                let mut ev = vec![E::Cancel];
                ev.extend(finishes);
                ev
            }
            S::Cancelled => vec![E::Cancel, E::Dequeue],
            S::Done | S::Failed => vec![E::Cancel],
        }
    }

    fn step(&self, phase: &JobPhase, event: &JobEvent) -> Step<JobPhase> {
        job_step(phase, event)
    }

    fn is_terminal(&self, phase: &JobPhase) -> bool {
        phase.state.is_terminal()
    }

    fn check(&self, phase: &JobPhase) -> Result<(), String> {
        // Draining exists only because someone asked; a clean Done /
        // Failed means nobody ever did (a cancel always wins the race
        // under the controller's lock).
        match phase.state {
            JobState::Draining if !phase.cancel_requested => {
                Err("draining without a cancel request".to_owned())
            }
            JobState::Done | JobState::Failed if phase.cancel_requested => {
                Err(format!("{:?} despite a cancel request", phase.state))
            }
            _ => Ok(()),
        }
    }
}
