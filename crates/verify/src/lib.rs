//! Typed protocol state machines and a bounded exhaustive model checker
//! for the specfetch execution substrate (DESIGN §5l).
//!
//! The concurrent substrate built in PRs 7–9 — sharded worker processes
//! with heartbeats, the crash-exact sweep journal, the job controller —
//! promises byte-identical results under any interleaving, crash, or
//! cancellation. This crate makes the three protocols behind that
//! promise *explicit*:
//!
//! - [`worker`] — the parent↔child JSON-lines protocol v2
//!   (hello/heartbeat/cell/done per child state, with silence, deadline
//!   and EOF as first-class events);
//! - [`journal`] — the WAL lifecycle of one grid point
//!   (scheduled → attempts → completed/failed/interrupted) and the
//!   replay projection a `--resume` applies to any WAL prefix;
//! - [`job`] — the controller job lifecycle
//!   (queued/running/draining/done/failed/cancelled).
//!
//! Each protocol is a pure transition function over small `Copy` types,
//! and [`explore`](explore::explore) drives every machine through every
//! event interleaving it declares physically possible — child death,
//! torn WAL tails, duplicate and stale messages, cancellation at every
//! state — asserting that no `(state, event)` pair is unhandled, no
//! non-terminal state deadlocks, and every per-state invariant holds.
//!
//! **The checked model is the shipped code**: `experiments::worker`,
//! `experiments::journal` and `service::controller` dispatch through
//! these same transition functions rather than re-implementing them, so
//! a property the checker proves is a property production has. Like
//! `tidy`, this crate has zero dependencies and sits below everything
//! it verifies.

pub mod explore;
pub mod job;
pub mod journal;
pub mod worker;

pub use explore::{explore, random_walk, Exploration, Machine, ModelError, Step};
pub use job::{job_step, JobEvent, JobMachine, JobPhase, JobState};
pub use journal::{
    event_tag, parse_tag, point_step, replay_of, replay_step, Counters, PointEvent, PointState,
    ReplayClass, SweepEvent, SweepMachine, SweepState, MAX_ATTEMPTS, MODEL_POINTS,
};
pub use worker::{worker_step, DeadReason, WorkerEvent, WorkerMachine, WorkerState};
