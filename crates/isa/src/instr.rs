//! Control-flow classification of instructions.

use std::fmt;

use crate::Addr;

/// The control-flow-relevant classification of one static instruction.
///
/// The fetch engine only cares about how an instruction redirects (or does
/// not redirect) the PC, so everything that is not a control transfer is a
/// single [`InstrKind::Seq`] variant. Targets of direct transfers are part
/// of the static image; returns and indirect transfers carry no static
/// target — their destination is only known once the instruction resolves
/// (or is predicted by the BTB/RAS).
///
/// # Examples
///
/// ```
/// use specfetch_isa::{Addr, InstrKind};
///
/// let b = InstrKind::CondBranch { target: Addr::new(0x40) };
/// assert!(b.is_branch());
/// assert!(b.is_conditional());
/// assert_eq!(b.static_target(), Some(Addr::new(0x40)));
/// assert_eq!(InstrKind::Return.static_target(), None);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstrKind {
    /// A non-control-transfer instruction; execution falls through.
    Seq,
    /// A conditional branch with a statically-known taken target.
    CondBranch {
        /// Taken-path destination.
        target: Addr,
    },
    /// An unconditional direct jump.
    Jump {
        /// Destination.
        target: Addr,
    },
    /// A direct call; pushes the return address (PC+4) on the call stack.
    Call {
        /// Callee entry point.
        target: Addr,
    },
    /// A return; its target is the top of the call stack, unknown statically.
    Return,
    /// An indirect jump (e.g. a switch table); target unknown statically.
    IndirectJump,
    /// An indirect call (e.g. a virtual dispatch); target unknown statically.
    IndirectCall,
}

impl InstrKind {
    /// Is this any control-transfer instruction?
    ///
    /// The paper's "% Branches" column (Table 2) counts exactly these.
    pub const fn is_branch(self) -> bool {
        !matches!(self, InstrKind::Seq)
    }

    /// Is this a conditional branch (the only kind that can fall through
    /// *or* jump, and the kind counted against the unresolved-branch limit)?
    pub const fn is_conditional(self) -> bool {
        matches!(self, InstrKind::CondBranch { .. })
    }

    /// Is this always taken when executed (every transfer except a
    /// conditional branch)?
    pub const fn is_unconditional(self) -> bool {
        self.is_branch() && !self.is_conditional()
    }

    /// Does this instruction push a return address (calls, direct or
    /// indirect)?
    pub const fn is_call(self) -> bool {
        matches!(self, InstrKind::Call { .. } | InstrKind::IndirectCall)
    }

    /// Is this a return?
    pub const fn is_return(self) -> bool {
        matches!(self, InstrKind::Return)
    }

    /// The statically-known taken target, if any.
    ///
    /// Direct branches, jumps, and calls have one; returns and indirect
    /// transfers do not (their target only becomes available at resolve
    /// time, or earlier from a BTB/RAS prediction).
    pub const fn static_target(self) -> Option<Addr> {
        match self {
            InstrKind::CondBranch { target }
            | InstrKind::Jump { target }
            | InstrKind::Call { target } => Some(target),
            InstrKind::Seq
            | InstrKind::Return
            | InstrKind::IndirectJump
            | InstrKind::IndirectCall => None,
        }
    }

    /// Can the front end compute this instruction's taken target in the
    /// decode stage (two cycles after fetch)?
    ///
    /// Direct transfers encode their displacement, so decode can produce the
    /// target (this is what bounds a *misfetch* to the paper's 2-cycle
    /// penalty). Returns and indirect transfers cannot; without a BTB/RAS
    /// hit their target is only available at resolve time.
    pub const fn target_computable_at_decode(self) -> bool {
        self.static_target().is_some()
    }
}

impl fmt::Display for InstrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstrKind::Seq => write!(f, "seq"),
            InstrKind::CondBranch { target } => write!(f, "bcond {target}"),
            InstrKind::Jump { target } => write!(f, "jmp {target}"),
            InstrKind::Call { target } => write!(f, "call {target}"),
            InstrKind::Return => write!(f, "ret"),
            InstrKind::IndirectJump => write!(f, "ijmp"),
            InstrKind::IndirectCall => write!(f, "icall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Addr = Addr::new(0x80);

    #[test]
    fn seq_is_not_a_branch() {
        assert!(!InstrKind::Seq.is_branch());
        assert!(!InstrKind::Seq.is_conditional());
        assert_eq!(InstrKind::Seq.static_target(), None);
    }

    #[test]
    fn classification_matrix() {
        let cond = InstrKind::CondBranch { target: T };
        let jump = InstrKind::Jump { target: T };
        let call = InstrKind::Call { target: T };

        for k in
            [cond, jump, call, InstrKind::Return, InstrKind::IndirectJump, InstrKind::IndirectCall]
        {
            assert!(k.is_branch(), "{k} should be a branch");
        }
        assert!(cond.is_conditional());
        assert!(!jump.is_conditional());
        assert!(jump.is_unconditional());
        assert!(!cond.is_unconditional());
        assert!(call.is_call());
        assert!(InstrKind::IndirectCall.is_call());
        assert!(!jump.is_call());
        assert!(InstrKind::Return.is_return());
    }

    #[test]
    fn static_targets() {
        assert_eq!(InstrKind::CondBranch { target: T }.static_target(), Some(T));
        assert_eq!(InstrKind::Jump { target: T }.static_target(), Some(T));
        assert_eq!(InstrKind::Call { target: T }.static_target(), Some(T));
        assert_eq!(InstrKind::Return.static_target(), None);
        assert_eq!(InstrKind::IndirectJump.static_target(), None);
        assert_eq!(InstrKind::IndirectCall.static_target(), None);
    }

    #[test]
    fn decode_target_computability() {
        assert!(InstrKind::Jump { target: T }.target_computable_at_decode());
        assert!(!InstrKind::Return.target_computable_at_decode());
        assert!(!InstrKind::IndirectCall.target_computable_at_decode());
    }

    #[test]
    fn display_is_nonempty() {
        for k in [
            InstrKind::Seq,
            InstrKind::CondBranch { target: T },
            InstrKind::Jump { target: T },
            InstrKind::Call { target: T },
            InstrKind::Return,
            InstrKind::IndirectJump,
            InstrKind::IndirectCall,
        ] {
            assert!(!format!("{k}").is_empty());
        }
    }
}
