//! Instruction-set and static program-image substrate for `specfetch`.
//!
//! The ISCA '95 fetch-policy study is *trace driven*: the simulator replays
//! a recorded correct execution path, but it must also be able to walk the
//! **wrong** paths the front end speculatively fetches after a branch
//! misfetch or mispredict. Walking a wrong path requires a *static* view of
//! the program — what instruction sits at an arbitrary PC, whether it is a
//! branch, and where its statically-known target points. This crate provides
//! that view:
//!
//! - [`Addr`] / [`LineAddr`]: strongly-typed byte addresses and cache-line
//!   numbers (instructions are 4 bytes, as on the Alpha AXP the paper used).
//! - [`InstrKind`]: the control-flow-relevant classification of an
//!   instruction (sequential, conditional branch, jump, call, return,
//!   indirect jump/call).
//! - [`Program`]: an immutable code image with O(1) PC lookup, built with
//!   [`ProgramBuilder`].
//! - [`DynInstr`]: one retired instruction of the *correct* path, carrying
//!   its ground-truth outcome.
//!
//! # Examples
//!
//! Build a two-instruction infinite loop and look it up by PC:
//!
//! ```
//! use specfetch_isa::{Addr, InstrKind, ProgramBuilder};
//!
//! # fn main() -> Result<(), specfetch_isa::ProgramBuildError> {
//! let mut b = ProgramBuilder::new(Addr::new(0x1000));
//! let top = b.push(InstrKind::Seq);
//! b.push(InstrKind::CondBranch { target: top });
//! b.set_entry(top);
//! let program = b.finish()?;
//!
//! assert_eq!(program.fetch(top), Some(InstrKind::Seq));
//! assert_eq!(program.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod dynamic;
mod instr;
mod program;
mod verify;

pub use addr::{Addr, LineAddr, INSTR_BYTES};
pub use dynamic::DynInstr;
pub use instr::InstrKind;
pub use program::{Program, ProgramBuildError, ProgramBuilder};
pub use verify::{verify_cfg, CfgIssue, CfgReport};
