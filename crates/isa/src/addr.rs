//! Strongly-typed instruction addresses and cache-line numbers.

use std::fmt;

/// Size of one instruction in bytes.
///
/// The paper's benchmarks ran on the Alpha AXP-21064, a fixed-width 32-bit
/// RISC encoding; every address handled by the simulator is a multiple of
/// this constant.
pub const INSTR_BYTES: u64 = 4;

/// A byte address of an instruction.
///
/// Addresses are always aligned to [`INSTR_BYTES`]; constructors debug-assert
/// this so misaligned PCs are caught early in tests.
///
/// # Examples
///
/// ```
/// use specfetch_isa::Addr;
///
/// let pc = Addr::new(0x2000);
/// assert_eq!(pc.next().raw(), 0x2004);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `raw` is not [`INSTR_BYTES`]-aligned.
    pub const fn new(raw: u64) -> Self {
        debug_assert!(raw.is_multiple_of(INSTR_BYTES), "instruction address misaligned");
        Addr(raw)
    }

    /// Creates an address from a word index (instruction number).
    ///
    /// ```
    /// use specfetch_isa::Addr;
    /// assert_eq!(Addr::from_word(3).raw(), 12);
    /// ```
    pub const fn from_word(word: u64) -> Self {
        Addr(word * INSTR_BYTES)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the word index (`raw / 4`).
    pub const fn word_index(self) -> u64 {
        self.0 / INSTR_BYTES
    }

    /// The address of the next sequential instruction (the fall-through PC).
    pub const fn next(self) -> Addr {
        Addr(self.0 + INSTR_BYTES)
    }

    /// Offsets the address by `words` instructions (may be negative).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on underflow below address zero.
    pub fn offset_words(self, words: i64) -> Addr {
        let delta = words * INSTR_BYTES as i64;
        match self.0.checked_add_signed(delta) {
            Some(raw) => Addr(raw),
            None => panic!("address out of range: {:#x} offset by {words} words", self.0),
        }
    }

    /// The cache line this address falls in, for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        // A shift, not a division: `line_bytes` is a runtime value, so the
        // compiler cannot strength-reduce the quotient itself, and this
        // sits on the per-fetch hot path.
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

/// A cache-line number: a byte address divided by the line size.
///
/// The line size is a property of the cache, so `LineAddr` values are only
/// comparable when produced with the same `line_bytes`; the simulator always
/// derives them from a single [`crate::Addr::line`] call site per cache.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line number directly.
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// Returns the raw line number.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The next sequential line (the one next-line prefetching targets).
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// The first byte address of this line, for lines of `line_bytes` bytes.
    pub const fn base_addr(self, line_bytes: u64) -> Addr {
        Addr::new(self.0 * line_bytes)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        for w in [0u64, 1, 17, 1 << 40] {
            assert_eq!(Addr::from_word(w).word_index(), w);
        }
    }

    #[test]
    fn next_advances_one_instruction() {
        assert_eq!(Addr::new(0).next(), Addr::new(4));
        assert_eq!(Addr::new(100).next().raw(), 104);
    }

    #[test]
    fn offset_words_signed() {
        let a = Addr::new(0x100);
        assert_eq!(a.offset_words(2), Addr::new(0x108));
        assert_eq!(a.offset_words(-4), Addr::new(0xf0));
    }

    #[test]
    #[should_panic]
    fn offset_words_underflow_panics() {
        let _ = Addr::new(0).offset_words(-1);
    }

    #[test]
    fn line_mapping_32_byte_lines() {
        assert_eq!(Addr::new(0).line(32), LineAddr::new(0));
        assert_eq!(Addr::new(28).line(32), LineAddr::new(0));
        assert_eq!(Addr::new(32).line(32), LineAddr::new(1));
        assert_eq!(Addr::new(0x1000).line(32).index(), 0x1000 / 32);
    }

    #[test]
    fn line_base_addr_round_trip() {
        let line = Addr::new(0x12340).line(32);
        assert_eq!(line.base_addr(32).line(32), line);
    }

    #[test]
    fn line_next_is_sequential() {
        let line = Addr::new(0).line(32);
        assert_eq!(line.next(), Addr::new(32).line(32));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Addr::new(0x1f0)), "0x1f0");
        assert_eq!(format!("{:x}", Addr::new(0x1f0)), "1f0");
        assert_eq!(format!("{}", LineAddr::new(7)), "line#7");
    }
}
