//! Dynamic (retired, correct-path) instruction records.

use std::fmt;

use crate::{Addr, InstrKind};

/// One retired instruction of the correct execution path, with its
/// ground-truth control-flow outcome.
///
/// This is what a trace yields and what the simulator's correct-path stream
/// consumes. For non-branches `taken` is `false` and `next_pc` is `pc + 4`;
/// for branches `taken`/`next_pc` record what the program *actually* did —
/// the oracle knowledge the fetch engine is trying to predict.
///
/// # Examples
///
/// ```
/// use specfetch_isa::{Addr, DynInstr, InstrKind};
///
/// let taken = DynInstr::branch(
///     Addr::new(0x10),
///     InstrKind::CondBranch { target: Addr::new(0x40) },
///     true,
///     Addr::new(0x40),
/// );
/// assert!(taken.taken);
/// assert_eq!(taken.next_pc, Addr::new(0x40));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct DynInstr {
    /// The instruction's address.
    pub pc: Addr,
    /// Its static classification.
    pub kind: InstrKind,
    /// Actual direction (always `false` for [`InstrKind::Seq`], always
    /// `true` for unconditional transfers).
    pub taken: bool,
    /// The actual successor PC.
    pub next_pc: Addr,
}

impl DynInstr {
    /// A retired non-branch at `pc`.
    pub fn seq(pc: Addr) -> Self {
        DynInstr { pc, kind: InstrKind::Seq, taken: false, next_pc: pc.next() }
    }

    /// A retired control transfer with its actual outcome.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `kind` is [`InstrKind::Seq`], if an
    /// unconditional transfer is flagged not-taken, or if a not-taken
    /// outcome does not fall through.
    pub fn branch(pc: Addr, kind: InstrKind, taken: bool, next_pc: Addr) -> Self {
        debug_assert!(kind.is_branch(), "DynInstr::branch needs a branch kind");
        debug_assert!(taken || kind.is_conditional(), "unconditional transfers are always taken");
        debug_assert!(taken || next_pc == pc.next(), "not-taken branch must fall through");
        DynInstr { pc, kind, taken, next_pc }
    }

    /// Is this a control transfer?
    pub fn is_branch(&self) -> bool {
        self.kind.is_branch()
    }
}

impl fmt::Display for DynInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind.is_branch() {
            write!(
                f,
                "{}: {} [{} -> {}]",
                self.pc,
                self.kind,
                if self.taken { "taken" } else { "not-taken" },
                self.next_pc
            )
        } else {
            write!(f, "{}: {}", self.pc, self.kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_falls_through() {
        let d = DynInstr::seq(Addr::new(0x100));
        assert!(!d.is_branch());
        assert!(!d.taken);
        assert_eq!(d.next_pc, Addr::new(0x104));
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let pc = Addr::new(0x20);
        let d = DynInstr::branch(
            pc,
            InstrKind::CondBranch { target: Addr::new(0x80) },
            false,
            pc.next(),
        );
        assert!(d.is_branch());
        assert_eq!(d.next_pc, Addr::new(0x24));
    }

    #[test]
    fn taken_branch_jumps() {
        let d = DynInstr::branch(
            Addr::new(0x20),
            InstrKind::Jump { target: Addr::new(0x80) },
            true,
            Addr::new(0x80),
        );
        assert_eq!(d.next_pc, Addr::new(0x80));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // validation is debug_assert! (hot path)
    fn seq_kind_rejected_by_branch_ctor() {
        let _ = DynInstr::branch(Addr::new(0), InstrKind::Seq, false, Addr::new(4));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // validation is debug_assert! (hot path)
    fn not_taken_must_fall_through() {
        let _ = DynInstr::branch(
            Addr::new(0),
            InstrKind::CondBranch { target: Addr::new(8) },
            false,
            Addr::new(8),
        );
    }

    #[test]
    fn display_shows_outcome() {
        let d = DynInstr::branch(
            Addr::new(0x20),
            InstrKind::CondBranch { target: Addr::new(0x80) },
            true,
            Addr::new(0x80),
        );
        let s = format!("{d}");
        assert!(s.contains("taken"));
        assert!(!format!("{}", DynInstr::seq(Addr::new(0))).is_empty());
    }
}
