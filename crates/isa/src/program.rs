//! The immutable static code image and its builder.

use std::fmt;

use crate::{Addr, InstrKind, INSTR_BYTES};

/// An immutable static program image.
///
/// A `Program` is a contiguous array of instructions starting at a base
/// address, plus an entry point. It answers the one question wrong-path
/// walking needs in O(1): *what instruction is at this PC?*
///
/// Construct one with [`ProgramBuilder`].
///
/// # Examples
///
/// ```
/// use specfetch_isa::{Addr, InstrKind, ProgramBuilder};
///
/// # fn main() -> Result<(), specfetch_isa::ProgramBuildError> {
/// let mut b = ProgramBuilder::new(Addr::new(0));
/// let entry = b.push(InstrKind::Seq);
/// b.push(InstrKind::Jump { target: entry });
/// b.set_entry(entry);
/// let p = b.finish()?;
/// assert!(p.contains(Addr::new(4)));
/// assert!(!p.contains(Addr::new(8)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    base: Addr,
    entry: Addr,
    instrs: Vec<InstrKind>,
}

impl Program {
    /// The instruction at `pc`, or `None` if `pc` is outside the image.
    pub fn fetch(&self, pc: Addr) -> Option<InstrKind> {
        if pc < self.base {
            return None;
        }
        let idx = (pc.raw() - self.base.raw()) / INSTR_BYTES;
        self.instrs.get(idx as usize).copied()
    }

    /// Does the image contain `pc`?
    pub fn contains(&self, pc: Addr) -> bool {
        self.fetch(pc).is_some()
    }

    /// The lowest instruction address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The execution entry point.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the image empty? (Never true for a built [`Program`]; kept for
    /// API completeness.)
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The code footprint in bytes (what determines cache pressure).
    pub fn footprint_bytes(&self) -> u64 {
        self.instrs.len() as u64 * INSTR_BYTES
    }

    /// One-past-the-last instruction address.
    pub fn end(&self) -> Addr {
        Addr::new(self.base.raw() + self.footprint_bytes())
    }

    /// Iterates over `(pc, kind)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, InstrKind)> + '_ {
        let base = self.base;
        self.instrs
            .iter()
            .enumerate()
            .map(move |(i, &k)| (Addr::new(base.raw() + i as u64 * INSTR_BYTES), k))
    }

    /// Count of static control-transfer instructions.
    pub fn static_branch_count(&self) -> usize {
        self.instrs.iter().filter(|k| k.is_branch()).count()
    }

    /// A copy of the image with the instruction at `at` replaced,
    /// bypassing [`ProgramBuilder::finish`] validation, or `None` if `at`
    /// lies outside the image.
    ///
    /// This deliberately skips the target-containment checks so the
    /// static CFG verifier (and its tests, and the `repro
    /// --corrupt-target` diagnostics hook) can construct structurally
    /// broken images on purpose. Simulation code must never call it.
    #[must_use]
    pub fn with_instr_unchecked(&self, at: Addr, kind: InstrKind) -> Option<Program> {
        if at < self.base {
            return None;
        }
        let idx = ((at.raw() - self.base.raw()) / INSTR_BYTES) as usize;
        let mut instrs = self.instrs.clone();
        *instrs.get_mut(idx)? = kind;
        Some(Program { base: self.base, entry: self.entry, instrs })
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("base", &self.base)
            .field("entry", &self.entry)
            .field("len", &self.instrs.len())
            .field("branches", &self.static_branch_count())
            .finish()
    }
}

/// Error returned by [`ProgramBuilder::finish`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramBuildError {
    /// The image has no instructions.
    Empty,
    /// No entry point was set with [`ProgramBuilder::set_entry`].
    NoEntry,
    /// The entry point lies outside the image.
    EntryOutOfRange {
        /// The offending entry address.
        entry: Addr,
    },
    /// A direct transfer at `at` targets an address outside the image.
    TargetOutOfRange {
        /// The branch address.
        at: Addr,
        /// Its out-of-range target.
        target: Addr,
    },
}

impl fmt::Display for ProgramBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramBuildError::Empty => write!(f, "program image is empty"),
            ProgramBuildError::NoEntry => write!(f, "no entry point set"),
            ProgramBuildError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry} is outside the image")
            }
            ProgramBuildError::TargetOutOfRange { at, target } => {
                write!(f, "branch at {at} targets {target} outside the image")
            }
        }
    }
}

impl std::error::Error for ProgramBuildError {}

/// Incrementally builds a [`Program`].
///
/// Instructions are appended at consecutive addresses starting from the
/// base. Forward branches whose destinations are not yet known can be
/// emitted with a placeholder target and patched later via
/// [`ProgramBuilder::patch_target`].
///
/// # Examples
///
/// A forward conditional branch patched once its destination is known:
///
/// ```
/// use specfetch_isa::{Addr, InstrKind, ProgramBuilder};
///
/// # fn main() -> Result<(), specfetch_isa::ProgramBuildError> {
/// let mut b = ProgramBuilder::new(Addr::new(0));
/// let branch = b.push(InstrKind::CondBranch { target: Addr::new(0) });
/// b.push(InstrKind::Seq);
/// let join = b.push(InstrKind::Seq);
/// b.patch_target(branch, join);
/// b.set_entry(Addr::new(0));
/// let p = b.finish()?;
/// assert_eq!(p.fetch(branch), Some(InstrKind::CondBranch { target: join }));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    base: Addr,
    entry: Option<Addr>,
    instrs: Vec<InstrKind>,
}

impl ProgramBuilder {
    /// Starts an image whose first instruction will live at `base`.
    pub fn new(base: Addr) -> Self {
        ProgramBuilder { base, entry: None, instrs: Vec::new() }
    }

    /// The address the *next* pushed instruction will receive.
    pub fn next_addr(&self) -> Addr {
        Addr::new(self.base.raw() + self.instrs.len() as u64 * INSTR_BYTES)
    }

    /// Appends one instruction; returns its address.
    pub fn push(&mut self, kind: InstrKind) -> Addr {
        let at = self.next_addr();
        self.instrs.push(kind);
        at
    }

    /// Appends `n` sequential (non-branch) instructions; returns the address
    /// of the first one (equal to [`Self::next_addr`] before the call).
    pub fn push_seq(&mut self, n: usize) -> Addr {
        let first = self.next_addr();
        self.instrs.extend(std::iter::repeat_n(InstrKind::Seq, n));
        first
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Has nothing been pushed yet?
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Sets the execution entry point.
    pub fn set_entry(&mut self, entry: Addr) {
        self.entry = Some(entry);
    }

    /// Rewrites the target of the direct transfer at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the image or the instruction there carries
    /// no static target (it is `Seq`, a return, or indirect) — both are
    /// builder-logic bugs, not recoverable conditions.
    pub fn patch_target(&mut self, at: Addr, target: Addr) {
        let idx = ((at.raw() - self.base.raw()) / INSTR_BYTES) as usize;
        let Some(slot) = self.instrs.get_mut(idx) else {
            panic!("patch address {at} outside image");
        };
        match slot {
            InstrKind::CondBranch { target: t }
            | InstrKind::Jump { target: t }
            | InstrKind::Call { target: t } => *t = target,
            other => panic!("instruction at {at} ({other}) has no patchable target"),
        }
    }

    /// Validates and freezes the image.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramBuildError`] if the image is empty, the entry point
    /// is missing or out of range, or any direct transfer targets an address
    /// outside the image.
    pub fn finish(self) -> Result<Program, ProgramBuildError> {
        if self.instrs.is_empty() {
            return Err(ProgramBuildError::Empty);
        }
        let entry = self.entry.ok_or(ProgramBuildError::NoEntry)?;
        let program = Program { base: self.base, entry, instrs: self.instrs };
        if !program.contains(entry) {
            return Err(ProgramBuildError::EntryOutOfRange { entry });
        }
        for (at, kind) in program.iter() {
            if let Some(target) = kind.static_target() {
                if !program.contains(target) {
                    return Err(ProgramBuildError::TargetOutOfRange { at, target });
                }
            }
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new(Addr::new(0x1000));
        let entry = b.push_seq(3);
        b.push(InstrKind::CondBranch { target: entry });
        b.set_entry(entry);
        b.finish().unwrap()
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny();
        assert_eq!(p.fetch(Addr::new(0x1000)), Some(InstrKind::Seq));
        assert_eq!(
            p.fetch(Addr::new(0x100c)),
            Some(InstrKind::CondBranch { target: Addr::new(0x1000) })
        );
        assert_eq!(p.fetch(Addr::new(0x1010)), None);
        assert_eq!(p.fetch(Addr::new(0xffc)), None);
    }

    #[test]
    fn geometry() {
        let p = tiny();
        assert_eq!(p.len(), 4);
        assert_eq!(p.footprint_bytes(), 16);
        assert_eq!(p.base(), Addr::new(0x1000));
        assert_eq!(p.end(), Addr::new(0x1010));
        assert_eq!(p.entry(), Addr::new(0x1000));
        assert_eq!(p.static_branch_count(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn iter_yields_addresses_in_order() {
        let p = tiny();
        let addrs: Vec<_> = p.iter().map(|(a, _)| a.raw()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1004, 0x1008, 0x100c]);
    }

    #[test]
    fn builder_next_addr_tracks_pushes() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        assert_eq!(b.next_addr(), Addr::new(0));
        b.push(InstrKind::Seq);
        assert_eq!(b.next_addr(), Addr::new(4));
        b.push_seq(2);
        assert_eq!(b.next_addr(), Addr::new(12));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_image_is_an_error() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        b.set_entry(Addr::new(0));
        assert_eq!(b.finish().unwrap_err(), ProgramBuildError::Empty);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        b.push(InstrKind::Seq);
        assert_eq!(b.finish().unwrap_err(), ProgramBuildError::NoEntry);
    }

    #[test]
    fn entry_out_of_range_is_an_error() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        b.push(InstrKind::Seq);
        b.set_entry(Addr::new(0x100));
        assert!(matches!(b.finish().unwrap_err(), ProgramBuildError::EntryOutOfRange { .. }));
    }

    #[test]
    fn dangling_target_is_an_error() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        b.push(InstrKind::Jump { target: Addr::new(0x4000) });
        b.set_entry(Addr::new(0));
        assert!(matches!(b.finish().unwrap_err(), ProgramBuildError::TargetOutOfRange { .. }));
    }

    #[test]
    fn patch_target_rewrites() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let j = b.push(InstrKind::Jump { target: Addr::new(0) });
        let dest = b.push(InstrKind::Seq);
        b.patch_target(j, dest);
        b.set_entry(Addr::new(0));
        let p = b.finish().unwrap();
        assert_eq!(p.fetch(j), Some(InstrKind::Jump { target: dest }));
    }

    #[test]
    #[should_panic]
    fn patch_non_branch_panics() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let s = b.push(InstrKind::Seq);
        b.patch_target(s, Addr::new(0));
    }

    #[test]
    fn with_instr_unchecked_replaces_without_validation() {
        let p = tiny();
        let bad = Addr::new(0xdead_0000);
        let q = p.with_instr_unchecked(Addr::new(0x1004), InstrKind::Jump { target: bad }).unwrap();
        assert_eq!(q.fetch(Addr::new(0x1004)), Some(InstrKind::Jump { target: bad }));
        // The rest of the image and the entry are untouched.
        assert_eq!(q.entry(), p.entry());
        assert_eq!(q.fetch(Addr::new(0x1000)), p.fetch(Addr::new(0x1000)));
        assert!(p.with_instr_unchecked(Addr::new(0x2000), InstrKind::Seq).is_none());
        assert!(p.with_instr_unchecked(Addr::new(0x0ffc), InstrKind::Seq).is_none());
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ProgramBuildError> = vec![
            ProgramBuildError::Empty,
            ProgramBuildError::NoEntry,
            ProgramBuildError::EntryOutOfRange { entry: Addr::new(4) },
            ProgramBuildError::TargetOutOfRange { at: Addr::new(0), target: Addr::new(8) },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
