//! Static CFG verification of a [`Program`] image.
//!
//! The fetch-policy comparison is only meaningful if every code image is
//! structurally sound: the Optimistic and Resume policies fetch down
//! *wrong* paths, so not only the recorded correct path but every
//! speculative walk the front end can take must stay inside a valid
//! static program. [`verify_cfg`] checks that before any simulation runs:
//!
//! - the entry point and every direct branch/call target resolve to an
//!   instruction inside the image;
//! - indirect dispatch targets (supplied by the caller — the synth layer
//!   passes its dispatch tables) resolve likewise;
//! - all code is reachable from the entry point;
//! - returns pair with calls: no abstract walk reaches a `Return` with an
//!   empty call stack;
//! - the correct path never falls through past the end of the image; and
//! - every *wrong-path* walk — the fall-through of a taken conditional,
//!   the static target of a not-taken one, and everything the
//!   decode-guided walk reaches from those divergence points — stays
//!   inside the image.
//!
//! # The abstract walk
//!
//! Reachability runs over `(instruction, depth-class)` states, where the
//! call-stack depth is abstracted to the two-point lattice
//! `{zero, positive}`: a `Call` reaches its target at *positive* depth
//! and its fall-through (the return site) at the caller's depth; a
//! `Return` at *zero* depth is a call/return pairing violation. This
//! keeps the walk linear in the image size while still catching a return
//! that can execute with nothing on the stack.
//!
//! The wrong-path closure follows the *decode-guided* walk the fetch
//! engine actually performs: sequential instructions fall through, direct
//! transfers redirect to their static target (decode computes it two
//! cycles after fetch, which is what bounds a misfetch), and returns or
//! indirect transfers halt the walk unless a dispatch table names their
//! possible (BTB-predictable) targets. The transient fetch-stage
//! fall-through at an unconditional transfer under a BTB miss is *not* an
//! escape: the engine halts gracefully at the image edge until decode
//! redirects, so only the decode-guided closure must be in-image.

use std::fmt;

use crate::{Addr, InstrKind, Program, INSTR_BYTES};

/// One structural defect found by [`verify_cfg`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgIssue {
    /// The entry point lies outside the image.
    EntryOutOfImage {
        /// The offending entry address.
        entry: Addr,
    },
    /// A direct transfer targets an address outside the image.
    TargetOutOfImage {
        /// The transfer's address.
        at: Addr,
        /// Its out-of-image target.
        target: Addr,
    },
    /// An indirect site's dispatch table names a target outside the image.
    DispatchTargetOutOfImage {
        /// The indirect site's address.
        at: Addr,
        /// The out-of-image table entry.
        target: Addr,
    },
    /// An indirect site has no dispatch table at all.
    MissingDispatch {
        /// The indirect site's address.
        at: Addr,
    },
    /// A conditional branch carries no behavioural annotation.
    ///
    /// Never emitted by [`verify_cfg`] itself (behaviours are not part of
    /// the ISA image); annotation layers such as `specfetch-synth`'s
    /// workload analysis append it so one typed issue enum covers the
    /// whole report.
    MissingBehavior {
        /// The unannotated conditional's address.
        at: Addr,
    },
    /// An instruction can never execute: no path from the entry reaches it.
    Unreachable {
        /// The dead instruction's address.
        at: Addr,
        /// What sits there.
        kind: InstrKind,
    },
    /// A `Return` is reachable with an empty call stack.
    ReturnUnderflow {
        /// The return's address.
        at: Addr,
    },
    /// The correct path can fall through past the end of the image.
    FallthroughEscape {
        /// The last instruction the path executes before escaping.
        at: Addr,
    },
    /// A wrong-path walk can fall through past the end of the image.
    WrongPathEscape {
        /// The last instruction the walk visits before escaping.
        at: Addr,
    },
}

impl fmt::Display for CfgIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgIssue::EntryOutOfImage { entry } => {
                write!(f, "entry point {entry} is outside the image")
            }
            CfgIssue::TargetOutOfImage { at, target } => {
                write!(f, "transfer at {at} targets {target} outside the image")
            }
            CfgIssue::DispatchTargetOutOfImage { at, target } => {
                write!(f, "indirect site at {at} dispatches to {target} outside the image")
            }
            CfgIssue::MissingDispatch { at } => {
                write!(f, "indirect site at {at} has no dispatch table")
            }
            CfgIssue::MissingBehavior { at } => {
                write!(f, "conditional at {at} has no branch behavior")
            }
            CfgIssue::Unreachable { at, kind } => {
                write!(f, "instruction at {at} ({kind}) is unreachable from the entry")
            }
            CfgIssue::ReturnUnderflow { at } => {
                write!(f, "return at {at} is reachable with an empty call stack")
            }
            CfgIssue::FallthroughEscape { at } => {
                write!(f, "correct path falls off the image end after {at}")
            }
            CfgIssue::WrongPathEscape { at } => {
                write!(f, "wrong-path walk falls off the image end after {at}")
            }
        }
    }
}

/// The outcome of one [`verify_cfg`] run: walk statistics plus every
/// issue found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CfgReport {
    /// Static instructions in the image.
    pub instrs: usize,
    /// Instructions reachable from the entry on correct paths.
    pub reachable: usize,
    /// Conditional branches in the image (the wrong-path seed points).
    pub conditionals: usize,
    /// Instructions visited by the wrong-path (decode-guided) closure.
    pub wrong_path_visited: usize,
    /// Every structural defect found, in discovery order.
    pub issues: Vec<CfgIssue>,
}

impl CfgReport {
    /// Did the image pass every check?
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// A one-line verdict: the first issue plus how many more there are,
    /// or `"ok"` for a clean image. Compact enough for a `FAILED(...)`
    /// cell.
    pub fn headline(&self) -> String {
        match self.issues.as_slice() {
            [] => "ok".to_owned(),
            [only] => only.to_string(),
            [first, rest @ ..] => format!("{first} (+{} more)", rest.len()),
        }
    }
}

impl fmt::Display for CfgReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs, {} reachable, {} conditionals, {} wrong-path-visited: {}",
            self.instrs,
            self.reachable,
            self.conditionals,
            self.wrong_path_visited,
            self.headline()
        )
    }
}

/// Depth-class bits for the reachability walk.
const DEPTH_ZERO: u8 = 1;
const DEPTH_POS: u8 = 2;

/// Statically verifies `program`'s control-flow graph.
///
/// `dispatch` supplies the possible targets of each indirect site (by the
/// site's address); return `None` for a site with no table — that is
/// itself reported as [`CfgIssue::MissingDispatch`]. Callers without any
/// indirect-dispatch knowledge can pass `|_| None`.
///
/// See the [module docs](self) for the exact invariants checked.
pub fn verify_cfg<F>(program: &Program, dispatch: F) -> CfgReport
where
    F: Fn(Addr) -> Option<Vec<Addr>>,
{
    let len = program.len();
    let base = program.base();
    let idx_of = |a: Addr| -> Option<usize> {
        if a < base {
            return None;
        }
        let i = ((a.raw() - base.raw()) / INSTR_BYTES) as usize;
        (i < len).then_some(i)
    };
    let addr_of = |i: usize| Addr::new(base.raw() + i as u64 * INSTR_BYTES);
    let kinds: Vec<InstrKind> = program.iter().map(|(_, k)| k).collect();

    let mut issues = Vec::new();

    // Pass 1 — static target resolution, over the whole image (a dead
    // dangling branch is still a defect: a wrong-path walk may fetch it).
    let mut dispatch_idx: Vec<Option<Vec<usize>>> = vec![None; len];
    for (i, &kind) in kinds.iter().enumerate() {
        let at = addr_of(i);
        if let Some(target) = kind.static_target() {
            if idx_of(target).is_none() {
                issues.push(CfgIssue::TargetOutOfImage { at, target });
            }
        }
        if matches!(kind, InstrKind::IndirectJump | InstrKind::IndirectCall) {
            match dispatch(at) {
                None => issues.push(CfgIssue::MissingDispatch { at }),
                Some(targets) => {
                    let mut resolved = Vec::with_capacity(targets.len());
                    for target in targets {
                        match idx_of(target) {
                            Some(j) => resolved.push(j),
                            None => {
                                issues.push(CfgIssue::DispatchTargetOutOfImage { at, target });
                            }
                        }
                    }
                    dispatch_idx[i] = Some(resolved);
                }
            }
        }
    }

    // Pass 2 — correct-path reachability over (instruction, depth-class)
    // states.
    let entry_idx = idx_of(program.entry());
    if entry_idx.is_none() {
        issues.push(CfgIssue::EntryOutOfImage { entry: program.entry() });
    }
    let mut seen = vec![0u8; len];
    let mut work: Vec<(usize, u8)> = Vec::new();
    let push = |i: usize, d: u8, seen: &mut Vec<u8>, work: &mut Vec<(usize, u8)>| {
        if seen[i] & d == 0 {
            seen[i] |= d;
            work.push((i, d));
        }
    };
    let mut fallthrough_escapes = vec![false; len];
    let mut return_underflows = vec![false; len];
    if let Some(e) = entry_idx {
        push(e, DEPTH_ZERO, &mut seen, &mut work);
    }
    while let Some((i, d)) = work.pop() {
        let fall = |i: usize| (i + 1 < len).then_some(i + 1);
        match kinds[i] {
            InstrKind::Seq => match fall(i) {
                Some(n) => push(n, d, &mut seen, &mut work),
                None => fallthrough_escapes[i] = true,
            },
            InstrKind::CondBranch { target } => {
                if let Some(t) = idx_of(target) {
                    push(t, d, &mut seen, &mut work);
                }
                match fall(i) {
                    Some(n) => push(n, d, &mut seen, &mut work),
                    None => fallthrough_escapes[i] = true,
                }
            }
            InstrKind::Jump { target } => {
                if let Some(t) = idx_of(target) {
                    push(t, d, &mut seen, &mut work);
                }
            }
            InstrKind::Call { target } => {
                if let Some(t) = idx_of(target) {
                    push(t, DEPTH_POS, &mut seen, &mut work);
                }
                // The matched return resumes at the call's fall-through,
                // at the caller's own depth.
                match fall(i) {
                    Some(n) => push(n, d, &mut seen, &mut work),
                    None => fallthrough_escapes[i] = true,
                }
            }
            InstrKind::Return => {
                if d == DEPTH_ZERO {
                    return_underflows[i] = true;
                }
                // At positive depth the continuation is the matching
                // call's fall-through, already a successor of the call.
            }
            InstrKind::IndirectJump => {
                for &t in dispatch_idx[i].as_deref().unwrap_or_default() {
                    push(t, d, &mut seen, &mut work);
                }
            }
            InstrKind::IndirectCall => {
                for &t in dispatch_idx[i].as_deref().unwrap_or_default() {
                    push(t, DEPTH_POS, &mut seen, &mut work);
                }
                match fall(i) {
                    Some(n) => push(n, d, &mut seen, &mut work),
                    None => fallthrough_escapes[i] = true,
                }
            }
        }
    }
    for (i, &underflow) in return_underflows.iter().enumerate() {
        if underflow {
            issues.push(CfgIssue::ReturnUnderflow { at: addr_of(i) });
        }
    }
    for (i, &escape) in fallthrough_escapes.iter().enumerate() {
        if escape {
            issues.push(CfgIssue::FallthroughEscape { at: addr_of(i) });
        }
    }
    if entry_idx.is_some() {
        for (i, &s) in seen.iter().enumerate() {
            if s == 0 {
                issues.push(CfgIssue::Unreachable { at: addr_of(i), kind: kinds[i] });
            }
        }
    }

    // Pass 3 — wrong-path closure. Seeds are both successors of every
    // reachable conditional (whichever way the branch actually goes, the
    // *other* successor is the wrong path a speculative policy fetches);
    // the walk is decode-guided from there.
    let mut wp = vec![false; len];
    let mut wp_work: Vec<usize> = Vec::new();
    let mut wp_escapes = vec![false; len];
    let wp_push = |i: usize, wp: &mut Vec<bool>, wp_work: &mut Vec<usize>| {
        if !wp[i] {
            wp[i] = true;
            wp_work.push(i);
        }
    };
    for (i, &kind) in kinds.iter().enumerate() {
        if seen[i] != 0 && kind.is_conditional() {
            if let Some(t) = kind.static_target().and_then(idx_of) {
                wp_push(t, &mut wp, &mut wp_work);
            }
            if i + 1 < len {
                wp_push(i + 1, &mut wp, &mut wp_work);
            } else {
                wp_escapes[i] = true;
            }
        }
    }
    while let Some(i) = wp_work.pop() {
        match kinds[i] {
            InstrKind::Seq => {
                if i + 1 < len {
                    wp_push(i + 1, &mut wp, &mut wp_work);
                } else {
                    wp_escapes[i] = true;
                }
            }
            InstrKind::CondBranch { target } => {
                // On a wrong path the predictor may steer either way.
                if let Some(t) = idx_of(target) {
                    wp_push(t, &mut wp, &mut wp_work);
                }
                if i + 1 < len {
                    wp_push(i + 1, &mut wp, &mut wp_work);
                } else {
                    wp_escapes[i] = true;
                }
            }
            InstrKind::Jump { target } => {
                if let Some(t) = idx_of(target) {
                    wp_push(t, &mut wp, &mut wp_work);
                }
            }
            InstrKind::Call { target } => {
                if let Some(t) = idx_of(target) {
                    wp_push(t, &mut wp, &mut wp_work);
                }
                // A wrong-path return can resume at the call's return site.
                if i + 1 < len {
                    wp_push(i + 1, &mut wp, &mut wp_work);
                } else {
                    wp_escapes[i] = true;
                }
            }
            // Decode cannot compute these targets; the walk halts unless
            // the BTB supplies one — and every BTB-predictable target is a
            // dispatch-table entry (indirect) or a call return site
            // (return), both already in the closure.
            InstrKind::Return => {}
            InstrKind::IndirectJump | InstrKind::IndirectCall => {
                for &t in dispatch_idx[i].as_deref().unwrap_or_default() {
                    wp_push(t, &mut wp, &mut wp_work);
                }
                if kinds[i] == InstrKind::IndirectCall {
                    if i + 1 < len {
                        wp_push(i + 1, &mut wp, &mut wp_work);
                    } else {
                        wp_escapes[i] = true;
                    }
                }
            }
        }
    }
    for (i, &escape) in wp_escapes.iter().enumerate() {
        if escape {
            issues.push(CfgIssue::WrongPathEscape { at: addr_of(i) });
        }
    }

    CfgReport {
        instrs: len,
        reachable: seen.iter().filter(|&&s| s != 0).count(),
        conditionals: kinds.iter().filter(|k| k.is_conditional()).count(),
        wrong_path_visited: wp.iter().filter(|&&v| v).count(),
        issues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    /// `f` at the base (Seq, Return); `main` after it (Call f, Seq,
    /// CondBranch back to main, Jump back to main). Structurally clean.
    fn clean_program() -> Program {
        let mut b = ProgramBuilder::new(Addr::new(0x1000));
        let f = b.push(InstrKind::Seq);
        b.push(InstrKind::Return);
        let main = b.push(InstrKind::Call { target: f });
        b.push(InstrKind::Seq);
        b.push(InstrKind::CondBranch { target: main });
        b.push(InstrKind::Jump { target: main });
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn clean_program_passes_all_checks() {
        let p = clean_program();
        let r = verify_cfg(&p, |_| None);
        assert!(r.is_ok(), "unexpected issues: {:?}", r.issues);
        assert_eq!(r.instrs, 6);
        assert_eq!(r.reachable, 6);
        assert_eq!(r.conditionals, 1);
        assert!(r.wrong_path_visited > 0);
        assert_eq!(r.headline(), "ok");
    }

    #[test]
    fn corrupted_target_is_pinpointed() {
        let p = clean_program();
        // The conditional sits at word 4 of the image.
        let at = Addr::new(0x1010);
        let bad = Addr::new(0x9000);
        let p = p.with_instr_unchecked(at, InstrKind::CondBranch { target: bad }).unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::TargetOutOfImage { at, target: bad }), "{r}");
    }

    #[test]
    fn unreachable_code_is_reported() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let dead = b.push(InstrKind::Seq);
        let live = b.push(InstrKind::Jump { target: Addr::new(4) });
        b.set_entry(live);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::Unreachable { at: dead, kind: InstrKind::Seq }));
        assert_eq!(r.reachable, 1);
    }

    #[test]
    fn return_with_empty_stack_is_reported() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::Return);
        b.push(InstrKind::Jump { target: entry });
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::ReturnUnderflow { at: entry }), "{r}");
    }

    #[test]
    fn return_under_a_call_is_fine() {
        let p = clean_program();
        let r = verify_cfg(&p, |_| None);
        assert!(!r.issues.iter().any(|i| matches!(i, CfgIssue::ReturnUnderflow { .. })));
    }

    #[test]
    fn missing_dispatch_table_is_reported() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::IndirectJump);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::MissingDispatch { at: entry }));
    }

    #[test]
    fn dispatch_target_out_of_image_is_reported() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::IndirectJump);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let bad = Addr::new(0x4000);
        let r = verify_cfg(&p, |_| Some(vec![bad]));
        assert!(r.issues.contains(&CfgIssue::DispatchTargetOutOfImage { at: entry, target: bad }));
    }

    #[test]
    fn dispatch_targets_extend_reachability() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::IndirectJump);
        let island = b.push(InstrKind::Jump { target: Addr::new(4) });
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let no_table = verify_cfg(&p, |_| None);
        assert!(no_table
            .issues
            .contains(&CfgIssue::Unreachable { at: island, kind: p.fetch(island).unwrap() }));
        let with_table = verify_cfg(&p, |at| (at == entry).then(|| vec![island]));
        assert!(with_table.is_ok(), "{with_table}");
    }

    #[test]
    fn correct_path_fallthrough_escape_is_reported() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::Seq);
        let last = b.push(InstrKind::Seq);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::FallthroughEscape { at: last }), "{r}");
    }

    #[test]
    fn wrong_path_escape_at_trailing_conditional_is_reported() {
        // The conditional is the last instruction: its not-taken wrong
        // path falls off the image.
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::Seq);
        let cond = b.push(InstrKind::CondBranch { target: entry });
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.contains(&CfgIssue::WrongPathEscape { at: cond }), "{r}");
    }

    #[test]
    fn wrong_path_walk_through_seq_tail_escapes() {
        // cond -> (taken) loops; its fall-through walks two Seqs and then
        // off the end, even though the correct path never goes there...
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::Seq);
        b.push(InstrKind::CondBranch { target: entry });
        b.push(InstrKind::Seq);
        let last = b.push(InstrKind::Seq);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        // ...so the tail Seqs are both unreachable (correct path) and a
        // wrong-path escape route.
        assert!(r.issues.contains(&CfgIssue::WrongPathEscape { at: last }), "{r}");
    }

    #[test]
    fn headline_counts_extra_issues() {
        let mut b = ProgramBuilder::new(Addr::new(0));
        let entry = b.push(InstrKind::Return);
        b.push(InstrKind::Seq);
        b.set_entry(entry);
        let p = b.finish().unwrap();
        let r = verify_cfg(&p, |_| None);
        assert!(r.issues.len() >= 2, "{r}");
        assert!(r.headline().contains("more"), "{}", r.headline());
        assert!(!r.is_ok());
        assert!(r.to_string().contains("instrs"));
    }

    #[test]
    fn issue_display_is_nonempty() {
        let a = Addr::new(4);
        let issues = [
            CfgIssue::EntryOutOfImage { entry: a },
            CfgIssue::TargetOutOfImage { at: a, target: a },
            CfgIssue::DispatchTargetOutOfImage { at: a, target: a },
            CfgIssue::MissingDispatch { at: a },
            CfgIssue::MissingBehavior { at: a },
            CfgIssue::Unreachable { at: a, kind: InstrKind::Seq },
            CfgIssue::ReturnUnderflow { at: a },
            CfgIssue::FallthroughEscape { at: a },
            CfgIssue::WrongPathEscape { at: a },
        ];
        for i in issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
