//! The single-transaction channel to the next memory level.

use std::fmt;

use specfetch_isa::LineAddr;

/// Why a line is being fetched over the bus.
///
/// The purpose drives both ISPI attribution (a correct-path fetch stalling
/// behind a `DemandWrong` or `Prefetch` transaction is the paper's `bus`
/// component) and the memory-traffic tables.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Purpose {
    /// A demand miss on the (believed-)correct path.
    DemandCorrect,
    /// A demand miss issued while on a wrong path.
    DemandWrong,
    /// A next-line prefetch.
    Prefetch,
    /// A branch-target prefetch (the Smith & Hsu '92 extension).
    TargetPrefetch,
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Purpose::DemandCorrect => write!(f, "demand-correct"),
            Purpose::DemandWrong => write!(f, "demand-wrong"),
            Purpose::Prefetch => write!(f, "prefetch"),
            Purpose::TargetPrefetch => write!(f, "target-prefetch"),
        }
    }
}

/// An in-flight line fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// The line being fetched.
    pub line: LineAddr,
    /// Cycle at which the fill completes (data available).
    pub complete_at: u64,
    /// Why it was issued.
    pub purpose: Purpose,
}

/// The channel between the I-cache and the next hierarchy level.
///
/// The paper's machine allows **one** outstanding transaction (the
/// default, [`Bus::new`]); [`Bus::with_slots`] models the paper's §6
/// future-work idea of *pipelined miss requests* — up to `slots` fills in
/// flight, each still taking the full penalty. A new request must wait
/// for [`Bus::is_free`]. Completions are polled by the engine each cycle
/// via [`Bus::take_completed`]. Total traffic per [`Purpose`] is counted
/// for the paper's bandwidth tables (Tables 4 and 7).
///
/// # Examples
///
/// ```
/// use specfetch_cache::{Bus, Purpose};
/// use specfetch_isa::LineAddr;
///
/// let mut bus = Bus::new();
/// assert!(bus.is_free());
/// bus.start(10, LineAddr::new(3), 5, Purpose::DemandCorrect);
/// assert!(!bus.is_free());
/// assert!(bus.take_completed(14).is_none()); // still in flight
/// let tx = bus.take_completed(15).unwrap();
/// assert_eq!(tx.line, LineAddr::new(3));
/// assert!(bus.is_free());
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    slots: usize,
    in_flight: Vec<Transaction>,
    demand_correct: u64,
    demand_wrong: u64,
    prefetches: u64,
    target_prefetches: u64,
}

impl Default for Bus {
    fn default() -> Self {
        Bus::new()
    }
}

impl Bus {
    /// An idle single-transaction bus (the paper's configuration).
    pub fn new() -> Self {
        Bus::with_slots(1)
    }

    /// A bus allowing up to `slots` pipelined fills (§6 future work).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "bus needs at least one transaction slot");
        Bus {
            slots,
            in_flight: Vec::with_capacity(slots),
            demand_correct: 0,
            demand_wrong: 0,
            prefetches: 0,
            target_prefetches: 0,
        }
    }

    /// Can a new transaction start?
    pub fn is_free(&self) -> bool {
        self.in_flight.len() < self.slots
    }

    /// The oldest in-flight transaction, if any.
    pub fn current(&self) -> Option<&Transaction> {
        self.in_flight.first()
    }

    /// Is any fill of `line` in flight (any purpose)?
    pub fn in_flight(&self, line: LineAddr) -> bool {
        self.in_flight.iter().any(|t| t.line == line)
    }

    /// Starts a fill of `line` at cycle `now` with the given miss penalty;
    /// returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if no slot is available — the engine must check
    /// [`Bus::is_free`] first (an over-subscribed bus is an engine bug,
    /// not a runtime condition).
    pub fn start(&mut self, now: u64, line: LineAddr, penalty: u64, purpose: Purpose) -> u64 {
        assert!(self.is_free(), "all bus transaction slots are occupied");
        let complete_at = now + penalty;
        self.in_flight.push(Transaction { line, complete_at, purpose });
        match purpose {
            Purpose::DemandCorrect => self.demand_correct += 1,
            Purpose::DemandWrong => self.demand_wrong += 1,
            Purpose::Prefetch => self.prefetches += 1,
            Purpose::TargetPrefetch => self.target_prefetches += 1,
        }
        complete_at
    }

    /// Removes and returns one transaction that has completed by cycle
    /// `now` (oldest first); call repeatedly until `None` to drain a
    /// pipelined bus.
    pub fn take_completed(&mut self, now: u64) -> Option<Transaction> {
        let idx = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, t)| t.complete_at <= now)
            .min_by_key(|(_, t)| t.complete_at)
            .map(|(i, _)| i)?;
        Some(self.in_flight.remove(idx))
    }

    /// The completion cycle of the transaction that finishes first, if
    /// any is in flight. Lets the engine fast-forward over cycles in
    /// which nothing can happen.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.in_flight.iter().map(|t| t.complete_at).min()
    }

    /// Completed-or-started demand fills on the believed-correct path.
    pub fn demand_correct_count(&self) -> u64 {
        self.demand_correct
    }

    /// Demand fills issued on wrong paths.
    pub fn demand_wrong_count(&self) -> u64 {
        self.demand_wrong
    }

    /// Next-line prefetch fills issued.
    pub fn prefetch_count(&self) -> u64 {
        self.prefetches
    }

    /// Target-prefetch fills issued.
    pub fn target_prefetch_count(&self) -> u64 {
        self.target_prefetches
    }

    /// Is any in-flight transaction a prefetch of `line`?
    pub fn prefetch_in_flight(&self, line: LineAddr) -> bool {
        self.in_flight.iter().any(|t| {
            t.line == line && matches!(t.purpose, Purpose::Prefetch | Purpose::TargetPrefetch)
        })
    }

    /// Total memory transactions (the traffic number of Tables 4 and 7).
    pub fn total_traffic(&self) -> u64 {
        self.demand_correct + self.demand_wrong + self.prefetches + self.target_prefetches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_and_completes() {
        let mut bus = Bus::new();
        let done = bus.start(100, LineAddr::new(1), 20, Purpose::DemandCorrect);
        assert_eq!(done, 120);
        assert!(bus.take_completed(119).is_none());
        let tx = bus.take_completed(120).unwrap();
        assert_eq!(tx.purpose, Purpose::DemandCorrect);
        assert!(bus.is_free());
    }

    #[test]
    fn late_poll_still_delivers() {
        let mut bus = Bus::new();
        bus.start(0, LineAddr::new(1), 5, Purpose::Prefetch);
        assert!(bus.take_completed(500).is_some());
    }

    #[test]
    #[should_panic]
    fn double_start_panics() {
        let mut bus = Bus::new();
        bus.start(0, LineAddr::new(1), 5, Purpose::DemandCorrect);
        bus.start(1, LineAddr::new(2), 5, Purpose::DemandCorrect);
    }

    #[test]
    fn traffic_counted_by_purpose() {
        let mut bus = Bus::new();
        bus.start(0, LineAddr::new(1), 1, Purpose::DemandCorrect);
        bus.take_completed(1);
        bus.start(1, LineAddr::new(2), 1, Purpose::DemandWrong);
        bus.take_completed(2);
        bus.start(2, LineAddr::new(3), 1, Purpose::Prefetch);
        bus.take_completed(3);
        assert_eq!(bus.demand_correct_count(), 1);
        assert_eq!(bus.demand_wrong_count(), 1);
        assert_eq!(bus.prefetch_count(), 1);
        assert_eq!(bus.total_traffic(), 3);
    }

    #[test]
    fn pipelined_bus_overlaps_transactions() {
        let mut bus = Bus::with_slots(2);
        bus.start(0, LineAddr::new(1), 10, Purpose::DemandCorrect);
        assert!(bus.is_free(), "second slot available");
        bus.start(2, LineAddr::new(2), 10, Purpose::Prefetch);
        assert!(!bus.is_free());
        assert!(bus.in_flight(LineAddr::new(1)));
        assert!(bus.in_flight(LineAddr::new(2)));
        // Oldest completion drains first.
        let a = bus.take_completed(12).unwrap();
        assert_eq!(a.line, LineAddr::new(1));
        assert!(bus.is_free());
        let b = bus.take_completed(12).unwrap();
        assert_eq!(b.line, LineAddr::new(2));
        assert!(bus.take_completed(100).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_slot_bus_rejected() {
        let _ = Bus::with_slots(0);
    }

    #[test]
    fn purpose_display_nonempty() {
        for p in [
            Purpose::DemandCorrect,
            Purpose::DemandWrong,
            Purpose::Prefetch,
            Purpose::TargetPrefetch,
        ] {
            assert!(!p.to_string().is_empty());
        }
    }

    #[test]
    fn target_prefetches_counted_separately() {
        let mut bus = Bus::new();
        bus.start(0, LineAddr::new(1), 1, Purpose::TargetPrefetch);
        assert!(bus.prefetch_in_flight(LineAddr::new(1)));
        assert!(!bus.prefetch_in_flight(LineAddr::new(2)));
        bus.take_completed(1);
        assert_eq!(bus.target_prefetch_count(), 1);
        assert_eq!(bus.prefetch_count(), 0);
        assert_eq!(bus.total_traffic(), 1);
    }
}
