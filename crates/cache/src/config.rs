//! Cache geometry configuration.

use std::fmt;

/// Geometry of an instruction cache.
///
/// The paper simulates direct-mapped 8 KB and 32 KB caches with 32-byte
/// lines; [`CacheConfig::paper_8k`] and [`CacheConfig::paper_32k`] are
/// those configurations. Associativity is exposed for the set-associative
/// ablation.
///
/// # Examples
///
/// ```
/// use specfetch_cache::CacheConfig;
///
/// let c = CacheConfig::paper_8k();
/// assert_eq!(c.num_lines(), 256);
/// assert_eq!(c.num_sets(), 256);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct mapped, the paper's configuration).
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's small cache: 8 KB direct-mapped, 32-byte lines.
    pub fn paper_8k() -> Self {
        CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, assoc: 1 }
    }

    /// The paper's large cache: 32 KB direct-mapped, 32-byte lines.
    pub fn paper_32k() -> Self {
        CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, assoc: 1 }
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }

    /// Number of sets (`lines / assoc`).
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.assoc
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.assoc == 0 {
            return Err(CacheConfigError::ZeroSize);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(CacheConfigError::LineNotPowerOfTwo { line_bytes: self.line_bytes });
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes) {
            return Err(CacheConfigError::SizeNotLineMultiple {
                size_bytes: self.size_bytes,
                line_bytes: self.line_bytes,
            });
        }
        if !self.num_lines().is_multiple_of(self.assoc) {
            return Err(CacheConfigError::LinesNotDivisible {
                lines: self.num_lines(),
                assoc: self.assoc,
            });
        }
        if !self.num_sets().is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo { sets: self.num_sets() });
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_8k()
    }
}

/// A constraint violation in a [`CacheConfig`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CacheConfigError {
    /// A zero size, line size, or associativity.
    ZeroSize,
    /// Line size is not a power of two.
    LineNotPowerOfTwo {
        /// The offending line size.
        line_bytes: u64,
    },
    /// Capacity is not a multiple of the line size.
    SizeNotLineMultiple {
        /// Configured capacity.
        size_bytes: u64,
        /// Configured line size.
        line_bytes: u64,
    },
    /// Line count is not divisible by the associativity.
    LinesNotDivisible {
        /// Total lines.
        lines: usize,
        /// Configured associativity.
        assoc: usize,
    },
    /// Set count is not a power of two.
    SetsNotPowerOfTwo {
        /// The offending set count.
        sets: usize,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::ZeroSize => {
                write!(f, "cache size, line size, and associativity must be nonzero")
            }
            CacheConfigError::LineNotPowerOfTwo { line_bytes } => {
                write!(f, "line size {line_bytes} is not a power of two")
            }
            CacheConfigError::SizeNotLineMultiple { size_bytes, line_bytes } => {
                write!(f, "cache size {size_bytes} is not a multiple of line size {line_bytes}")
            }
            CacheConfigError::LinesNotDivisible { lines, assoc } => {
                write!(f, "{lines} lines not divisible by associativity {assoc}")
            }
            CacheConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count {sets} is not a power of two")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_valid() {
        assert_eq!(CacheConfig::paper_8k().validate(), Ok(()));
        assert_eq!(CacheConfig::paper_32k().validate(), Ok(()));
        assert_eq!(CacheConfig::default(), CacheConfig::paper_8k());
    }

    #[test]
    fn paper_geometry() {
        let c8 = CacheConfig::paper_8k();
        assert_eq!(c8.num_lines(), 256);
        assert_eq!(c8.num_sets(), 256);
        let c32 = CacheConfig::paper_32k();
        assert_eq!(c32.num_lines(), 1024);
    }

    #[test]
    fn assoc_divides_lines_into_sets() {
        let c = CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, assoc: 4 };
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    fn rejects_bad_geometries() {
        let zero = CacheConfig { size_bytes: 0, line_bytes: 32, assoc: 1 };
        assert_eq!(zero.validate(), Err(CacheConfigError::ZeroSize));

        let odd_line = CacheConfig { size_bytes: 8192, line_bytes: 48, assoc: 1 };
        assert!(matches!(odd_line.validate(), Err(CacheConfigError::LineNotPowerOfTwo { .. })));

        let ragged = CacheConfig { size_bytes: 8200, line_bytes: 32, assoc: 1 };
        assert!(matches!(ragged.validate(), Err(CacheConfigError::SizeNotLineMultiple { .. })));

        let indivisible = CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, assoc: 3 };
        assert!(matches!(indivisible.validate(), Err(CacheConfigError::LinesNotDivisible { .. })));

        let bad_sets = CacheConfig { size_bytes: 96, line_bytes: 32, assoc: 1 };
        assert!(matches!(bad_sets.validate(), Err(CacheConfigError::SetsNotPowerOfTwo { .. })));
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            CacheConfigError::ZeroSize,
            CacheConfigError::LineNotPowerOfTwo { line_bytes: 48 },
            CacheConfigError::SizeNotLineMultiple { size_bytes: 100, line_bytes: 32 },
            CacheConfigError::LinesNotDivisible { lines: 256, assoc: 3 },
            CacheConfigError::SetsNotPowerOfTwo { sets: 3 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
