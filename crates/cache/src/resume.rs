//! The Resume policy's one-line fill buffer.

use specfetch_isa::LineAddr;

/// The paper's resume buffer: "a buffer that can hold the missing cache
/// line when it is returned from memory as well as the index where it
/// needs to be stored in the I-cache".
///
/// Under the Resume policy, a wrong-path fill that completes after the
/// processor has already redirected drains into this buffer instead of
/// stalling the cache. The buffered line is written into the cache at the
/// next I-cache miss; if that next miss is *for the buffered line*, it is
/// satisfied from the buffer without a new memory request.
///
/// # Examples
///
/// ```
/// use specfetch_cache::ResumeBuffer;
/// use specfetch_isa::LineAddr;
///
/// let mut rb = ResumeBuffer::new();
/// rb.store(LineAddr::new(9));
/// assert!(rb.holds(LineAddr::new(9)));
/// assert_eq!(rb.take(), Some(LineAddr::new(9)));
/// assert!(rb.take().is_none());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ResumeBuffer {
    line: Option<LineAddr>,
}

impl ResumeBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        ResumeBuffer::default()
    }

    /// Parks a completed fill in the buffer.
    ///
    /// A previous occupant is overwritten; with a single-transaction bus
    /// the engine always drains the buffer (at the miss that starts the
    /// next fill) before another fill can complete, so an overwrite
    /// indicates an engine bug in debug builds.
    pub fn store(&mut self, line: LineAddr) {
        debug_assert!(self.line.is_none(), "resume buffer overwritten before being drained");
        self.line = Some(line);
    }

    /// Is `line` parked here?
    pub fn holds(&self, line: LineAddr) -> bool {
        self.line == Some(line)
    }

    /// Is anything parked here?
    pub fn is_occupied(&self) -> bool {
        self.line.is_some()
    }

    /// Removes and returns the parked line (to be written into the cache).
    pub fn take(&mut self) -> Option<LineAddr> {
        self.line.take()
    }

    /// The parked line, if any, without draining.
    pub fn peek(&self) -> Option<LineAddr> {
        self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let rb = ResumeBuffer::new();
        assert!(!rb.is_occupied());
        assert!(!rb.holds(LineAddr::new(0)));
        assert_eq!(rb.peek(), None);
    }

    #[test]
    fn store_take_cycle() {
        let mut rb = ResumeBuffer::new();
        rb.store(LineAddr::new(4));
        assert!(rb.is_occupied());
        assert!(rb.holds(LineAddr::new(4)));
        assert!(!rb.holds(LineAddr::new(5)));
        assert_eq!(rb.peek(), Some(LineAddr::new(4)));
        assert_eq!(rb.take(), Some(LineAddr::new(4)));
        assert!(!rb.is_occupied());
    }

    #[test]
    fn take_when_empty_is_none() {
        let mut rb = ResumeBuffer::new();
        assert_eq!(rb.take(), None);
    }
}
