//! Instruction-cache and memory-channel substrate for `specfetch`.
//!
//! The paper studies a **blocking** I-cache with, at most, one outstanding
//! request to the next level of the hierarchy, plus two one-line buffers
//! that give the Resume policy and next-line prefetching their
//! almost-free hardware cost:
//!
//! - [`ICache`]: a set-associative (direct-mapped in the paper) instruction
//!   cache with the per-line **first-time-referenced bit** that drives
//!   next-line prefetching.
//! - [`Bus`]: the single-transaction channel to the next level; whoever
//!   holds it (demand miss or prefetch) blocks everyone else until the
//!   miss penalty elapses — the source of the paper's `bus` ISPI component.
//! - [`ResumeBuffer`]: the Resume policy's one-line fill buffer. A
//!   wrong-path fill that completes after a squash drains here; it is
//!   written into the cache at the next miss, which also checks the buffer
//!   to avoid a redundant memory request.
//! - [`NextLinePrefetcher`]: the paper's "maximal fetchahead and first
//!   time referenced" next-line prefetch variant, with its own one-line
//!   buffer and the same deferred-write rule.
//! - [`TargetPrefetcher`]: the Smith & Hsu '92 branch-target prefetch
//!   extension (combined with next-line it approximates Pierce & Mudge's
//!   wrong-path prefetching, both related-work baselines in the paper).
//! - [`StreamBuffer`]: Jouppi '90's FIFO stream buffer, the third
//!   prefetching scheme of the paper's related-work survey.
//!
//! # Examples
//!
//! ```
//! use specfetch_cache::{CacheConfig, ICache};
//! use specfetch_isa::Addr;
//!
//! let cfg = CacheConfig::paper_8k();
//! let mut cache = ICache::new(&cfg);
//! let line = Addr::new(0x1000).line(cfg.line_bytes);
//!
//! assert!(!cache.access(line)); // cold miss
//! cache.fill(line);
//! assert!(cache.access(line)); // now a hit
//! assert_eq!(cache.stats().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod config;
mod icache;
mod prefetch;
mod resume;
mod stats;
mod stream;
mod target_prefetch;

pub use bus::{Bus, Purpose, Transaction};
pub use config::{CacheConfig, CacheConfigError};
pub use icache::ICache;
pub use prefetch::{NextLinePrefetcher, PrefetchDecision};
pub use resume::ResumeBuffer;
pub use stats::CacheStats;
pub use stream::StreamBuffer;
pub use target_prefetch::TargetPrefetcher;
