//! Cache access statistics.

use std::fmt;

/// Hit/miss counters for an [`crate::ICache`].
///
/// `accesses`/`misses` count *demand* line probes (one per distinct line a
/// fetch group touches); `fills` counts line installs from any source
/// (demand, resume-buffer drain, prefetch-buffer drain).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Demand line accesses.
    pub accesses: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines installed.
    pub fills: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.fills += other.fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} fills",
            self.accesses,
            self.misses,
            100.0 * self.miss_ratio(),
            self.fills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computed() {
        let s = CacheStats { accesses: 200, misses: 30, fills: 30 };
        assert!((s.miss_ratio() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = CacheStats { accesses: 10, misses: 2, fills: 2 };
        a.merge(&CacheStats { accesses: 5, misses: 1, fills: 3 });
        assert_eq!(a, CacheStats { accesses: 15, misses: 3, fills: 5 });
    }

    #[test]
    fn display_nonempty() {
        assert!(!CacheStats::default().to_string().is_empty());
    }
}
