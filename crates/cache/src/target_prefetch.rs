//! Branch-target prefetching (the Smith & Hsu '92 extension).
//!
//! Where next-line prefetching covers sequential flow, *target*
//! prefetching covers taken branches: a small direct-mapped table learns,
//! per cache line, which non-sequential line execution jumped to last
//! time; when the line is fetched again, the remembered successor is
//! prefetched. Combining both (with target taking priority, as in Pierce
//! & Mudge's *wrong-path prefetching*) covers both outcomes of a
//! conditional branch.

use specfetch_isa::LineAddr;

use crate::{Bus, ICache, PrefetchDecision, Purpose};

/// A direct-mapped table of `line -> last taken-successor line`, with the
/// same one-line fill buffer and deferred-write rule as the next-line
/// prefetcher.
///
/// # Examples
///
/// ```
/// use specfetch_cache::{Bus, CacheConfig, ICache, PrefetchDecision, TargetPrefetcher};
/// use specfetch_isa::LineAddr;
///
/// let mut cache = ICache::new(&CacheConfig::paper_8k());
/// let mut bus = Bus::new();
/// let mut pf = TargetPrefetcher::new(64);
///
/// cache.fill(LineAddr::new(3));
/// pf.train(LineAddr::new(3), LineAddr::new(40)); // a taken branch jumped 3 -> 40
/// let d = pf.trigger(0, LineAddr::new(3), &mut cache, &mut bus, 5);
/// assert_eq!(d, PrefetchDecision::Issued);
/// assert_eq!(bus.current().unwrap().line, LineAddr::new(40));
/// ```
#[derive(Clone, Debug)]
pub struct TargetPrefetcher {
    /// `table[line % len] = (line, successor)`.
    table: Vec<Option<(u64, LineAddr)>>,
    buffered: Option<LineAddr>,
    trained: u64,
    issued: u64,
    buffer_hits: u64,
}

impl TargetPrefetcher {
    /// Creates a table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table entries must be a power of two");
        TargetPrefetcher {
            table: vec![None; entries],
            buffered: None,
            trained: 0,
            issued: 0,
            buffer_hits: 0,
        }
    }

    fn slot(&self, line: LineAddr) -> usize {
        (line.index() % self.table.len() as u64) as usize
    }

    /// Records that control flow left `from` for the non-sequential line
    /// `to` (called by the engine for taken branches that cross lines).
    pub fn train(&mut self, from: LineAddr, to: LineAddr) {
        if from == to || to == from.next() {
            return; // sequential flow is next-line prefetching's job
        }
        let i = self.slot(from);
        self.table[i] = Some((from.index(), to));
        self.trained += 1;
    }

    /// The remembered successor of `from`, if the table holds one.
    pub fn predict(&self, from: LineAddr) -> Option<LineAddr> {
        let (tag, to) = self.table[self.slot(from)]?;
        (tag == from.index()).then_some(to)
    }

    /// Runs the trigger for a fetch access to `line`: if a successor is
    /// remembered and absent, prefetch it (when the bus is free).
    pub fn trigger(
        &mut self,
        now: u64,
        line: LineAddr,
        icache: &mut ICache,
        bus: &mut Bus,
        penalty: u64,
    ) -> PrefetchDecision {
        let Some(to) = self.predict(line) else {
            return PrefetchDecision::NotTriggered;
        };
        if icache.contains(to) || self.buffered == Some(to) || bus.prefetch_in_flight(to) {
            return PrefetchDecision::AlreadyCovered;
        }
        if !bus.is_free() {
            return PrefetchDecision::BusBusy;
        }
        self.drain_into(icache);
        bus.start(now, to, penalty, Purpose::TargetPrefetch);
        self.issued += 1;
        PrefetchDecision::Issued
    }

    /// Parks a completed target prefetch in the buffer.
    pub fn complete(&mut self, line: LineAddr) {
        debug_assert!(self.buffered.is_none(), "target buffer overwritten before draining");
        self.buffered = Some(line);
    }

    /// Writes the buffered line into the cache (at a miss, or before the
    /// next issue).
    pub fn drain_into(&mut self, icache: &mut ICache) {
        if let Some(line) = self.buffered.take() {
            if !icache.contains(line) {
                icache.fill(line);
            }
        }
    }

    /// Does the buffer hold `line`? Counts a hit when it matches.
    pub fn buffer_satisfies(&mut self, line: LineAddr) -> bool {
        let hit = self.buffered == Some(line);
        if hit {
            self.buffer_hits += 1;
        }
        hit
    }

    /// The buffered line, if any.
    pub fn buffered(&self) -> Option<LineAddr> {
        self.buffered
    }

    /// Training events observed.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Prefetches issued on the bus.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Demand misses satisfied from the buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    fn setup() -> (ICache, Bus, TargetPrefetcher) {
        (ICache::new(&CacheConfig::paper_8k()), Bus::new(), TargetPrefetcher::new(64))
    }

    #[test]
    fn untrained_never_triggers() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        assert_eq!(
            pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5),
            PrefetchDecision::NotTriggered
        );
    }

    #[test]
    fn sequential_training_is_ignored() {
        let (_, _, mut pf) = setup();
        pf.train(LineAddr::new(5), LineAddr::new(6)); // next line
        pf.train(LineAddr::new(5), LineAddr::new(5)); // same line
        assert_eq!(pf.predict(LineAddr::new(5)), None);
        assert_eq!(pf.trained(), 0);
    }

    #[test]
    fn trains_and_issues() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.train(LineAddr::new(1), LineAddr::new(30));
        assert_eq!(pf.predict(LineAddr::new(1)), Some(LineAddr::new(30)));
        assert_eq!(pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5), PrefetchDecision::Issued);
        assert_eq!(b.target_prefetch_count(), 1);
    }

    #[test]
    fn retrains_to_latest_successor() {
        let (_, _, mut pf) = setup();
        pf.train(LineAddr::new(1), LineAddr::new(30));
        pf.train(LineAddr::new(1), LineAddr::new(50));
        assert_eq!(pf.predict(LineAddr::new(1)), Some(LineAddr::new(50)));
    }

    #[test]
    fn aliasing_evicts_the_older_entry() {
        let (_, _, mut pf) = setup(); // 64 slots
        pf.train(LineAddr::new(1), LineAddr::new(30));
        pf.train(LineAddr::new(65), LineAddr::new(90)); // same slot as 1
        assert_eq!(pf.predict(LineAddr::new(1)), None);
        assert_eq!(pf.predict(LineAddr::new(65)), Some(LineAddr::new(90)));
    }

    #[test]
    fn covered_and_busy_cases() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        c.fill(LineAddr::new(30));
        pf.train(LineAddr::new(1), LineAddr::new(30));
        assert_eq!(
            pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5),
            PrefetchDecision::AlreadyCovered
        );
        pf.train(LineAddr::new(1), LineAddr::new(31));
        b.start(0, LineAddr::new(99), 20, Purpose::DemandCorrect);
        assert_eq!(pf.trigger(1, LineAddr::new(1), &mut c, &mut b, 5), PrefetchDecision::BusBusy);
    }

    #[test]
    fn buffer_lifecycle() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.train(LineAddr::new(1), LineAddr::new(30));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5);
        let tx = b.take_completed(5).unwrap();
        pf.complete(tx.line);
        assert!(pf.buffer_satisfies(LineAddr::new(30)));
        assert!(!pf.buffer_satisfies(LineAddr::new(31)));
        pf.drain_into(&mut c);
        assert!(c.contains(LineAddr::new(30)));
        assert_eq!(pf.buffered(), None);
        assert_eq!(pf.buffer_hits(), 1);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_table_panics() {
        let _ = TargetPrefetcher::new(63);
    }
}
