//! Next-line prefetching ("maximal fetchahead and first time referenced").

use specfetch_isa::LineAddr;

use crate::{Bus, ICache, Purpose};

/// What a prefetch trigger decided.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrefetchDecision {
    /// The accessed line's first-ref bit was clear: nothing to do.
    NotTriggered,
    /// The next line is already resident (or buffered or in flight); the
    /// bit was cleared without a memory request.
    AlreadyCovered,
    /// A prefetch of the next line was issued on the bus.
    Issued,
    /// The bus was busy; the bit stays set and the trigger will retry on a
    /// later access.
    BusBusy,
}

/// The paper's next-line prefetch variant.
///
/// When a line is loaded into the cache its first-time-referenced bit is
/// set (see [`ICache::fill`]). When the fetch unit reads from a line whose
/// bit is set, the prefetcher tries to fetch line *i+1*: if it is already
/// resident the bit is simply cleared; if the bus is free a prefetch is
/// issued (and the bit cleared); if the bus is busy nothing happens and the
/// trigger retries on a later access.
///
/// A completed prefetch parks in a one-line buffer and is "written before
/// the next prefetch is issued or at the next I-cache miss, whichever
/// comes first" (§3) — [`NextLinePrefetcher::drain_into`] implements the
/// write, and the engine calls it at both of those points.
///
/// # Examples
///
/// ```
/// use specfetch_cache::{Bus, CacheConfig, ICache, NextLinePrefetcher, PrefetchDecision};
/// use specfetch_isa::LineAddr;
///
/// let mut cache = ICache::new(&CacheConfig::paper_8k());
/// let mut bus = Bus::new();
/// let mut pf = NextLinePrefetcher::new();
///
/// cache.fill(LineAddr::new(10)); // sets the first-ref bit
/// let d = pf.trigger(0, LineAddr::new(10), &mut cache, &mut bus, 5);
/// assert_eq!(d, PrefetchDecision::Issued);
/// assert!(!cache.first_ref_set(LineAddr::new(10)));
/// assert_eq!(bus.current().unwrap().line, LineAddr::new(11));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct NextLinePrefetcher {
    buffered: Option<LineAddr>,
    triggers: u64,
    issued: u64,
    buffer_hits: u64,
}

impl NextLinePrefetcher {
    /// A prefetcher with an empty buffer.
    pub fn new() -> Self {
        NextLinePrefetcher::default()
    }

    /// Runs the trigger check for a fetch access to `line` (which hit in
    /// the cache). `penalty` is the line-fill latency.
    pub fn trigger(
        &mut self,
        now: u64,
        line: LineAddr,
        icache: &mut ICache,
        bus: &mut Bus,
        penalty: u64,
    ) -> PrefetchDecision {
        if !icache.first_ref_set(line) {
            return PrefetchDecision::NotTriggered;
        }
        self.triggers += 1;
        let next = line.next();
        let in_flight = bus.in_flight(next);
        if icache.contains(next) || self.buffered == Some(next) || in_flight {
            icache.clear_first_ref(line);
            return PrefetchDecision::AlreadyCovered;
        }
        if !bus.is_free() {
            return PrefetchDecision::BusBusy;
        }
        // "The prefetched line is written before the next prefetch is
        // issued": drain the buffer first.
        self.drain_into(icache);
        icache.clear_first_ref(line);
        bus.start(now, next, penalty, Purpose::Prefetch);
        self.issued += 1;
        PrefetchDecision::Issued
    }

    /// Parks a completed prefetch transaction's line in the buffer.
    pub fn complete(&mut self, line: LineAddr) {
        debug_assert!(self.buffered.is_none(), "prefetch buffer overwritten before draining");
        self.buffered = Some(line);
    }

    /// Writes the buffered line (if any) into the cache. The engine calls
    /// this at every I-cache miss and the prefetcher itself calls it before
    /// issuing the next prefetch.
    pub fn drain_into(&mut self, icache: &mut ICache) {
        if let Some(line) = self.buffered.take() {
            if !icache.contains(line) {
                icache.fill(line);
            }
        }
    }

    /// Does the buffer currently hold `line`? (A demand miss to a buffered
    /// line costs nothing — the engine checks this before going to
    /// memory.) Counts a buffer hit when it matches.
    pub fn buffer_satisfies(&mut self, line: LineAddr) -> bool {
        let hit = self.buffered == Some(line);
        if hit {
            self.buffer_hits += 1;
        }
        hit
    }

    /// The buffered line, if any.
    pub fn buffered(&self) -> Option<LineAddr> {
        self.buffered
    }

    /// Times the trigger condition fired (first-ref bit seen set).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Prefetches actually issued on the bus.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Demand misses satisfied from the prefetch buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;

    fn setup() -> (ICache, Bus, NextLinePrefetcher) {
        (ICache::new(&CacheConfig::paper_8k()), Bus::new(), NextLinePrefetcher::new())
    }

    #[test]
    fn no_trigger_without_first_ref_bit() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        c.clear_first_ref(LineAddr::new(1));
        let d = pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5);
        assert_eq!(d, PrefetchDecision::NotTriggered);
        assert!(b.is_free());
    }

    #[test]
    fn issues_and_clears_bit() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        assert_eq!(pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5), PrefetchDecision::Issued);
        assert!(!c.first_ref_set(LineAddr::new(1)));
        assert_eq!(b.prefetch_count(), 1);
        // Second access: bit clear, no re-trigger.
        assert_eq!(
            pf.trigger(1, LineAddr::new(1), &mut c, &mut b, 5),
            PrefetchDecision::NotTriggered
        );
    }

    #[test]
    fn already_resident_clears_bit_without_traffic() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        c.fill(LineAddr::new(2));
        assert_eq!(
            pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5),
            PrefetchDecision::AlreadyCovered
        );
        assert!(!c.first_ref_set(LineAddr::new(1)));
        assert_eq!(b.total_traffic(), 0);
    }

    #[test]
    fn busy_bus_leaves_bit_set_for_retry() {
        let (mut c, mut b, mut pf) = setup();
        b.start(0, LineAddr::new(99), 20, Purpose::DemandCorrect);
        c.fill(LineAddr::new(1));
        assert_eq!(pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5), PrefetchDecision::BusBusy);
        assert!(c.first_ref_set(LineAddr::new(1)), "bit must stay set for retry");
        // Bus frees up; retry succeeds.
        b.take_completed(20);
        assert_eq!(pf.trigger(21, LineAddr::new(1), &mut c, &mut b, 5), PrefetchDecision::Issued);
    }

    #[test]
    fn in_flight_prefetch_counts_as_covered() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5); // line 2 in flight
        c.fill(LineAddr::new(1 + 256)); // evicts line 1 (direct mapped, 256 sets)
        c.fill(LineAddr::new(1));
        // Retrigger for line 2 while its prefetch is still in flight.
        assert_eq!(
            pf.trigger(1, LineAddr::new(1), &mut c, &mut b, 5),
            PrefetchDecision::AlreadyCovered
        );
        assert_eq!(b.prefetch_count(), 1);
    }

    #[test]
    fn completed_prefetch_parks_then_drains() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5);
        let tx = b.take_completed(5).unwrap();
        pf.complete(tx.line);
        assert_eq!(pf.buffered(), Some(LineAddr::new(2)));
        assert!(!c.contains(LineAddr::new(2)), "not written until drain");
        pf.drain_into(&mut c);
        assert!(c.contains(LineAddr::new(2)));
        assert!(c.first_ref_set(LineAddr::new(2)), "prefetched lines re-arm the bit");
        assert_eq!(pf.buffered(), None);
    }

    #[test]
    fn next_issue_drains_previous_buffer() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5);
        pf.complete(b.take_completed(5).unwrap().line); // line 2 buffered
        c.fill(LineAddr::new(10));
        assert_eq!(pf.trigger(6, LineAddr::new(10), &mut c, &mut b, 5), PrefetchDecision::Issued);
        assert!(c.contains(LineAddr::new(2)), "buffer drained before new issue");
        assert_eq!(pf.buffered(), None);
    }

    #[test]
    fn buffer_satisfies_demand_miss() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5);
        pf.complete(b.take_completed(5).unwrap().line);
        assert!(pf.buffer_satisfies(LineAddr::new(2)));
        assert!(!pf.buffer_satisfies(LineAddr::new(3)));
        assert_eq!(pf.buffer_hits(), 1);
    }

    #[test]
    fn stats_track_triggers_and_issues() {
        let (mut c, mut b, mut pf) = setup();
        c.fill(LineAddr::new(1));
        c.fill(LineAddr::new(2));
        pf.trigger(0, LineAddr::new(1), &mut c, &mut b, 5); // covered
        pf.trigger(1, LineAddr::new(2), &mut c, &mut b, 5); // issued (line 3)
        assert_eq!(pf.triggers(), 2);
        assert_eq!(pf.issued(), 1);
    }
}
