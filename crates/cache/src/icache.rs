//! The instruction cache proper.

use specfetch_isa::LineAddr;

use crate::{CacheConfig, CacheStats};

#[derive(Copy, Clone, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    /// The paper's next-line-prefetch state: set when the line is loaded,
    /// cleared when a prefetch of line+1 is triggered from it.
    first_ref: bool,
    lru: u64,
}

const EMPTY_WAY: Way = Way { tag: 0, valid: false, first_ref: false, lru: 0 };

/// A set-associative instruction cache with per-line first-time-referenced
/// bits.
///
/// The paper's caches are direct-mapped ([`CacheConfig::paper_8k`] /
/// [`CacheConfig::paper_32k`]); associativity > 1 is the set-associative
/// ablation. Replacement is true LRU within a set.
///
/// The cache stores *presence* only — the simulator never needs
/// instruction bytes, just hit/miss behaviour.
///
/// See the crate-level example for basic use.
#[derive(Clone, Debug)]
pub struct ICache {
    /// All ways, flat: set `s` owns `ways[s * assoc .. (s + 1) * assoc]`.
    /// One contiguous allocation (the paper's 8 KB cache is ~6 KB of
    /// metadata) keeps the per-fetch lookup inside a hot cache line.
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    set_shift: u32,
    tick: u64,
    stats: CacheStats,
    /// One-entry memo of the most recently *hit* line. Fetch touches the
    /// same line several cycles in a row, and a re-access of the line
    /// that just hit must hit again — and, being the cache's newest
    /// stamp, re-stamping it cannot change any set's relative LRU order
    /// — so the way scan and stamp write can be skipped wholesale. The
    /// access is still counted. Cleared on every fill: the fill may
    /// evict the memoised line, or claim the newest stamp in its set.
    last_hit: Option<LineAddr>,
}

impl ICache {
    /// Builds a cache from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CacheConfig::validate`]; validate first
    /// if the configuration comes from user input.
    pub fn new(config: &CacheConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid cache configuration: {e}");
        }
        let n_sets = config.num_sets();
        ICache {
            ways: vec![EMPTY_WAY; n_sets * config.assoc],
            assoc: config.assoc,
            set_mask: n_sets as u64 - 1,
            set_shift: (n_sets as u64 - 1).count_ones(),
            tick: 0,
            stats: CacheStats::default(),
            last_hit: None,
        }
    }

    fn index(&self, line: LineAddr) -> (usize, u64) {
        ((line.index() & self.set_mask) as usize, line.index() >> self.set_shift)
    }

    fn set(&self, set: usize) -> &[Way] {
        &self.ways[set * self.assoc..(set + 1) * self.assoc]
    }

    fn set_mut(&mut self, set: usize) -> &mut [Way] {
        let assoc = self.assoc;
        &mut self.ways[set * assoc..(set + 1) * assoc]
    }

    /// A demand access: returns `true` on a hit (refreshing LRU) and
    /// counts the access in [`ICache::stats`].
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.stats.accesses += 1;
        if self.last_hit == Some(line) {
            return true;
        }
        let (set, tag) = self.index(line);
        self.tick += 1;
        let tick = self.tick;
        if let Some(w) = self.set_mut(set).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            self.last_hit = Some(line);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Is `line` resident? (No statistics, no LRU update.)
    pub fn contains(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        self.set(set).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting the set's LRU victim if needed, and sets
    /// its first-time-referenced bit (the paper sets the bit whenever a
    /// line is loaded, by demand or prefetch).
    pub fn fill(&mut self, line: LineAddr) {
        self.stats.fills += 1;
        self.last_hit = None;
        let (set, tag) = self.index(line);
        self.tick += 1;
        let tick = self.tick;
        let ways = self.set_mut(set);
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            // Refill of a resident line (can happen when a stale wrong-path
            // fill lands after the same line was demand-filled).
            w.lru = tick;
            w.first_ref = true;
            return;
        }
        let way = Way { tag, valid: true, first_ref: true, lru: tick };
        // Invalid slots fill left to right, so insertion order matches the
        // old grow-then-evict behaviour; LRU ties are impossible (the tick
        // is unique per fill/access). Keying on (valid, lru) picks the
        // first invalid slot when one exists, the LRU victim otherwise —
        // and a set is never empty, so the fill always lands.
        if let Some(w) = ways.iter_mut().min_by_key(|w| (w.valid, w.lru)) {
            *w = way;
        }
    }

    /// Is the first-time-referenced bit of a *resident* `line` set?
    /// Returns `false` for non-resident lines.
    pub fn first_ref_set(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        self.set(set).iter().any(|w| w.valid && w.tag == tag && w.first_ref)
    }

    /// Clears the first-time-referenced bit (done when a next-line
    /// prefetch is triggered from the line). No-op if not resident.
    pub fn clear_first_ref(&mut self, line: LineAddr) {
        let (set, tag) = self.index(line);
        if let Some(w) = self.set_mut(set).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.first_ref = false;
        }
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache() -> ICache {
        ICache::new(&CacheConfig::paper_8k())
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = dm_cache();
        assert!(!c.access(line(5)));
        c.fill(line(5));
        assert!(c.access(line(5)));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = dm_cache(); // 256 sets
        c.fill(line(7));
        c.fill(line(7 + 256)); // same set, direct-mapped -> evict
        assert!(!c.contains(line(7)));
        assert!(c.contains(line(7 + 256)));
    }

    #[test]
    fn two_way_avoids_the_conflict() {
        let cfg = CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, assoc: 2 };
        let mut c = ICache::new(&cfg); // 128 sets
        c.fill(line(7));
        c.fill(line(7 + 128));
        assert!(c.contains(line(7)));
        assert!(c.contains(line(7 + 128)));
        // Third conflicting fill evicts the LRU (line 7, untouched since).
        c.fill(line(7 + 256));
        assert!(!c.contains(line(7)));
        assert!(c.contains(line(7 + 128)));
    }

    #[test]
    fn lru_respects_access_recency() {
        let cfg = CacheConfig { size_bytes: 128, line_bytes: 32, assoc: 4 };
        let mut c = ICache::new(&cfg); // 1 set, 4 ways
        for i in 0..4 {
            c.fill(line(i));
        }
        assert!(c.access(line(0))); // refresh 0; 1 becomes LRU
        c.fill(line(10));
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(1)));
    }

    #[test]
    fn repeated_same_line_hits_count_and_keep_lru_order() {
        let cfg = CacheConfig { size_bytes: 128, line_bytes: 32, assoc: 4 };
        let mut c = ICache::new(&cfg); // 1 set, 4 ways
        for i in 0..4 {
            c.fill(line(i));
        }
        // Re-hits through the one-entry memo still count as accesses...
        assert!(c.access(line(0)));
        assert!(c.access(line(0)));
        assert!(c.access(line(0)));
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 0);
        // ...and the LRU victim is unchanged by the memoised touches:
        // line 1 is the oldest stamp (lines 2, 3 were filled later).
        c.fill(line(10));
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(1)));
        // The fill cleared the memo: a conflicting eviction of the
        // memoised line must be seen as a miss, not served stale.
        c.fill(line(4)); // same set; evicts LRU (line 2)
        assert!(!c.access(line(2)));
    }

    #[test]
    fn first_ref_lifecycle() {
        let mut c = dm_cache();
        assert!(!c.first_ref_set(line(3)), "non-resident line has no bit");
        c.fill(line(3));
        assert!(c.first_ref_set(line(3)), "fill sets the bit");
        c.clear_first_ref(line(3));
        assert!(!c.first_ref_set(line(3)));
        // Refill re-arms the bit.
        c.fill(line(3));
        assert!(c.first_ref_set(line(3)));
    }

    #[test]
    fn clear_first_ref_on_absent_line_is_noop() {
        let mut c = dm_cache();
        c.clear_first_ref(line(42));
        assert!(!c.contains(line(42)));
    }

    #[test]
    fn contains_does_not_count_stats() {
        let mut c = dm_cache();
        c.fill(line(1));
        let _ = c.contains(line(1));
        let _ = c.contains(line(2));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn occupancy_grows_to_capacity() {
        let cfg = CacheConfig { size_bytes: 128, line_bytes: 32, assoc: 1 };
        let mut c = ICache::new(&cfg); // 4 lines
        for i in 0..8 {
            c.fill(line(i));
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let cfg = CacheConfig { size_bytes: 0, line_bytes: 32, assoc: 1 };
        let _ = ICache::new(&cfg);
    }
}
