//! A Jouppi-style FIFO stream buffer (the '90 ISCA design the paper's
//! §2.2 credits with removing 85% of a 4KB I-cache's misses).

use std::collections::VecDeque;

use specfetch_isa::LineAddr;

/// A single FIFO stream buffer.
///
/// On a demand miss the buffer (re)allocates a *stream*: it prefetches the
/// lines sequentially following the miss, as bus slots allow, into a
/// small FIFO. A later miss that matches the FIFO **head** is served from
/// the buffer (the line moves into the cache for free) and the stream
/// continues; a miss that does not match the head restarts the stream —
/// Jouppi's buffers only compare the head entry.
///
/// # Examples
///
/// ```
/// use specfetch_cache::StreamBuffer;
/// use specfetch_isa::LineAddr;
///
/// let mut sb = StreamBuffer::new(4);
/// sb.restart(LineAddr::new(11)); // a miss on line 10 allocates 11..
/// assert_eq!(sb.want_fetch(), Some(LineAddr::new(11)));
/// sb.note_issued(LineAddr::new(11)); // the engine put it on the bus
/// sb.complete(LineAddr::new(11)); // ...and the fill returned
/// assert!(sb.take_head(LineAddr::new(11)));
/// ```
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    depth: usize,
    /// Prefetched lines waiting to be consumed, oldest first.
    queue: VecDeque<LineAddr>,
    /// The next sequential line the stream wants to prefetch.
    next_fetch: Option<LineAddr>,
    /// A stream prefetch currently on the bus.
    in_flight: Option<LineAddr>,
    restarts: u64,
    issued: u64,
    head_hits: u64,
}

impl StreamBuffer {
    /// A buffer holding up to `depth` lines (Jouppi evaluated four).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "stream buffer needs at least one entry");
        StreamBuffer {
            depth,
            queue: VecDeque::with_capacity(depth),
            next_fetch: None,
            in_flight: None,
            restarts: 0,
            issued: 0,
            head_hits: 0,
        }
    }

    /// Reallocates the stream to begin at `first` (called on a demand miss
    /// the buffer could not serve; `first` is the line after the miss).
    pub fn restart(&mut self, first: LineAddr) {
        self.queue.clear();
        self.in_flight = None;
        self.next_fetch = Some(first);
        self.restarts += 1;
    }

    /// The line the stream wants to prefetch next, if it has capacity.
    pub fn want_fetch(&self) -> Option<LineAddr> {
        if self.queue.len() + self.in_flight_slots() >= self.depth {
            return None;
        }
        self.next_fetch
    }

    /// Marks the stream's next line as issued on the bus.
    ///
    /// # Panics
    ///
    /// Debug builds panic if called without [`StreamBuffer::want_fetch`]
    /// being `Some` (an engine sequencing bug).
    pub fn note_issued(&mut self, line: LineAddr) {
        debug_assert_eq!(self.next_fetch, Some(line), "stream issued out of order");
        self.next_fetch = Some(line.next());
        self.issued += 1;
        self.in_flight = Some(line);
    }

    /// Advances the stream past a line that is already cached (no bus
    /// transaction needed).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `line` is not the stream's next fetch.
    pub fn skip(&mut self, line: LineAddr) {
        debug_assert_eq!(self.next_fetch, Some(line), "stream skipped out of order");
        self.next_fetch = Some(line.next());
    }

    /// A stream prefetch completed: the line joins the FIFO.
    pub fn complete(&mut self, line: LineAddr) {
        if self.in_flight == Some(line) {
            self.in_flight = None;
            self.queue.push_back(line);
        }
        // A completion for a line from a stale (restarted) stream is
        // dropped: the queue was cleared and the data is unwanted.
    }

    /// Does the FIFO head hold `line`? If so, consume it (the engine
    /// moves it into the cache). A non-head match is *not* served —
    /// Jouppi's buffers only compare the head.
    pub fn take_head(&mut self, line: LineAddr) -> bool {
        if self.queue.front() == Some(&line) {
            self.queue.pop_front();
            self.head_hits += 1;
            true
        } else {
            false
        }
    }

    /// Is a stream prefetch of `line` currently on the bus?
    pub fn in_flight_is(&self, line: LineAddr) -> bool {
        self.in_flight == Some(line)
    }

    /// Is *any* stream prefetch currently on the bus? The stream tracks a
    /// single outstanding transaction, so issuers must not start a second
    /// one: [`StreamBuffer::note_issued`] would overwrite the first and
    /// its completion would be dropped as stale.
    pub fn prefetch_in_flight(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the FIFO empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Stream reallocations (one per unserved miss).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Misses served from the head.
    pub fn head_hits(&self) -> u64 {
        self.head_hits
    }

    fn in_flight_slots(&self) -> usize {
        usize::from(self.in_flight.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_and_streams_sequentially() {
        let mut sb = StreamBuffer::new(4);
        assert_eq!(sb.want_fetch(), None, "no stream before the first miss");
        sb.restart(LineAddr::new(100));
        for i in 100..104 {
            let want = sb.want_fetch().expect("capacity available");
            assert_eq!(want, LineAddr::new(i));
            sb.note_issued(want);
            sb.complete(want);
        }
        assert_eq!(sb.want_fetch(), None, "FIFO full");
        assert_eq!(sb.len(), 4);
    }

    #[test]
    fn head_hit_consumes_and_frees_capacity() {
        let mut sb = StreamBuffer::new(2);
        sb.restart(LineAddr::new(10));
        sb.note_issued(LineAddr::new(10));
        sb.complete(LineAddr::new(10));
        sb.note_issued(LineAddr::new(11));
        sb.complete(LineAddr::new(11));
        assert_eq!(sb.want_fetch(), None);
        assert!(sb.take_head(LineAddr::new(10)));
        assert_eq!(sb.want_fetch(), Some(LineAddr::new(12)));
        assert_eq!(sb.head_hits(), 1);
    }

    #[test]
    fn non_head_match_is_not_served() {
        let mut sb = StreamBuffer::new(4);
        sb.restart(LineAddr::new(20));
        for i in 20..22 {
            sb.note_issued(LineAddr::new(i));
            sb.complete(LineAddr::new(i));
        }
        assert!(!sb.take_head(LineAddr::new(21)), "only the head is compared");
        assert!(sb.take_head(LineAddr::new(20)));
        assert!(sb.take_head(LineAddr::new(21)));
    }

    #[test]
    fn restart_discards_stale_stream_and_completions() {
        let mut sb = StreamBuffer::new(4);
        sb.restart(LineAddr::new(30));
        sb.note_issued(LineAddr::new(30));
        // Stream restarts (a miss elsewhere) while 30 is still in flight.
        sb.restart(LineAddr::new(90));
        sb.complete(LineAddr::new(30)); // stale completion dropped
        assert!(sb.is_empty());
        assert_eq!(sb.want_fetch(), Some(LineAddr::new(90)));
        assert_eq!(sb.restarts(), 2);
    }

    #[test]
    fn in_flight_tracking() {
        let mut sb = StreamBuffer::new(4);
        sb.restart(LineAddr::new(40));
        sb.note_issued(LineAddr::new(40));
        assert!(sb.in_flight_is(LineAddr::new(40)));
        assert!(!sb.in_flight_is(LineAddr::new(41)));
        sb.complete(LineAddr::new(40));
        assert!(!sb.in_flight_is(LineAddr::new(40)));
    }

    #[test]
    fn skip_advances_without_buffering() {
        let mut sb = StreamBuffer::new(4);
        sb.restart(LineAddr::new(50));
        sb.skip(LineAddr::new(50)); // already cached
        assert_eq!(sb.want_fetch(), Some(LineAddr::new(51)));
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_depth_rejected() {
        let _ = StreamBuffer::new(0);
    }
}
