//! Workload-generator parameters.

use std::fmt;

/// All knobs of the synthetic program generator.
///
/// The three preset families mirror the paper's language groups:
/// [`WorkloadSpec::fortran_like`] (long basic blocks, deep predictable
/// loops, direct calls only), [`WorkloadSpec::c_like`] (short blocks, many
/// data-dependent conditionals), and [`WorkloadSpec::cpp_like`] (short
/// blocks, many small functions, indirect dispatch). The thirteen
/// calibrated benchmarks in [`crate::suite`] are tuned variants of these.
///
/// # Examples
///
/// ```
/// use specfetch_synth::WorkloadSpec;
///
/// let mut spec = WorkloadSpec::cpp_like("mini", 1);
/// spec.n_functions = 24;
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// Workload name (used in reports).
    pub name: String,
    /// Generator seed; the same spec always generates the same program.
    pub seed: u64,
    /// Number of functions besides `main`.
    pub n_functions: usize,
    /// Sequential instructions per basic block: `(min, max)` inclusive.
    pub block_len: (usize, usize),
    /// Statements per function body: `(min, max)` inclusive.
    pub stmts_per_fn: (usize, usize),
    /// Probability that a statement is a loop.
    pub p_loop: f64,
    /// Probability that a statement is an if/else.
    pub p_if: f64,
    /// Probability that a statement is a direct call (when callees exist).
    pub p_call: f64,
    /// Probability that a statement is an indirect (virtual) call.
    pub p_icall: f64,
    /// Loop trip count: `(min, max)` inclusive.
    pub loop_trip: (u32, u32),
    /// Maximum loop nesting depth within one function.
    pub max_loop_depth: usize,
    /// Fraction of if-conditionals that are weakly biased (hard to
    /// predict); the rest are strongly biased.
    pub weak_branch_frac: f64,
    /// Fraction of if-conditionals correlated with the global outcome
    /// history (predictable by gshare-style predictors only). Applied
    /// before the weak/strong split.
    pub corr_branch_frac: f64,
    /// Taken probability magnitude for strongly-biased conditionals; each
    /// site flips a coin between `p` and `1 - p`.
    pub strong_bias: f64,
    /// Taken-probability range for weakly-biased conditionals.
    pub weak_bias: (f64, f64),
    /// Number of functions reachable from each indirect-dispatch site.
    pub dispatch_targets: usize,
    /// Functions `main` calls on every iteration (the hot working set).
    pub hot_functions: usize,
    /// Per-iteration probability that `main` also calls each remaining
    /// (cold) function — the knob that sets capacity-miss pressure.
    pub cold_call_prob: f64,
    /// Callee locality window: a call site in function `i` targets a
    /// function drawn from `i+1 ..= i+call_jump` (clamped to the last
    /// function). Small windows keep each call chain inside a narrow band
    /// of the image, so the hot roots' activation trees barely overlap and
    /// per-iteration code reuse stays low — the regime real flat-profile
    /// programs (and the paper's miss rates) live in.
    pub call_jump: usize,
    /// Hard cap on call sites (direct + indirect) emitted per function
    /// body. This bounds the activation-tree fan-out: without it the
    /// expected cost of calling one hot function grows exponentially in
    /// the call-DAG depth and execution never finishes a `main` iteration.
    pub max_calls_per_fn: usize,
}

impl WorkloadSpec {
    /// Fortran-style preset: long blocks, deep loops, no indirection.
    pub fn fortran_like(name: &str, seed: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            seed,
            n_functions: 24,
            block_len: (6, 20),
            stmts_per_fn: (4, 8),
            p_loop: 0.35,
            p_if: 0.15,
            p_call: 0.25,
            p_icall: 0.0,
            loop_trip: (4, 30),
            max_loop_depth: 2,
            weak_branch_frac: 0.15,
            corr_branch_frac: 0.1,
            strong_bias: 0.06,
            weak_bias: (0.3, 0.7),
            dispatch_targets: 0,
            hot_functions: 6,
            cold_call_prob: 0.03,
            call_jump: 12,
            max_calls_per_fn: 2,
        }
    }

    /// C-style preset: short blocks, branchy, moderate call density.
    pub fn c_like(name: &str, seed: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            seed,
            n_functions: 48,
            block_len: (2, 6),
            stmts_per_fn: (5, 9),
            p_loop: 0.15,
            p_if: 0.35,
            p_call: 0.3,
            p_icall: 0.0,
            loop_trip: (2, 10),
            max_loop_depth: 2,
            weak_branch_frac: 0.3,
            corr_branch_frac: 0.15,
            strong_bias: 0.1,
            weak_bias: (0.25, 0.75),
            dispatch_targets: 0,
            hot_functions: 10,
            cold_call_prob: 0.08,
            call_jump: 12,
            max_calls_per_fn: 2,
        }
    }

    /// C++-style preset: short blocks, many small functions, virtual
    /// dispatch.
    pub fn cpp_like(name: &str, seed: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            seed,
            n_functions: 72,
            block_len: (2, 5),
            stmts_per_fn: (4, 8),
            p_loop: 0.12,
            p_if: 0.32,
            p_call: 0.28,
            p_icall: 0.08,
            loop_trip: (2, 8),
            max_loop_depth: 2,
            weak_branch_frac: 0.3,
            corr_branch_frac: 0.15,
            strong_bias: 0.1,
            weak_bias: (0.25, 0.75),
            dispatch_targets: 4,
            hot_functions: 12,
            cold_call_prob: 0.1,
            call_jump: 12,
            max_calls_per_fn: 2,
        }
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.n_functions == 0 {
            return Err(SpecError::NoFunctions);
        }
        if self.block_len.0 == 0 || self.block_len.0 > self.block_len.1 {
            return Err(SpecError::BadRange { what: "block_len" });
        }
        if self.stmts_per_fn.0 == 0 || self.stmts_per_fn.0 > self.stmts_per_fn.1 {
            return Err(SpecError::BadRange { what: "stmts_per_fn" });
        }
        if self.loop_trip.0 == 0 || self.loop_trip.0 > self.loop_trip.1 {
            return Err(SpecError::BadRange { what: "loop_trip" });
        }
        let p = self.p_loop + self.p_if + self.p_call + self.p_icall;
        if !(0.0..=1.0).contains(&p)
            || [self.p_loop, self.p_if, self.p_call, self.p_icall].iter().any(|&x| x < 0.0)
        {
            return Err(SpecError::BadProbabilities { sum: p });
        }
        if !(0.0..=1.0).contains(&self.corr_branch_frac) {
            return Err(SpecError::BadRange { what: "corr_branch_frac" });
        }
        if !(0.0..=1.0).contains(&self.weak_branch_frac)
            || !(0.0..=0.5).contains(&self.strong_bias)
            || self.weak_bias.0 > self.weak_bias.1
            || !(0.0..=1.0).contains(&self.weak_bias.0)
            || !(0.0..=1.0).contains(&self.weak_bias.1)
            || !(0.0..=1.0).contains(&self.cold_call_prob)
        {
            return Err(SpecError::BadRange { what: "bias/probability" });
        }
        if self.p_icall > 0.0 && self.dispatch_targets == 0 {
            return Err(SpecError::DispatchWithoutTargets);
        }
        if self.call_jump == 0 {
            return Err(SpecError::BadRange { what: "call_jump" });
        }
        if self.hot_functions > self.n_functions {
            return Err(SpecError::HotExceedsTotal {
                hot: self.hot_functions,
                total: self.n_functions,
            });
        }
        Ok(())
    }
}

/// A constraint violation in a [`WorkloadSpec`].
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum SpecError {
    /// Zero functions requested.
    NoFunctions,
    /// A `(min, max)` range is empty or zero-based where it must not be.
    BadRange {
        /// Which field.
        what: &'static str,
    },
    /// Statement-kind probabilities are negative or sum past 1.
    BadProbabilities {
        /// The offending sum.
        sum: f64,
    },
    /// Indirect calls requested with an empty dispatch pool.
    DispatchWithoutTargets,
    /// More hot functions than functions.
    HotExceedsTotal {
        /// Requested hot count.
        hot: usize,
        /// Total functions.
        total: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoFunctions => write!(f, "workload needs at least one function"),
            SpecError::BadRange { what } => write!(f, "invalid range for {what}"),
            SpecError::BadProbabilities { sum } => {
                write!(f, "statement probabilities invalid (sum {sum})")
            }
            SpecError::DispatchWithoutTargets => {
                write!(f, "p_icall > 0 requires dispatch_targets > 0")
            }
            SpecError::HotExceedsTotal { hot, total } => {
                write!(f, "hot_functions {hot} exceeds n_functions {total}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(WorkloadSpec::fortran_like("f", 1).validate().is_ok());
        assert!(WorkloadSpec::c_like("c", 1).validate().is_ok());
        assert!(WorkloadSpec::cpp_like("cpp", 1).validate().is_ok());
    }

    #[test]
    fn rejects_zero_functions() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.n_functions = 0;
        assert_eq!(s.validate(), Err(SpecError::NoFunctions));
    }

    #[test]
    fn rejects_inverted_ranges() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.block_len = (9, 3);
        assert!(matches!(s.validate(), Err(SpecError::BadRange { .. })));
        let mut s = WorkloadSpec::c_like("x", 1);
        s.loop_trip = (0, 4);
        assert!(matches!(s.validate(), Err(SpecError::BadRange { .. })));
    }

    #[test]
    fn rejects_probability_overflow() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.p_loop = 0.9;
        s.p_if = 0.9;
        assert!(matches!(s.validate(), Err(SpecError::BadProbabilities { .. })));
    }

    #[test]
    fn rejects_icall_without_pool() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.p_icall = 0.1;
        s.dispatch_targets = 0;
        assert_eq!(s.validate(), Err(SpecError::DispatchWithoutTargets));
    }

    #[test]
    fn rejects_hot_overflow() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.hot_functions = s.n_functions + 1;
        assert!(matches!(s.validate(), Err(SpecError::HotExceedsTotal { .. })));
    }

    #[test]
    fn error_display_nonempty() {
        let errs = [
            SpecError::NoFunctions,
            SpecError::BadRange { what: "x" },
            SpecError::BadProbabilities { sum: 1.5 },
            SpecError::DispatchWithoutTargets,
            SpecError::HotExceedsTotal { hot: 9, total: 3 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
