//! The thirteen calibrated benchmark models.
//!
//! Each [`Benchmark`] names one program from the paper's Table 2 and
//! carries (a) the paper's reported characteristics ([`PaperRow`]) and (b)
//! a tuned [`WorkloadSpec`] whose generated workload reproduces those
//! characteristics approximately. The `specfetch-experiments` crate prints
//! paper-vs-measured columns from exactly this data.
//!
//! # Examples
//!
//! ```
//! use specfetch_synth::suite::Benchmark;
//!
//! let all = Benchmark::all();
//! assert_eq!(all.len(), 13);
//! let gcc = Benchmark::by_name("gcc").unwrap();
//! let w = gcc.workload().unwrap();
//! assert!(w.program().len() > 1000);
//! ```

use std::fmt;

use crate::{SpecError, Workload, WorkloadSpec};

/// Source-language family of a benchmark (the paper analyses results by
/// this grouping).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Lang {
    /// SPEC92 Fortran floating-point codes: few branches, deep loops.
    Fortran,
    /// C integer codes: branchy, moderate call density.
    C,
    /// C++ codes: branchy, many small functions, virtual dispatch.
    Cpp,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lang::Fortran => write!(f, "Fortran"),
            Lang::C => write!(f, "C"),
            Lang::Cpp => write!(f, "C++"),
        }
    }
}

/// The paper's reported characteristics for one benchmark (Tables 2–3),
/// kept verbatim so experiments can print paper-vs-measured columns.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PaperRow {
    /// Dynamic instructions, in millions (Table 2).
    pub instr_millions: f64,
    /// Percentage of executed instructions that are branches (Table 2).
    pub branch_pct: f64,
    /// 8 KB direct-mapped I-cache miss rate, percent (Table 3).
    pub miss_8k: f64,
    /// 32 KB direct-mapped I-cache miss rate, percent (Table 3).
    pub miss_32k: f64,
    /// PHT mispredict ISPI at speculation depth 1 (Table 3).
    pub pht_ispi_b1: f64,
    /// PHT mispredict ISPI at speculation depth 4 (Table 3).
    pub pht_ispi_b4: f64,
    /// BTB misfetch ISPI (depth-insensitive in the paper; Table 3).
    pub btb_misfetch_ispi: f64,
    /// BTB (target) mispredict ISPI (Table 3).
    pub btb_mispredict_ispi: f64,
}

/// One of the paper's thirteen benchmark programs, as a calibrated
/// synthetic model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Benchmark {
    /// The paper's program name.
    pub name: &'static str,
    /// Language family.
    pub lang: Lang,
    /// The paper's reported numbers.
    pub paper: PaperRow,
}

/// Fixed generator seed per benchmark: calibrated workloads must never
/// drift between runs.
fn gen_seed(name: &str) -> u64 {
    // FNV-1a over the name, so seeds are stable and per-benchmark.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

impl Benchmark {
    /// All thirteen benchmarks, in the paper's table order.
    pub fn all() -> &'static [Benchmark] {
        &SUITE
    }

    /// Looks a benchmark up by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        SUITE.iter().find(|b| b.name == name)
    }

    /// The execution seed experiments use for this benchmark's correct
    /// path (fixed so every policy replays the same path).
    pub fn path_seed(&self) -> u64 {
        gen_seed(self.name) ^ 0x5eed
    }

    /// The calibrated generator parameters for this benchmark.
    pub fn spec(&self) -> WorkloadSpec {
        // SUITE and KNOBS are parallel arrays. Every `Benchmark` this
        // module hands out is one of SUITE's, so the name always matches;
        // a hand-built one falls back to the first calibration rather
        // than panicking mid-sweep.
        let knobs = SUITE
            .iter()
            .zip(KNOBS.iter())
            .find_map(|(b, k)| (b.name == self.name).then_some(k))
            .unwrap_or(&KNOBS[0]);
        knobs.apply(self.name, self.lang, gen_seed(self.name))
    }

    /// Generates the calibrated workload.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`] (never expected for the built-in specs —
    /// a unit test locks that in).
    pub fn workload(&self) -> Result<Workload, SpecError> {
        Workload::generate(&self.spec())
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.lang)
    }
}

/// The paper's Table 2/3 rows.
static SUITE: [Benchmark; 13] = [
    Benchmark {
        name: "doduc",
        lang: Lang::Fortran,
        paper: PaperRow {
            instr_millions: 1150.0,
            branch_pct: 8.5,
            miss_8k: 2.94,
            miss_32k: 0.48,
            pht_ispi_b1: 0.22,
            pht_ispi_b4: 0.37,
            btb_misfetch_ispi: 0.04,
            btb_mispredict_ispi: 0.00,
        },
    },
    Benchmark {
        name: "fpppp",
        lang: Lang::Fortran,
        paper: PaperRow {
            instr_millions: 4330.0,
            branch_pct: 2.8,
            miss_8k: 7.27,
            miss_32k: 1.08,
            pht_ispi_b1: 0.08,
            pht_ispi_b4: 0.12,
            btb_misfetch_ispi: 0.01,
            btb_mispredict_ispi: 0.00,
        },
    },
    Benchmark {
        name: "su2cor",
        lang: Lang::Fortran,
        paper: PaperRow {
            instr_millions: 4780.0,
            branch_pct: 4.4,
            miss_8k: 1.33,
            miss_32k: 0.00,
            pht_ispi_b1: 0.08,
            pht_ispi_b4: 0.10,
            btb_misfetch_ispi: 0.00,
            btb_mispredict_ispi: 0.00,
        },
    },
    Benchmark {
        name: "ditroff",
        lang: Lang::C,
        paper: PaperRow {
            instr_millions: 39.0,
            branch_pct: 17.5,
            miss_8k: 3.18,
            miss_32k: 0.58,
            pht_ispi_b1: 0.44,
            pht_ispi_b4: 0.64,
            btb_misfetch_ispi: 0.22,
            btb_mispredict_ispi: 0.00,
        },
    },
    Benchmark {
        name: "gcc",
        lang: Lang::C,
        paper: PaperRow {
            instr_millions: 144.0,
            branch_pct: 16.0,
            miss_8k: 4.48,
            miss_32k: 1.71,
            pht_ispi_b1: 0.53,
            pht_ispi_b4: 0.63,
            btb_misfetch_ispi: 0.28,
            btb_mispredict_ispi: 0.05,
        },
    },
    Benchmark {
        name: "li",
        lang: Lang::C,
        paper: PaperRow {
            instr_millions: 1360.0,
            branch_pct: 17.7,
            miss_8k: 3.33,
            miss_32k: 0.06,
            pht_ispi_b1: 0.35,
            pht_ispi_b4: 0.54,
            btb_misfetch_ispi: 0.24,
            btb_mispredict_ispi: 0.04,
        },
    },
    Benchmark {
        name: "tex",
        lang: Lang::C,
        paper: PaperRow {
            instr_millions: 148.0,
            branch_pct: 10.0,
            miss_8k: 2.85,
            miss_32k: 1.00,
            pht_ispi_b1: 0.27,
            pht_ispi_b4: 0.36,
            btb_misfetch_ispi: 0.11,
            btb_mispredict_ispi: 0.03,
        },
    },
    Benchmark {
        name: "cfront",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 16.5,
            branch_pct: 13.4,
            miss_8k: 7.24,
            miss_32k: 2.63,
            pht_ispi_b1: 0.50,
            pht_ispi_b4: 0.56,
            btb_misfetch_ispi: 0.34,
            btb_mispredict_ispi: 0.05,
        },
    },
    Benchmark {
        name: "db++",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 87.0,
            branch_pct: 17.6,
            miss_8k: 1.57,
            miss_32k: 0.42,
            pht_ispi_b1: 0.16,
            pht_ispi_b4: 0.41,
            btb_misfetch_ispi: 0.13,
            btb_mispredict_ispi: 0.01,
        },
    },
    Benchmark {
        name: "groff",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 57.0,
            branch_pct: 17.5,
            miss_8k: 5.33,
            miss_32k: 1.68,
            pht_ispi_b1: 0.42,
            pht_ispi_b4: 0.57,
            btb_misfetch_ispi: 0.39,
            btb_mispredict_ispi: 0.06,
        },
    },
    Benchmark {
        name: "idl",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 21.1,
            branch_pct: 19.6,
            miss_8k: 2.17,
            miss_32k: 0.67,
            pht_ispi_b1: 0.30,
            pht_ispi_b4: 0.49,
            btb_misfetch_ispi: 0.10,
            btb_mispredict_ispi: 0.04,
        },
    },
    Benchmark {
        name: "lic",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 6.0,
            branch_pct: 16.5,
            miss_8k: 3.93,
            miss_32k: 1.68,
            pht_ispi_b1: 0.45,
            pht_ispi_b4: 0.56,
            btb_misfetch_ispi: 0.27,
            btb_mispredict_ispi: 0.00,
        },
    },
    Benchmark {
        name: "porky",
        lang: Lang::Cpp,
        paper: PaperRow {
            instr_millions: 164.0,
            branch_pct: 19.8,
            miss_8k: 2.51,
            miss_32k: 0.66,
            pht_ispi_b1: 0.42,
            pht_ispi_b4: 0.48,
            btb_misfetch_ispi: 0.20,
            btb_mispredict_ispi: 0.04,
        },
    },
];

/// The tunable generator parameters of one benchmark, as found by the
/// calibration search (`cargo run --release -p specfetch-synth --example
/// calibrate`). Kept as plain data so re-calibration is a mechanical
/// table update.
#[derive(Copy, Clone, Debug)]
struct Knobs {
    block_len: (usize, usize),
    n_functions: usize,
    stmts_per_fn: (usize, usize),
    hot_functions: usize,
    cold_call_prob: f64,
    p_loop: f64,
    loop_trip: (u32, u32),
    weak_branch_frac: f64,
    max_loop_depth: usize,
    call_jump: usize,
}

impl Knobs {
    fn apply(&self, name: &str, lang: Lang, seed: u64) -> WorkloadSpec {
        let mut s = match lang {
            Lang::Fortran => WorkloadSpec::fortran_like(name, seed),
            Lang::C => WorkloadSpec::c_like(name, seed),
            Lang::Cpp => WorkloadSpec::cpp_like(name, seed),
        };
        s.block_len = self.block_len;
        s.n_functions = self.n_functions;
        s.stmts_per_fn = self.stmts_per_fn;
        s.hot_functions = self.hot_functions;
        s.cold_call_prob = self.cold_call_prob;
        s.p_loop = self.p_loop;
        s.loop_trip = self.loop_trip;
        s.weak_branch_frac = self.weak_branch_frac;
        s.max_loop_depth = self.max_loop_depth;
        s.call_jump = self.call_jump;
        s
    }
}

/// Calibrated knob values, in [`SUITE`] order.
static KNOBS: [Knobs; 13] = [
    // doduc
    Knobs {
        block_len: (3, 11),
        n_functions: 120,
        stmts_per_fn: (7, 14),
        hot_functions: 14,
        cold_call_prob: 0.1850,
        p_loop: 0.0392,
        loop_trip: (2, 5),
        weak_branch_frac: 0.22,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // fpppp
    Knobs {
        block_len: (15, 36),
        n_functions: 17,
        stmts_per_fn: (11, 18),
        hot_functions: 13,
        cold_call_prob: 0.4020,
        p_loop: 0.0619,
        loop_trip: (2, 4),
        weak_branch_frac: 0.10,
        max_loop_depth: 1,
        call_jump: 12,
    },
    // su2cor
    Knobs {
        block_len: (3, 18),
        n_functions: 57,
        stmts_per_fn: (6, 11),
        hot_functions: 38,
        cold_call_prob: 0.0292,
        p_loop: 0.0700,
        loop_trip: (3, 10),
        weak_branch_frac: 0.10,
        max_loop_depth: 2,
        call_jump: 10,
    },
    // ditroff
    Knobs {
        block_len: (1, 6),
        n_functions: 91,
        stmts_per_fn: (6, 11),
        hot_functions: 5,
        cold_call_prob: 0.0950,
        p_loop: 0.1570,
        loop_trip: (2, 2),
        weak_branch_frac: 0.32,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // gcc
    Knobs {
        block_len: (2, 5),
        n_functions: 372,
        stmts_per_fn: (5, 11),
        hot_functions: 28,
        cold_call_prob: 0.1078,
        p_loop: 0.0600,
        loop_trip: (2, 10),
        weak_branch_frac: 0.38,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // li
    Knobs {
        block_len: (1, 6),
        n_functions: 52,
        stmts_per_fn: (5, 9),
        hot_functions: 10,
        cold_call_prob: 0.0014,
        p_loop: 0.0980,
        loop_trip: (2, 6),
        weak_branch_frac: 0.30,
        max_loop_depth: 2,
        call_jump: 14,
    },
    // tex
    Knobs {
        block_len: (2, 9),
        n_functions: 169,
        stmts_per_fn: (5, 9),
        hot_functions: 5,
        cold_call_prob: 0.0900,
        p_loop: 0.1000,
        loop_trip: (2, 10),
        weak_branch_frac: 0.26,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // cfront
    Knobs {
        block_len: (1, 7),
        n_functions: 507,
        stmts_per_fn: (3, 7),
        hot_functions: 24,
        cold_call_prob: 0.3050,
        p_loop: 0.0137,
        loop_trip: (2, 8),
        weak_branch_frac: 0.34,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // db++
    Knobs {
        block_len: (2, 7),
        n_functions: 143,
        stmts_per_fn: (3, 6),
        hot_functions: 31,
        cold_call_prob: 0.1475,
        p_loop: 0.1266,
        loop_trip: (2, 8),
        weak_branch_frac: 0.32,
        max_loop_depth: 2,
        call_jump: 14,
    },
    // groff
    Knobs {
        block_len: (2, 6),
        n_functions: 507,
        stmts_per_fn: (3, 7),
        hot_functions: 3,
        cold_call_prob: 0.1800,
        p_loop: 0.0343,
        loop_trip: (2, 8),
        weak_branch_frac: 0.36,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // idl
    Knobs {
        block_len: (1, 7),
        n_functions: 195,
        stmts_per_fn: (6, 12),
        hot_functions: 5,
        cold_call_prob: 0.0800,
        p_loop: 0.1200,
        loop_trip: (2, 8),
        weak_branch_frac: 0.30,
        max_loop_depth: 2,
        call_jump: 12,
    },
    // lic
    Knobs {
        block_len: (1, 6),
        n_functions: 439,
        stmts_per_fn: (3, 6),
        hot_functions: 10,
        cold_call_prob: 0.0718,
        p_loop: 0.0900,
        loop_trip: (2, 3),
        weak_branch_frac: 0.30,
        max_loop_depth: 2,
        call_jump: 10,
    },
    // porky
    Knobs {
        block_len: (1, 4),
        n_functions: 160,
        stmts_per_fn: (4, 8),
        hot_functions: 8,
        cold_call_prob: 0.0233,
        p_loop: 0.1220,
        loop_trip: (2, 12),
        weak_branch_frac: 0.30,
        max_loop_depth: 2,
        call_jump: 12,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_trace::{PathSource, TraceStats};

    #[test]
    fn thirteen_benchmarks_in_paper_order() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "doduc", "fpppp", "su2cor", "ditroff", "gcc", "li", "tex", "cfront", "db++",
                "groff", "idl", "lic", "porky"
            ]
        );
    }

    #[test]
    fn language_grouping_matches_paper() {
        use Lang::*;
        let langs: Vec<Lang> = Benchmark::all().iter().map(|b| b.lang).collect();
        assert_eq!(langs[..3], [Fortran, Fortran, Fortran]);
        assert_eq!(langs[3..7], [C, C, C, C]);
        assert!(langs[7..].iter().all(|&l| l == Cpp));
    }

    #[test]
    fn by_name_round_trips() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::by_name(b.name).unwrap().name, b.name);
        }
        assert!(Benchmark::by_name("nonesuch").is_none());
    }

    #[test]
    fn every_spec_is_valid_and_generates() {
        for b in Benchmark::all() {
            let spec = b.spec();
            assert_eq!(spec.validate(), Ok(()), "{} spec invalid", b.name);
            let w = b.workload().unwrap();
            assert!(w.program().len() > 200, "{} image too small", b.name);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = Benchmark::all().iter().map(|b| b.spec().seed).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "generator seeds must be distinct");
        assert_eq!(Benchmark::by_name("gcc").unwrap().spec().seed, seeds[4]);
    }

    #[test]
    fn fortran_benchmarks_are_less_branchy_than_cpp() {
        let measure = |name: &str| {
            let b = Benchmark::by_name(name).unwrap();
            let w = b.workload().unwrap();
            let mut e = w.executor(b.path_seed()).take_instrs(150_000);
            TraceStats::from_source(&mut e).branch_pct()
        };
        let fpppp = measure("fpppp");
        let porky = measure("porky");
        assert!(
            fpppp < porky / 2.0,
            "fpppp ({fpppp:.1}%) should be far less branchy than porky ({porky:.1}%)"
        );
    }

    #[test]
    fn display_includes_lang() {
        assert_eq!(Benchmark::by_name("gcc").unwrap().to_string(), "gcc (C)");
    }
}
