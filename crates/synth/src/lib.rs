//! Synthetic workload generator and calibrated benchmark models for
//! `specfetch`.
//!
//! The paper evaluated its fetch policies on ATOM-instrumented SPEC92 and
//! C++ binaries (Table 2). Those binaries and the Alpha toolchain are not
//! reproducible here, so this crate builds the closest synthetic
//! equivalent: a seeded generator that emits *structured* static programs —
//! call DAGs of functions containing loop nests, biased conditionals, and
//! (for the C++-like codes) indirect dispatch — plus a behavioural
//! interpreter that executes them to produce the dynamic correct path.
//!
//! Everything the fetch policies are sensitive to is a generator knob:
//!
//! - basic-block length distribution → dynamic **% branches** (Table 2);
//! - static code footprint and hot/cold call mix → **I-cache miss rates**
//!   (Table 3);
//! - loop trip counts and branch bias → **PHT accuracy**;
//! - call/indirect density → **BTB/RAS behaviour** and misfetch rates.
//!
//! [`suite::Benchmark`] instantiates thirteen parameterisations named
//! after the paper's programs (`doduc` … `porky`), each calibrated so its
//! observable characteristics land near the paper's tables; the calibrated
//! targets ride along as [`suite::PaperRow`] so experiments can print
//! paper-vs-measured columns.
//!
//! # Examples
//!
//! Generate a small workload and run its first few instructions:
//!
//! ```
//! use specfetch_synth::{Workload, WorkloadSpec};
//! use specfetch_trace::PathSource;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = WorkloadSpec::c_like("demo", 42);
//! let workload = Workload::generate(&spec)?;
//! let mut exec = workload.executor(7);
//! for _ in 0..100 {
//!     let d = exec.next_instr().expect("synthetic programs never end");
//!     assert!(workload.program().contains(d.pc));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod generator;
mod rng;
mod spec;
pub mod suite;
mod workload;

pub use behavior::{BranchBehavior, DispatchTable};
pub use generator::generate;
pub use rng::{SynthRng, UniformRange};
pub use spec::{SpecError, WorkloadSpec};
pub use workload::{Executor, Workload};
