//! Structured program generation.
//!
//! The generator builds a call **DAG**: function `i` may only call
//! functions with larger indices, so call chains always terminate and the
//! interpreter's call stack stays bounded. Each function body is a small
//! AST of basic blocks, loop nests, if/else diamonds, direct calls, and
//! (for C++-like specs) indirect dispatch sites; `main` is an infinite
//! loop that calls the hot set every iteration and each cold function with
//! a small probability — the knob that sets I-cache capacity pressure.

use std::collections::HashMap;

use specfetch_isa::{Addr, InstrKind, ProgramBuilder};

use crate::{BranchBehavior, DispatchTable, SpecError, SynthRng, Workload, WorkloadSpec};

/// Where generated code images start (arbitrary, nonzero to catch
/// zero-confusion bugs).
const BASE: Addr = Addr::new(0x1_0000);

enum Stmt {
    /// `n` sequential instructions.
    Block(usize),
    /// A do-while loop: body then a backward conditional.
    Loop { trip: u32, body: Vec<Stmt> },
    /// A conditional skip/diamond guarding its arms with the given
    /// behaviour (taking the branch skips the then-arm).
    If { behavior: BranchBehavior, then_: Vec<Stmt>, else_: Vec<Stmt> },
    /// Direct call to function `idx`.
    Call(usize),
    /// Indirect call dispatching over `(function, weight)` pairs.
    ICall(Vec<(usize, f64)>),
}

struct Gen<'s> {
    spec: &'s WorkloadSpec,
    rng: SynthRng,
    /// Call sites emitted so far in the function being generated
    /// (bounded by `spec.max_calls_per_fn`).
    calls_in_fn: usize,
}

impl Gen<'_> {
    fn block_len(&mut self) -> usize {
        self.rng.gen_range(self.spec.block_len.0..=self.spec.block_len.1)
    }

    /// Behaviour of a generated if-conditional: correlated with the
    /// global history, weakly biased, or strongly biased.
    fn if_behavior(&mut self) -> BranchBehavior {
        if self.rng.gen_bool(self.spec.corr_branch_frac) {
            return BranchBehavior::Correlated {
                lag: self.rng.gen_range(1..=4),
                p_agree: self.rng.gen_range(0.85..=0.97),
            };
        }
        let p_taken = if self.rng.gen_bool(self.spec.weak_branch_frac) {
            self.rng.gen_range(self.spec.weak_bias.0..=self.spec.weak_bias.1)
        } else if self.rng.gen_bool(0.5) {
            self.spec.strong_bias
        } else {
            1.0 - self.spec.strong_bias
        };
        BranchBehavior::Biased { p_taken }
    }

    /// Statement list for a body; always starts with a straight block so
    /// loop bodies and branch arms contain real work.
    ///
    /// `depth` counts *all* structural nesting (loops and ifs). Capping it
    /// keeps the recursive generation process subcritical — without the
    /// cap the expected number of children per statement exceeds one for
    /// the branchy presets and the tree (and the stack) diverges.
    fn stmts(&mut self, n: usize, fn_idx: usize, depth: usize, loop_depth: usize) -> Vec<Stmt> {
        let mut v = Vec::with_capacity(n + 1);
        v.push(Stmt::Block(self.block_len()));
        for _ in 0..n {
            v.push(self.stmt(fn_idx, depth, loop_depth));
        }
        v
    }

    /// Callee index for a call site in `fn_idx`: a small forward jump,
    /// keeping chains inside a local band of the image (see
    /// [`WorkloadSpec::call_jump`]).
    fn pick_callee(&mut self, fn_idx: usize) -> usize {
        let hi = (fn_idx + self.spec.call_jump).min(self.spec.n_functions - 1);
        self.rng.gen_range(fn_idx + 1..=hi)
    }

    fn stmt(&mut self, fn_idx: usize, depth: usize, loop_depth: usize) -> Stmt {
        const MAX_NEST: usize = 4;
        let spec = self.spec;
        let callees = fn_idx + 1..spec.n_functions;
        let r = self.rng.gen_f64();
        let mut threshold = spec.p_loop;
        if r < threshold && loop_depth < spec.max_loop_depth && depth < MAX_NEST {
            let trip = self.rng.gen_range(spec.loop_trip.0..=spec.loop_trip.1);
            let n = self.rng.gen_range(1..=2);
            return Stmt::Loop { trip, body: self.stmts(n, fn_idx, depth + 1, loop_depth + 1) };
        }
        threshold += spec.p_if;
        if r < threshold && depth < MAX_NEST {
            let behavior = self.if_behavior();
            let then_n = self.rng.gen_range(1..=2);
            let then_ = self.stmts(then_n, fn_idx, depth + 1, loop_depth);
            let else_ = if self.rng.gen_bool(0.5) {
                Vec::new()
            } else {
                self.stmts(1, fn_idx, depth + 1, loop_depth)
            };
            return Stmt::If { behavior, then_, else_ };
        }
        // Calls are only emitted outside loop bodies: a call under a
        // trip-N loop multiplies the callee's whole activation tree by N,
        // which compounds across the call DAG and traps execution in one
        // chain for billions of instructions. Keeping calls at loop depth
        // zero bounds an activation's cost by (fanout)^(DAG depth), which
        // is small because callee indices jump geometrically toward the
        // leaves.
        let may_call = loop_depth == 0 && self.calls_in_fn < spec.max_calls_per_fn;
        threshold += spec.p_call;
        if r < threshold && !callees.is_empty() && may_call {
            let idx = self.pick_callee(fn_idx);
            self.calls_in_fn += 1;
            return Stmt::Call(idx);
        }
        threshold += spec.p_icall;
        if r < threshold && callees.len() >= 2 && may_call {
            let want = spec.dispatch_targets.min(callees.len());
            let mut entries = Vec::with_capacity(want);
            for k in 0..want {
                // Sample distinct-ish targets; weights fall off so one
                // receiver dominates (virtual-dispatch locality).
                let idx = self.pick_callee(fn_idx);
                if entries.iter().any(|&(i, _)| i == idx) {
                    continue;
                }
                entries.push((idx, 1.0 / (1.0 + k as f64)));
            }
            if !entries.is_empty() {
                self.calls_in_fn += 1;
                return Stmt::ICall(entries);
            }
        }
        Stmt::Block(self.block_len())
    }
}

struct Emitter {
    builder: ProgramBuilder,
    behaviors: HashMap<u64, BranchBehavior>,
    call_fixups: Vec<(Addr, usize)>,
    dispatch_fixups: Vec<(Addr, Vec<(usize, f64)>)>,
}

impl Emitter {
    fn emit_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit(s);
        }
    }

    fn emit(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block(n) => {
                self.builder.push_seq(*n);
            }
            Stmt::Loop { trip, body } => {
                let top = self.builder.next_addr();
                self.emit_stmts(body);
                let b = self.builder.push(InstrKind::CondBranch { target: top });
                self.behaviors.insert(b.word_index(), BranchBehavior::Loop { trip: *trip });
            }
            Stmt::If { behavior, then_, else_ } => {
                let b = self.builder.push(InstrKind::CondBranch { target: BASE });
                self.behaviors.insert(b.word_index(), behavior.clone());
                self.emit_stmts(then_);
                if else_.is_empty() {
                    let join = self.builder.next_addr();
                    self.builder.patch_target(b, join);
                } else {
                    let skip_else = self.builder.push(InstrKind::Jump { target: BASE });
                    let else_lbl = self.builder.next_addr();
                    self.builder.patch_target(b, else_lbl);
                    self.emit_stmts(else_);
                    let join = self.builder.next_addr();
                    self.builder.patch_target(skip_else, join);
                }
            }
            Stmt::Call(idx) => {
                let c = self.builder.push(InstrKind::Call { target: BASE });
                self.call_fixups.push((c, *idx));
            }
            Stmt::ICall(entries) => {
                let ic = self.builder.push(InstrKind::IndirectCall);
                self.dispatch_fixups.push((ic, entries.clone()));
            }
        }
    }
}

/// Generates the workload a [`WorkloadSpec`] describes.
///
/// Deterministic: the same spec (including its seed) always yields the
/// same program, behaviours, and dispatch tables.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec fails validation.
pub fn generate(spec: &WorkloadSpec) -> Result<Workload, SpecError> {
    spec.validate()?;
    let mut g = Gen { spec, rng: SynthRng::seed_from_u64(spec.seed), calls_in_fn: 0 };

    // Function bodies (ASTs) first, so emission order is free to follow
    // index order while all randomness stays in one deterministic stream.
    let mut bodies = Vec::with_capacity(spec.n_functions);
    for fn_idx in 0..spec.n_functions {
        let n = g.rng.gen_range(spec.stmts_per_fn.0..=spec.stmts_per_fn.1);
        g.calls_in_fn = 0;
        bodies.push(g.stmts(n, fn_idx, 0, 0));
    }

    let mut e = Emitter {
        builder: ProgramBuilder::new(BASE),
        behaviors: HashMap::new(),
        call_fixups: Vec::new(),
        dispatch_fixups: Vec::new(),
    };

    let mut fn_entries = Vec::with_capacity(spec.n_functions);
    for body in &bodies {
        fn_entries.push(e.builder.next_addr());
        e.emit_stmts(body);
        e.builder.push(InstrKind::Return);
    }

    // main: infinite loop over the hot set plus probabilistic cold calls.
    // Hot roots are spread across the whole index space (stride layout) so
    // their local call bands barely overlap; the remaining functions are
    // cold roots behind biased guards.
    let main_top = e.builder.next_addr();
    e.builder.push_seq(g.rng.gen_range(spec.block_len.0..=spec.block_len.1));
    let hot_roots: Vec<usize> =
        (0..spec.hot_functions).map(|k| k * spec.n_functions / spec.hot_functions).collect();
    for &hot in &hot_roots {
        let c = e.builder.push(InstrKind::Call { target: BASE });
        e.call_fixups.push((c, hot));
    }
    for cold in 0..spec.n_functions {
        if hot_roots.contains(&cold) {
            continue;
        }
        let skip = e.builder.push(InstrKind::CondBranch { target: BASE });
        e.behaviors.insert(
            skip.word_index(),
            BranchBehavior::Biased { p_taken: 1.0 - spec.cold_call_prob },
        );
        let c = e.builder.push(InstrKind::Call { target: BASE });
        e.call_fixups.push((c, cold));
        let join = e.builder.next_addr();
        e.builder.patch_target(skip, join);
    }
    e.builder.push(InstrKind::Jump { target: main_top });

    for (at, idx) in &e.call_fixups {
        e.builder.patch_target(*at, fn_entries[*idx]);
    }
    e.builder.set_entry(main_top);
    let program = match e.builder.finish() {
        Ok(p) => p,
        // A build failure here is a generator-logic bug (every emitted
        // image must be closed), not a recoverable condition — but the
        // builder's own diagnosis beats an opaque expect message.
        Err(e) => panic!("generator emits a closed image: {e}"),
    };

    let dispatch = e
        .dispatch_fixups
        .into_iter()
        .map(|(at, entries)| {
            let resolved: Vec<(Addr, f64)> =
                entries.iter().map(|&(idx, w)| (fn_entries[idx], w)).collect();
            (at.word_index(), DispatchTable::new(&resolved))
        })
        .collect();

    Ok(Workload::from_parts(spec.name.clone(), program, e.behaviors, dispatch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::c_like("det", 99);
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(a.program(), b.program());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadSpec::c_like("a", 1)).unwrap();
        let b = generate(&WorkloadSpec::c_like("a", 2)).unwrap();
        assert_ne!(a.program(), b.program());
    }

    #[test]
    fn every_cond_branch_has_a_behavior() {
        let w = generate(&WorkloadSpec::cpp_like("beh", 5)).unwrap();
        for (pc, kind) in w.program().iter() {
            if kind.is_conditional() {
                assert!(w.behavior_at(pc).is_some(), "conditional at {pc} lacks a behavior");
            }
            if matches!(kind, InstrKind::IndirectCall | InstrKind::IndirectJump) {
                assert!(w.dispatch_at(pc).is_some(), "indirect at {pc} lacks a table");
            }
        }
    }

    #[test]
    fn fortran_preset_has_no_indirection() {
        let w = generate(&WorkloadSpec::fortran_like("f", 3)).unwrap();
        let has_indirect = w
            .program()
            .iter()
            .any(|(_, k)| matches!(k, InstrKind::IndirectCall | InstrKind::IndirectJump));
        assert!(!has_indirect);
    }

    #[test]
    fn cpp_preset_has_indirection() {
        let w = generate(&WorkloadSpec::cpp_like("cpp", 3)).unwrap();
        let n = w.program().iter().filter(|(_, k)| matches!(k, InstrKind::IndirectCall)).count();
        assert!(n > 0, "cpp-like workloads should contain indirect calls");
    }

    #[test]
    fn block_length_shapes_branch_density() {
        let long = generate(&WorkloadSpec::fortran_like("f", 7)).unwrap();
        let short = generate(&WorkloadSpec::c_like("c", 7)).unwrap();
        let density =
            |w: &Workload| w.program().static_branch_count() as f64 / w.program().len() as f64;
        assert!(
            density(&long) < density(&short),
            "fortran-like images must be less branchy than c-like"
        );
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut s = WorkloadSpec::c_like("x", 1);
        s.n_functions = 0;
        assert!(generate(&s).is_err());
    }
}
