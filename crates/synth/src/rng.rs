//! A small, dependency-free deterministic PRNG.
//!
//! The generator and the behavioural interpreter both need a seedable,
//! reproducible stream of uniform numbers. This is xoshiro256** (Blackman
//! & Vigna) seeded through SplitMix64 — the standard pairing — implemented
//! in-repo so the workspace builds with no external crates. The same seed
//! always yields the same stream on every platform, which is what the
//! calibrated benchmark suite and every policy comparison rely on.

use std::ops::RangeInclusive;

/// A seedable xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use specfetch_synth::SynthRng;
///
/// let mut a = SynthRng::seed_from_u64(7);
/// let mut b = SynthRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(1usize..=6);
/// assert!((1..=6).contains(&x));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SynthRng {
    s: [u64; 4],
}

impl SynthRng {
    /// Expands a 64-bit seed into a full generator state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SynthRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from an inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start > end`).
    pub fn gen_range<T: UniformRange>(&mut self, range: RangeInclusive<T>) -> T {
        T::sample(self, range)
    }
}

/// Types [`SynthRng::gen_range`] can sample uniformly.
pub trait UniformRange: Copy + PartialOrd {
    /// Draws a uniform value from `range`.
    fn sample(rng: &mut SynthRng, range: RangeInclusive<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(rng: &mut SynthRng, range: RangeInclusive<Self>) -> Self {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                // Spans here are tiny (knob ranges), so plain modulo is
                // fine: the bias is ~span/2^64.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return rng.next_u64() as Self;
                }
                lo.wrapping_add((rng.next_u64() % span) as Self)
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

impl UniformRange for f64 {
    fn sample(rng: &mut SynthRng, range: RangeInclusive<Self>) -> Self {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range called with an empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SynthRng::seed_from_u64(42);
        let mut b = SynthRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SynthRng::seed_from_u64(1);
        let mut b = SynthRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SynthRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = SynthRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_frequency_tracks_p() {
        let mut r = SynthRng::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut r = SynthRng::seed_from_u64(6);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = r.gen_range(1usize..=6);
            assert!((1..=6).contains(&x));
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces should appear: {seen:?}");
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut r = SynthRng::seed_from_u64(7);
        assert_eq!(r.gen_range(9u32..=9), 9);
        assert_eq!(r.gen_range(0.25f64..=0.25), 0.25);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = SynthRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = r.gen_range(0.85f64..=0.97);
            assert!((0.85..=0.97).contains(&x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    #[allow(clippy::reversed_empty_ranges)] // the empty range IS the test
    fn empty_range_panics() {
        let mut r = SynthRng::seed_from_u64(9);
        let _ = r.gen_range(5usize..=4);
    }
}
