//! Dynamic behaviours attached to generated branch sites.

use specfetch_isa::Addr;

/// How a generated conditional branch behaves when executed.
///
/// The interpreter keeps per-site state (loop counters) and a seeded RNG;
/// the behaviour plus that state fully determines each dynamic outcome, so
/// the same workload and seed always produce the same path.
#[derive(Clone, PartialEq, Debug)]
pub enum BranchBehavior {
    /// A loop back-edge: taken `trip` consecutive times, then not taken
    /// once (the loop exit), then the counter resets. Highly predictable —
    /// what makes the Fortran-like codes accurate to predict.
    Loop {
        /// Consecutive taken executions before one not-taken.
        trip: u32,
    },
    /// A data-dependent conditional taken with probability `p_taken`
    /// independently at each execution.
    Biased {
        /// Probability of the taken direction.
        p_taken: f64,
    },
    /// A conditional correlated with the global outcome history: with
    /// probability `p_agree` it repeats the outcome of the conditional
    /// executed `lag` branches ago (real programs test related conditions
    /// close together — exactly the signal gshare-style predictors
    /// exploit and PC-indexed ones cannot).
    Correlated {
        /// How many conditional outcomes back to look (1-based).
        lag: u32,
        /// Probability of agreeing with that outcome.
        p_agree: f64,
    },
}

impl BranchBehavior {
    /// Long-run taken frequency of this behaviour (for [`Correlated`]
    /// branches this depends on the surrounding mix; 0.5 is reported as
    /// the neutral estimate).
    ///
    /// [`Correlated`]: BranchBehavior::Correlated
    pub fn taken_rate(&self) -> f64 {
        match *self {
            BranchBehavior::Loop { trip } => trip as f64 / (trip as f64 + 1.0),
            BranchBehavior::Biased { p_taken } => p_taken,
            BranchBehavior::Correlated { .. } => 0.5,
        }
    }

    /// The best static-prediction accuracy achievable on this behaviour
    /// (what a saturated 2-bit counter converges to, history aside).
    pub fn best_static_accuracy(&self) -> f64 {
        if let BranchBehavior::Correlated { p_agree, .. } = *self {
            // A history-aware predictor can reach p_agree; a static or
            // PC-indexed one is stuck near chance.
            return p_agree.max(1.0 - p_agree);
        }
        let t = self.taken_rate();
        t.max(1.0 - t)
    }
}

/// The target set of a generated indirect call/jump site.
///
/// Targets are chosen per execution with the given relative weights,
/// modelling virtual dispatch where one receiver class dominates.
#[derive(Clone, PartialEq, Debug)]
pub struct DispatchTable {
    targets: Vec<Addr>,
    /// Cumulative weights, normalised so the last entry is 1.0.
    cumulative: Vec<f64>,
}

impl DispatchTable {
    /// Builds a table from `(target, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is non-positive — a
    /// generator bug, not a runtime condition.
    pub fn new(entries: &[(Addr, f64)]) -> Self {
        assert!(!entries.is_empty(), "dispatch table needs at least one target");
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0 && entries.iter().all(|&(_, w)| w > 0.0), "weights must be positive");
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for &(_, w) in entries {
            acc += w / total;
            cumulative.push(acc);
        }
        // `entries` is non-empty (asserted above), so the loop pushed at
        // least once; pin the tail to exactly 1.0 against float drift.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        DispatchTable { targets: entries.iter().map(|&(t, _)| t).collect(), cumulative }
    }

    /// Picks a target for a uniform sample `u` in `[0, 1)`.
    pub fn pick(&self, u: f64) -> Addr {
        let i = self.cumulative.iter().position(|&c| u < c).unwrap_or(self.targets.len() - 1);
        self.targets[i]
    }

    /// All possible targets.
    pub fn targets(&self) -> &[Addr] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_taken_rate() {
        let b = BranchBehavior::Loop { trip: 9 };
        assert!((b.taken_rate() - 0.9).abs() < 1e-12);
        assert!((b.best_static_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn correlated_rates() {
        let b = BranchBehavior::Correlated { lag: 2, p_agree: 0.9 };
        assert!((b.taken_rate() - 0.5).abs() < 1e-12);
        assert!((b.best_static_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn biased_rates() {
        let b = BranchBehavior::Biased { p_taken: 0.2 };
        assert!((b.taken_rate() - 0.2).abs() < 1e-12);
        assert!((b.best_static_accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dispatch_pick_honours_weights() {
        let t = DispatchTable::new(&[(Addr::new(0), 3.0), (Addr::new(4), 1.0)]);
        assert_eq!(t.pick(0.0), Addr::new(0));
        assert_eq!(t.pick(0.74), Addr::new(0));
        assert_eq!(t.pick(0.76), Addr::new(4));
        assert_eq!(t.pick(0.999999), Addr::new(4));
        assert_eq!(t.targets().len(), 2);
    }

    #[test]
    fn dispatch_single_target_always_picked() {
        let t = DispatchTable::new(&[(Addr::new(8), 1.0)]);
        for u in [0.0, 0.5, 0.999] {
            assert_eq!(t.pick(u), Addr::new(8));
        }
    }

    #[test]
    #[should_panic]
    fn empty_dispatch_panics() {
        let _ = DispatchTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn non_positive_weight_panics() {
        let _ = DispatchTable::new(&[(Addr::new(0), 0.0)]);
    }
}
