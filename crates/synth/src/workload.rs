//! The generated workload and its behavioural interpreter.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use specfetch_isa::{Addr, CfgIssue, CfgReport, DynInstr, InstrKind, Program};
use specfetch_trace::PathSource;

use crate::{generate, BranchBehavior, DispatchTable, SpecError, SynthRng, WorkloadSpec};

/// A generated synthetic program: a static image plus the dynamic
/// behaviours of its data-dependent branch sites.
///
/// Create one with [`Workload::generate`], then obtain any number of
/// independent execution paths with [`Workload::executor`] (each seed
/// gives one deterministic path — the fetch-policy comparisons rely on
/// replaying the *same* path under every policy).
///
/// See the crate-level example.
#[derive(Clone, PartialEq, Debug)]
pub struct Workload {
    name: String,
    /// Shared so every executor (and the engine behind it) can hold the
    /// image without deep-copying it.
    program: Arc<Program>,
    /// Keyed by `pc.word_index()`.
    behaviors: HashMap<u64, BranchBehavior>,
    dispatch: HashMap<u64, DispatchTable>,
}

impl Workload {
    /// Generates the workload described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec fails validation.
    pub fn generate(spec: &WorkloadSpec) -> Result<Workload, SpecError> {
        generate(spec)
    }

    pub(crate) fn from_parts(
        name: String,
        program: Program,
        behaviors: HashMap<u64, BranchBehavior>,
        dispatch: HashMap<u64, DispatchTable>,
    ) -> Self {
        Workload { name, program: Arc::new(program), behaviors, dispatch }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static code image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The static code image as a cheaply clonable shared handle.
    pub fn shared_program(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// The behaviour of the conditional branch at `pc`, if one is there.
    pub fn behavior_at(&self, pc: Addr) -> Option<&BranchBehavior> {
        self.behaviors.get(&pc.word_index())
    }

    /// The dispatch table of the indirect site at `pc`, if one is there.
    pub fn dispatch_at(&self, pc: Addr) -> Option<&DispatchTable> {
        self.dispatch.get(&pc.word_index())
    }

    /// Statically verifies the generated image together with its
    /// behavioural annotations.
    ///
    /// Runs [`specfetch_isa::verify_cfg`] with this workload's dispatch
    /// tables as the indirect-target oracle, then additionally checks the
    /// executor's contract that every conditional carries a
    /// [`BranchBehavior`] (reported as [`CfgIssue::MissingBehavior`]).
    /// A clean report means every correct *and* wrong-path walk the fetch
    /// engine can take stays inside the image — the precondition for the
    /// speculative policies to be comparable at all.
    pub fn analyze(&self) -> CfgReport {
        let mut report = specfetch_isa::verify_cfg(self.program(), |at| {
            self.dispatch_at(at).map(|t| t.targets().to_vec())
        });
        for (at, kind) in self.program().iter() {
            if kind.is_conditional() && self.behavior_at(at).is_none() {
                report.issues.push(CfgIssue::MissingBehavior { at });
            }
        }
        report
    }

    /// A copy of this workload whose first conditional branch is
    /// redirected to an address past the image end — a deliberately
    /// broken workload for exercising the analysis failure paths end to
    /// end (the `repro --corrupt-target` hook and the mutation tests).
    ///
    /// Returns the corrupted workload plus the branch site and bogus
    /// target (so callers can assert the diagnostic is precise), or
    /// `None` if the image has no conditional branch.
    pub fn corrupt_first_branch_target(&self) -> Option<(Workload, Addr, Addr)> {
        let (at, _) = self.program.iter().find(|(_, k)| k.is_conditional())?;
        let bogus = Addr::new(self.program.end().raw() + 0x40);
        let program =
            self.program.with_instr_unchecked(at, InstrKind::CondBranch { target: bogus })?;
        let corrupted = Workload::from_parts(
            self.name.clone(),
            program,
            self.behaviors.clone(),
            self.dispatch.clone(),
        );
        Some((corrupted, at, bogus))
    }

    /// A deterministic execution path: the same `(workload, seed)` always
    /// yields the same instruction stream. The stream is infinite (the
    /// synthetic `main` loops forever); cap it with
    /// [`PathSource::take_instrs`].
    pub fn executor(&self, seed: u64) -> Executor<'_> {
        Executor {
            workload: self,
            rng: SynthRng::seed_from_u64(seed),
            pc: self.program.entry(),
            call_stack: Vec::with_capacity(64),
            loop_counters: HashMap::new(),
            history: 0,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} instrs ({} KB), {} static branches",
            self.name,
            self.program.len(),
            self.program.footprint_bytes() / 1024,
            self.program.static_branch_count()
        )
    }
}

/// Executes a [`Workload`], yielding its correct path as a [`PathSource`].
///
/// Produced by [`Workload::executor`].
#[derive(Clone, Debug)]
pub struct Executor<'w> {
    workload: &'w Workload,
    rng: SynthRng,
    pc: Addr,
    call_stack: Vec<Addr>,
    loop_counters: HashMap<u64, u32>,
    /// Outcomes of recent conditionals (bit 0 = most recent), feeding the
    /// `Correlated` behaviour.
    history: u32,
}

impl Executor<'_> {
    /// Current call-stack depth (diagnostic; bounded by the call DAG's
    /// depth).
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }
}

impl PathSource for Executor<'_> {
    fn program(&self) -> &Program {
        &self.workload.program
    }

    fn shared_program(&self) -> Arc<Program> {
        self.workload.shared_program()
    }

    fn next_instr(&mut self) -> Option<DynInstr> {
        let pc = self.pc;
        let kind = self
            .workload
            .program
            .fetch(pc)
            .expect("generated programs are closed: the PC never leaves the image");
        let d = match kind {
            InstrKind::Seq => DynInstr::seq(pc),
            InstrKind::Jump { target } => DynInstr::branch(pc, kind, true, target),
            InstrKind::Call { target } => {
                self.call_stack.push(pc.next());
                DynInstr::branch(pc, kind, true, target)
            }
            InstrKind::Return => {
                let target = self
                    .call_stack
                    .pop()
                    .expect("call DAG guarantees a matching call for every return");
                DynInstr::branch(pc, kind, true, target)
            }
            InstrKind::CondBranch { target } => {
                let behavior = self
                    .workload
                    .behavior_at(pc)
                    .expect("generator attaches a behavior to every conditional");
                let taken = match *behavior {
                    BranchBehavior::Loop { trip } => {
                        let ctr = self.loop_counters.entry(pc.word_index()).or_insert(0);
                        if *ctr < trip {
                            *ctr += 1;
                            true
                        } else {
                            *ctr = 0;
                            false
                        }
                    }
                    BranchBehavior::Biased { p_taken } => self.rng.gen_bool(p_taken),
                    BranchBehavior::Correlated { lag, p_agree } => {
                        let past = (self.history >> (lag - 1)) & 1 == 1;
                        if self.rng.gen_bool(p_agree) {
                            past
                        } else {
                            !past
                        }
                    }
                };
                self.history = (self.history << 1) | taken as u32;
                let next_pc = if taken { target } else { pc.next() };
                DynInstr::branch(pc, kind, taken, next_pc)
            }
            InstrKind::IndirectCall => {
                let table = self
                    .workload
                    .dispatch_at(pc)
                    .expect("generator attaches a table to every indirect site");
                let target = table.pick(self.rng.gen_f64());
                self.call_stack.push(pc.next());
                DynInstr::branch(pc, kind, true, target)
            }
            InstrKind::IndirectJump => {
                let table = self
                    .workload
                    .dispatch_at(pc)
                    .expect("generator attaches a table to every indirect site");
                let target = table.pick(self.rng.gen_f64());
                DynInstr::branch(pc, kind, true, target)
            }
        };
        self.pc = d.next_pc;
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_trace::TraceStats;

    fn workload() -> Workload {
        Workload::generate(&WorkloadSpec::cpp_like("t", 11)).unwrap()
    }

    #[test]
    fn executor_is_deterministic_per_seed() {
        let w = workload();
        let mut a = w.executor(5);
        let mut b = w.executor(5);
        for _ in 0..20_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let w = workload();
        let mut a = w.executor(5);
        let mut b = w.executor(6);
        let diverged = (0..20_000).any(|_| a.next_instr() != b.next_instr());
        assert!(diverged);
    }

    #[test]
    fn path_stays_inside_the_image() {
        let w = workload();
        let mut e = w.executor(1);
        for _ in 0..50_000 {
            let d = e.next_instr().unwrap();
            assert!(w.program().contains(d.pc));
            assert!(w.program().contains(d.next_pc));
        }
    }

    #[test]
    fn call_stack_stays_bounded() {
        let w = workload();
        let mut e = w.executor(2);
        let mut max_depth = 0;
        for _ in 0..100_000 {
            e.next_instr();
            max_depth = max_depth.max(e.call_depth());
        }
        // The call DAG bounds depth by the function count.
        assert!(max_depth <= 72 + 1, "depth {max_depth} exceeds the DAG bound");
        assert!(max_depth >= 1, "calls should actually happen");
    }

    #[test]
    fn successor_consistency() {
        // next_pc of each instruction equals pc of the next one.
        let w = workload();
        let mut e = w.executor(3);
        let mut prev: Option<DynInstr> = None;
        for _ in 0..10_000 {
            let d = e.next_instr().unwrap();
            if let Some(p) = prev {
                assert_eq!(p.next_pc, d.pc);
            }
            prev = Some(d);
        }
    }

    #[test]
    fn branch_density_roughly_matches_preset() {
        let w = Workload::generate(&WorkloadSpec::c_like("dens", 4)).unwrap();
        let mut e = w.executor(1).take_instrs(200_000);
        let stats = TraceStats::from_source(&mut e);
        // C-like presets target the paper's 13-20% branch range; allow slack.
        assert!(
            stats.branch_pct() > 8.0 && stats.branch_pct() < 30.0,
            "unexpected branch density {:.1}%",
            stats.branch_pct()
        );
    }

    #[test]
    fn loop_behavior_produces_taken_runs() {
        let w = Workload::generate(&WorkloadSpec::fortran_like("loops", 4)).unwrap();
        let mut e = w.executor(1).take_instrs(200_000);
        let stats = TraceStats::from_source(&mut e);
        // Loop back-edges bias the mix toward taken; correlated and
        // skip-style conditionals pull toward 50%, so the loop-heavy
        // preset must stay clearly above a not-taken-dominated mix.
        assert!(stats.taken_ratio() > 0.45, "taken ratio {:.2}", stats.taken_ratio());
    }

    #[test]
    fn display_mentions_name() {
        assert!(workload().to_string().contains("t:"));
    }
}
