//! Calibration search: tunes each benchmark's generator knobs until its
//! measured characteristics (% branches, 8K/32K direct-mapped miss rates)
//! match the paper's Tables 2–3, then prints a `Knobs` row to paste into
//! `suite.rs`.
//!
//! Usage: `cargo run --release -p specfetch-synth --example calibrate
//! [bench ...]` (defaults to all benchmarks).

use std::collections::HashMap;

use specfetch_synth::suite::Benchmark;
use specfetch_synth::{Workload, WorkloadSpec};
use specfetch_trace::PathSource;

const EVAL_INSTRS: u64 = 900_000;

#[derive(Copy, Clone, Debug, Default)]
struct Measured {
    branch_pct: f64,
    miss_8k: f64,
    miss_32k: f64,
}

fn measure(spec: &WorkloadSpec, path_seed: u64) -> Option<Measured> {
    let w = Workload::generate(spec).ok()?;
    let mut e = w.executor(path_seed).take_instrs(EVAL_INSTRS);
    let mut c8: HashMap<u64, u64> = HashMap::new();
    let mut c32: HashMap<u64, u64> = HashMap::new();
    let (mut m8, mut m32, mut instrs, mut branches) = (0u64, 0u64, 0u64, 0u64);
    while let Some(d) = e.next_instr() {
        instrs += 1;
        if d.kind.is_branch() {
            branches += 1;
        }
        let line = d.pc.raw() / 32;
        let (s8, t8) = (line % 256, line / 256);
        if c8.get(&s8) != Some(&t8) {
            m8 += 1;
            c8.insert(s8, t8);
        }
        let (s32, t32) = (line % 1024, line / 1024);
        if c32.get(&s32) != Some(&t32) {
            m32 += 1;
            c32.insert(s32, t32);
        }
    }
    Some(Measured {
        branch_pct: 100.0 * branches as f64 / instrs as f64,
        miss_8k: 100.0 * m8 as f64 / instrs as f64,
        miss_32k: 100.0 * m32 as f64 / instrs as f64,
    })
}

/// Relative-error objective; miss-rate terms use a floor so near-zero
/// targets (su2cor's 0.00% at 32K) don't blow up.
fn error(m: &Measured, b: &Benchmark) -> f64 {
    let rel = |got: f64, want: f64, floor: f64| {
        let w = want.max(floor);
        ((got - want) / w).abs()
    };
    1.0 * rel(m.branch_pct, b.paper.branch_pct, 1.0)
        + 2.0 * rel(m.miss_8k, b.paper.miss_8k, 0.3)
        + 1.5 * rel(m.miss_32k, b.paper.miss_32k, 0.3)
}

type Mutation = (&'static str, fn(&mut WorkloadSpec));

fn mutations() -> Vec<Mutation> {
    fn scale_usize(v: usize, f: f64, lo: usize) -> usize {
        ((v as f64 * f).round() as usize).max(lo)
    }
    vec![
        ("hot+", |s| s.hot_functions = (s.hot_functions + 1).min(s.n_functions)),
        ("hot++", |s| s.hot_functions = scale_usize(s.hot_functions, 1.5, 1).min(s.n_functions)),
        ("hot-", |s| s.hot_functions = s.hot_functions.saturating_sub(1).max(1)),
        ("hot--", |s| s.hot_functions = scale_usize(s.hot_functions, 0.67, 1)),
        ("n+", |s| s.n_functions = scale_usize(s.n_functions, 1.3, 4)),
        ("n-", |s| {
            s.n_functions = scale_usize(s.n_functions, 0.77, 4);
            s.hot_functions = s.hot_functions.min(s.n_functions);
        }),
        ("loop+", |s| s.p_loop = (s.p_loop * 1.4 + 0.01).min(0.5)),
        ("loop-", |s| s.p_loop = (s.p_loop * 0.7).max(0.0)),
        ("cold+", |s| s.cold_call_prob = (s.cold_call_prob * 1.5 + 0.005).min(0.6)),
        ("cold-", |s| s.cold_call_prob = (s.cold_call_prob * 0.67).max(0.0)),
        ("blk+", |s| s.block_len = (s.block_len.0, s.block_len.1 + 1)),
        ("blk-", |s| {
            s.block_len =
                (s.block_len.0.max(2) - 1, (s.block_len.1 - 1).max(s.block_len.0.max(2) - 1).max(1))
        }),
        ("trip+", |s| s.loop_trip = (s.loop_trip.0, (s.loop_trip.1 as f64 * 1.4) as u32 + 1)),
        ("trip-", |s| {
            s.loop_trip = (
                s.loop_trip.0.min(2),
                ((s.loop_trip.1 as f64 * 0.7) as u32).max(s.loop_trip.0.min(2)),
            )
        }),
        ("jump+", |s| s.call_jump += 2),
        ("jump-", |s| s.call_jump = s.call_jump.saturating_sub(2).max(1)),
        ("stmt+", |s| s.stmts_per_fn = (s.stmts_per_fn.0 + 1, s.stmts_per_fn.1 + 2)),
        ("stmt-", |s| {
            let lo = s.stmts_per_fn.0.saturating_sub(1).max(2);
            s.stmts_per_fn = (lo, (s.stmts_per_fn.1.saturating_sub(2)).max(lo));
        }),
    ]
}

fn calibrate(b: &Benchmark, rounds: usize) -> (WorkloadSpec, Measured, f64) {
    let mut best_spec = b.spec();
    let mut best_m = measure(&best_spec, b.path_seed()).expect("base spec generates");
    let mut best_e = error(&best_m, b);
    let muts = mutations();
    for round in 0..rounds {
        let mut improved = false;
        for (name, m) in &muts {
            let mut cand = best_spec.clone();
            m(&mut cand);
            if cand.validate().is_err() {
                continue;
            }
            let Some(meas) = measure(&cand, b.path_seed()) else { continue };
            let e = error(&meas, b);
            if e + 1e-9 < best_e {
                eprintln!(
                    "  [{}] round {round} {name}: err {best_e:.3} -> {e:.3} (br {:.1} m8 {:.2} m32 {:.2})",
                    b.name, meas.branch_pct, meas.miss_8k, meas.miss_32k
                );
                best_spec = cand;
                best_m = meas;
                best_e = e;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (best_spec, best_m, best_e)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<&Benchmark> = if args.is_empty() {
        Benchmark::all().iter().collect()
    } else {
        args.iter()
            .map(|a| Benchmark::by_name(a).unwrap_or_else(|| panic!("unknown benchmark {a}")))
            .collect()
    };
    let mut rows = Vec::new();
    for b in benches {
        let (spec, m, e) = calibrate(b, 20);
        eprintln!(
            "{}: err {:.3}  br {:.1}/{:.1}  8K {:.2}/{:.2}  32K {:.2}/{:.2}",
            b.name,
            e,
            m.branch_pct,
            b.paper.branch_pct,
            m.miss_8k,
            b.paper.miss_8k,
            m.miss_32k,
            b.paper.miss_32k
        );
        rows.push(format!(
            "    // {}\n    Knobs {{ block_len: ({}, {}), n_functions: {}, stmts_per_fn: ({}, {}), hot_functions: {}, cold_call_prob: {:.4}, p_loop: {:.4}, loop_trip: ({}, {}), weak_branch_frac: {:.2}, max_loop_depth: {}, call_jump: {} }},",
            b.name,
            spec.block_len.0, spec.block_len.1,
            spec.n_functions,
            spec.stmts_per_fn.0, spec.stmts_per_fn.1,
            spec.hot_functions,
            spec.cold_call_prob,
            spec.p_loop,
            spec.loop_trip.0, spec.loop_trip.1,
            spec.weak_branch_frac,
            spec.max_loop_depth,
            spec.call_jump,
        ));
    }
    println!("\n==== paste into suite.rs KNOBS ====");
    for r in &rows {
        println!("{r}");
    }
}
