//! Quick workload characterisation dump (used during calibration).
//!
//! Prints, per benchmark: static size, dynamic %branches, taken ratio, and
//! per-instruction miss rates of 8K/32K direct-mapped caches on the
//! correct path, next to the paper's targets.
use std::collections::HashMap;

use specfetch_synth::suite::Benchmark;
use specfetch_trace::PathSource;

const N: u64 = 1_000_000;

fn main() {
    println!(
        "{:<8} {:>7} {:>6}/{:<6} {:>5} {:>6}/{:<6} {:>6}/{:<6} {:>6} {:>8}",
        "bench",
        "static",
        "%br",
        "paper",
        "taken",
        "8K",
        "paper",
        "32K",
        "paper",
        "footKB",
        "iterlen"
    );
    for b in Benchmark::all() {
        let w = b.workload().unwrap();
        let mut e = w.executor(b.path_seed()).take_instrs(N);
        let mut c8: HashMap<u64, u64> = HashMap::new(); // set -> tag
        let mut c32: HashMap<u64, u64> = HashMap::new();
        let (mut m8, mut m32, mut instrs, mut branches, mut taken, mut conds) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        let mut touched = std::collections::HashSet::new();
        let entry = w.program().entry();
        let mut iterations = 0u64;
        while let Some(d) = e.next_instr() {
            if d.pc == entry {
                iterations += 1;
            }
            instrs += 1;
            if d.kind.is_branch() {
                branches += 1;
            }
            if d.kind.is_conditional() {
                conds += 1;
                if d.taken {
                    taken += 1;
                }
            }
            let line = d.pc.raw() / 32;
            touched.insert(line);
            let (s8, t8) = (line % 256, line / 256);
            if c8.get(&s8) != Some(&t8) {
                m8 += 1;
                c8.insert(s8, t8);
            }
            let (s32, t32) = (line % 1024, line / 1024);
            if c32.get(&s32) != Some(&t32) {
                m32 += 1;
                c32.insert(s32, t32);
            }
        }
        println!(
            "{:<8} {:>7} {:>6.1}/{:<5.1} {:>5.2} {:>6.2}/{:<5.2} {:>6.2}/{:<5.2} {:>5} {:>8}",
            b.name,
            w.program().len(),
            100.0 * branches as f64 / instrs as f64,
            b.paper.branch_pct,
            taken as f64 / conds.max(1) as f64,
            100.0 * m8 as f64 / instrs as f64,
            b.paper.miss_8k,
            100.0 * m32 as f64 / instrs as f64,
            b.paper.miss_32k,
            touched.len() * 32 / 1024,
            instrs / iterations.max(1),
        );
    }
}
