//! Property tests: every program the generator emits passes the static
//! CFG verifier, across all thirteen calibrated benchmark models and
//! randomized generator seeds — plus mutation tests proving the verifier
//! actually pinpoints a seeded defect (a verifier that passes everything
//! would also pass these, so the property alone is not enough).

use specfetch_isa::{verify_cfg, CfgIssue};
use specfetch_synth::suite::Benchmark;
use specfetch_synth::{SynthRng, Workload};

/// Every calibrated benchmark (at its committed generator seed) verifies
/// clean, with the whole image reachable and wrong-path-covered.
#[test]
fn all_thirteen_benchmarks_verify_clean() {
    for b in Benchmark::all() {
        let w = b.workload().unwrap();
        let r = w.analyze();
        assert!(r.is_ok(), "{}: {r}", b.name);
        assert_eq!(r.reachable, r.instrs, "{}: dead code in the image", b.name);
        assert_eq!(r.wrong_path_visited, r.instrs, "{}: wrong-path closure has holes", b.name);
        assert!(r.conditionals > 0, "{}: no conditionals generated", b.name);
    }
}

/// The structural invariants are seed-independent: re-seeding each
/// benchmark's generator with random draws still verifies clean.
#[test]
fn randomized_seeds_verify_clean_for_every_model() {
    let mut rng = SynthRng::seed_from_u64(0x05ee_dcf9);
    for b in Benchmark::all() {
        for _ in 0..3 {
            let mut spec = b.spec();
            spec.seed = rng.next_u64();
            let w = Workload::generate(&spec)
                .unwrap_or_else(|e| panic!("{} reseeded spec invalid: {e}", b.name));
            let r = w.analyze();
            assert!(r.is_ok(), "{} @ seed {}: {r}", b.name, spec.seed);
            assert_eq!(r.reachable, r.instrs, "{} @ seed {}", b.name, spec.seed);
        }
    }
}

/// Corrupting a single branch target produces exactly the right
/// diagnostic, naming the corrupted site and its bogus target.
#[test]
fn corrupted_branch_target_yields_a_precise_diagnostic() {
    let b = Benchmark::by_name("li").unwrap();
    let w = b.workload().unwrap();
    let (corrupted, at, bogus) = w.corrupt_first_branch_target().unwrap();
    let r = corrupted.analyze();
    assert!(!r.is_ok());
    assert!(
        r.issues.contains(&CfgIssue::TargetOutOfImage { at, target: bogus }),
        "expected TargetOutOfImage at {at} -> {bogus}, got: {:?}",
        r.issues
    );
    // The original workload is untouched (corruption is copy-on-write).
    assert!(w.analyze().is_ok());
}

/// The verifier also catches defects the builder cannot: an in-image
/// retarget that strands code. Redirect the first conditional to its own
/// address (a self-loop) — anything only reachable through its
/// fall-through or old target may become dead, and if nothing does, the
/// report must still be structurally consistent.
#[test]
fn verifier_statistics_stay_consistent_under_in_image_retarget() {
    let b = Benchmark::by_name("doduc").unwrap();
    let w = b.workload().unwrap();
    let (at, _) = w.program().iter().find(|(_, k)| k.is_conditional()).unwrap();
    let p = w
        .program()
        .with_instr_unchecked(at, specfetch_isa::InstrKind::CondBranch { target: at })
        .unwrap();
    let r = verify_cfg(&p, |a| w.dispatch_at(a).map(|t| t.targets().to_vec()));
    assert!(r.reachable <= r.instrs);
    let dead = r.issues.iter().filter(|i| matches!(i, CfgIssue::Unreachable { .. })).count();
    assert_eq!(r.reachable + dead, r.instrs, "reachability and dead-code reports disagree");
}
