//! The store layer: one facade over every place a grid point's outcome
//! can already live — the process-wide result memo, the on-disk
//! [`crate::result_store`], and the crash-exact [`crate::journal`] —
//! owning the resolution order (memo → disk → compute) and exposing the
//! journal's lifecycle counters as typed [`Progress`] snapshots.
//!
//! The free functions [`resolve_stored`] / [`persist`] are the
//! per-point seam the runner and the worker pool call on the hot path;
//! [`RunStore`] is the per-job handle the driver and the service
//! controller hold — it attaches a journal, reads progress, and
//! releases the slot, without either layer touching journal internals.

use std::path::{Path, PathBuf};

use specfetch_core::{SimConfig, SimResult, SpecfetchError};
use specfetch_synth::suite::Benchmark;

use crate::runner::{CellFailure, GridCell};
use crate::{journal, RunOptions};

/// A snapshot of one job's journalled lifecycle counters: how many grid
/// points this process run scheduled, and how many reached each
/// terminal state so far. `completed + failed + interrupted` catches up
/// to `scheduled` as the job drains.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Progress {
    /// Points journalled as scheduled.
    pub scheduled: u64,
    /// Points that completed OK.
    pub completed: u64,
    /// Points that failed terminally.
    pub failed: u64,
    /// Points drained by a shutdown or cancellation.
    pub interrupted: u64,
}

/// The per-job handle over the store layer. Holding one does not imply
/// a journal is attached — journalling activates only when a result
/// directory is configured, exactly as before.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunStore {
    job: u64,
}

impl RunStore {
    /// The handle for `job` (`0` = the CLI's ambient job).
    pub fn for_job(job: u64) -> Self {
        RunStore { job }
    }

    /// The job this handle addresses.
    pub fn job(&self) -> u64 {
        self.job
    }

    /// Opens (or, with `resume`, replays) the journal for `run_key`
    /// under `dir` and attaches it to this job. See
    /// [`journal::activate_job`].
    ///
    /// # Errors
    ///
    /// [`SpecfetchError::Io`] when the directory or file cannot be
    /// created; [`SpecfetchError::InvalidSpec`] for interior
    /// corruption, a bad header, or a double activation.
    pub fn attach_journal(
        &self,
        dir: &Path,
        run_key: u64,
        resume: bool,
    ) -> Result<PathBuf, SpecfetchError> {
        journal::activate_job(self.job, dir, run_key, resume)
    }

    /// This job's journalled progress so far, or `None` when no journal
    /// is attached (progress is a journal-derived quantity).
    pub fn progress(&self) -> Option<Progress> {
        journal::counters(self.job).map(|(scheduled, completed, failed, interrupted)| Progress {
            scheduled,
            completed,
            failed,
            interrupted,
        })
    }

    /// Flushes and detaches this job's journal (controller cleanup once
    /// the job reaches a terminal state). A no-op when none is attached.
    pub fn detach(&self) {
        journal::release(self.job);
    }
}

/// Resolves a grid point from the layers that already hold its outcome:
/// the process-wide memo first, then the on-disk result store (a disk
/// hit back-fills the memo so the next lookup is RAM-only). A stored
/// *negative* entry (terminal failure) resolves to its replayed
/// `Err(CellFailure)` unless `--retry-failed` opts back into
/// recomputing. `None` means the point must actually simulate.
pub(crate) fn resolve_stored(
    bench: &Benchmark,
    instrs: u64,
    cfg: SimConfig,
    opts: &RunOptions,
) -> Option<GridCell> {
    if !opts.use_memo() {
        return None;
    }
    if let Some(r) = crate::trace_cache::cached_result(bench, instrs, cfg) {
        return Some(Ok(r));
    }
    if opts.result_store {
        match crate::result_store::get(bench.name, instrs, &cfg) {
            Some(crate::result_store::StoredOutcome::Completed(r)) => {
                crate::trace_cache::store_result(bench, instrs, cfg, r.clone());
                return Some(Ok(r));
            }
            Some(crate::result_store::StoredOutcome::Failed(reason)) if !opts.retry_failed => {
                return Some(Err(CellFailure::from_replay(reason)));
            }
            _ => {}
        }
    }
    None
}

/// Persists a freshly simulated result to the on-disk store (no-op when
/// the store is unconfigured or disabled).
pub(crate) fn persist(
    bench: &Benchmark,
    instrs: u64,
    cfg: SimConfig,
    r: &SimResult,
    opts: &RunOptions,
) {
    if opts.use_memo() && opts.result_store {
        crate::result_store::put(bench.name, instrs, &cfg, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_snapshots_track_the_attached_journal() {
        let dir =
            std::env::temp_dir().join(format!("specfetch-runstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Id chosen to stay clear of other tests: journals are
        // process-wide.
        let store = RunStore::for_job(0xDEAD_3001);
        assert_eq!(store.job(), 0xDEAD_3001);
        assert_eq!(store.progress(), None, "no journal attached yet");

        store.attach_journal(&dir, 42, false).unwrap();
        journal::begin_experiment(store.job(), "sweep");
        journal::record_scheduled(store.job(), 0, "li", 100, 0xaa);
        journal::record_scheduled(store.job(), 1, "gcc", 100, 0xab);
        journal::record_completed(store.job(), 0);
        journal::record_failed(store.job(), 1, 2, "injected err");
        assert_eq!(
            store.progress(),
            Some(Progress { scheduled: 2, completed: 1, failed: 1, interrupted: 0 })
        );

        store.detach();
        assert_eq!(store.progress(), None, "detached jobs report no progress");
        store.detach(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }
}
