//! Model-conformance property tests (DESIGN §5l): randomized walks of
//! `verify::SweepMachine` driven through the *real* journal API,
//! asserting production agrees with the model fold exactly — the
//! Progress counters, and the resume classification of every point.
//!
//! This lives as a `#[cfg(test)]` module (not an integration test)
//! because it exercises the crate-internal `record_*` surface the
//! runner uses, which is deliberately not public.

use std::path::PathBuf;

use specfetch_core::fnv1a;
use specfetch_verify::{
    point_step, random_walk, replay_of, replay_step, Counters, PointEvent, PointState, ReplayClass,
    Step, SweepEvent, SweepMachine, MODEL_POINTS,
};

use crate::journal::{self, Replayed};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("specfetch-conformance-{tag}-{}", std::process::id()))
}

/// Drives one model walk through the real journal and checks the
/// production counters and resume replay against the model. `job` must
/// be unique per concurrent call — the journal registry is global.
fn drive_walk(tag: &str, job: u64, seed: u64, max_len: usize) {
    let dir = scratch(&format!("{tag}-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let key = journal::run_key("conformance", seed);
    journal::activate_job(job, &dir, key, false).expect("activate");
    journal::begin_experiment(job, "conf");

    let walk = random_walk(&SweepMachine, seed, max_len);
    let mut model = [PointState::Unscheduled; MODEL_POINTS];
    let mut counters = Counters::default();
    // Real (unsaturated) attempt counts, as the runner would pass them.
    let mut attempts = [0u32; MODEL_POINTS];
    for ev in &walk {
        // Shutdown is a runner-side latch, not a journalled event.
        let SweepEvent::Point { idx, event } = ev else { continue };
        match point_step(&model[*idx], event) {
            Step::Next(next) => model[*idx] = next,
            other => panic!("seed {seed}: walk emitted non-advancing {event:?} ({other:?})"),
        }
        counters.apply(event);
        match event {
            PointEvent::Schedule => journal::record_scheduled(job, *idx as u64, "li", 1_000, 0xab),
            PointEvent::Attempt => {
                journal::record_attempt(job, *idx as u64, attempts[*idx]);
                attempts[*idx] += 1;
            }
            PointEvent::Complete => journal::record_completed(job, *idx as u64),
            PointEvent::Fail => {
                journal::record_failed(job, *idx as u64, attempts[*idx], "FAILED(model)");
            }
            PointEvent::Interrupt => journal::record_interrupted(job, *idx as u64),
        }
    }
    assert_eq!(
        journal::counters(job),
        Some((counters.scheduled, counters.completed, counters.failed, counters.interrupted)),
        "seed {seed}: production Progress counters diverged from the model fold"
    );
    journal::release(job);

    // Resume the journal and check every point's replay classification
    // against `replay_of` over the model's final state.
    journal::activate_job(job, &dir, key, true).expect("resume");
    journal::begin_experiment(job, "conf");
    for (idx, state) in model.iter().enumerate() {
        let expected = match replay_of(*state) {
            Some(ReplayClass::Completed) => Some(Replayed::Completed),
            Some(ReplayClass::Failed) => Some(Replayed::Failed {
                attempts: attempts[idx],
                reason: "FAILED(model)".to_owned(),
            }),
            // Pending points (and never-journalled ones) must rerun: the
            // resume API reports nothing for them.
            Some(ReplayClass::Pending) | None => None,
        };
        assert_eq!(journal::replayed(job, idx as u64), expected, "seed {seed} point {idx}");
    }
    journal::release(job);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn random_model_walks_conform_through_the_real_journal() {
    for seed in 0..32 {
        drive_walk("walk", 0xC0DE_0000 + seed, seed, 64);
    }
}

/// The long-run sweep: `cargo test -p specfetch-experiments -- --ignored`.
#[test]
#[ignore = "long-run property sweep; run explicitly with --ignored"]
fn random_model_walks_conform_long_run() {
    for seed in 0..512 {
        drive_walk("long", 0xC0DE_8000 + seed, seed, 128);
    }
}

/// Every crash-reachable WAL prefix must resume consistently: the
/// journal's replay of a truncated file must match the model's lenient
/// `replay_step` fold over exactly the complete lines that survive the
/// cut. Cuts shorter than the header are rejected loudly (no valid
/// header), never mis-replayed.
#[test]
fn truncated_journal_prefixes_replay_like_the_model_fold() {
    // Write one full walk's WAL, then cut it everywhere interesting.
    let seed = 7u64;
    let dir = scratch("trunc-src");
    let _ = std::fs::remove_dir_all(&dir);
    let key = journal::run_key("conformance-trunc", seed);
    let job = 0xC0DE_F000;
    journal::activate_job(job, &dir, key, false).expect("activate");
    journal::begin_experiment(job, "conf");
    let mut attempts = [0u32; MODEL_POINTS];
    for ev in &random_walk(&SweepMachine, seed, 64) {
        let SweepEvent::Point { idx, event } = ev else { continue };
        match event {
            PointEvent::Schedule => journal::record_scheduled(job, *idx as u64, "li", 1_000, 0xab),
            PointEvent::Attempt => {
                journal::record_attempt(job, *idx as u64, attempts[*idx]);
                attempts[*idx] += 1;
            }
            PointEvent::Complete => journal::record_completed(job, *idx as u64),
            PointEvent::Fail => {
                journal::record_failed(job, *idx as u64, attempts[*idx], "FAILED(model)");
            }
            PointEvent::Interrupt => journal::record_interrupted(job, *idx as u64),
        }
    }
    journal::release(job);
    let wal = std::fs::read(journal::path_for(&dir, key)).expect("read journal");
    let header_len = wal.iter().position(|&b| b == b'\n').expect("header line") + 1;
    assert!(wal.len() > header_len, "walk journalled no events");

    // Cut at every line boundary and three bytes into every line (a
    // torn write). For each prefix, resume a fresh copy and compare
    // against a model fold of the complete lines the cut preserves.
    let mut cuts = vec![header_len - 3];
    for (i, &b) in wal.iter().enumerate() {
        if b == b'\n' {
            cuts.push(i + 1);
            if i + 4 < wal.len() {
                cuts.push(i + 4);
            }
        }
    }
    for (case, &cut) in cuts.iter().enumerate() {
        let cdir = scratch(&format!("trunc-{case}"));
        let _ = std::fs::remove_dir_all(&cdir);
        let cpath = journal::path_for(&cdir, key);
        std::fs::create_dir_all(cpath.parent().expect("journal parent")).expect("mkdir");
        std::fs::write(&cpath, &wal[..cut]).expect("write prefix");

        let cjob = 0xC0DE_F100 + case as u64;
        let activated = journal::activate_job(cjob, &cdir, key, true);
        if cut < header_len {
            // The header itself is torn: the whole file is dropped as a
            // torn tail and the resume reports a missing header.
            assert!(activated.is_err(), "cut {cut}: torn header must be rejected");
            let _ = std::fs::remove_dir_all(&cdir);
            continue;
        }
        activated.expect("torn-tail resume is total past the header");
        journal::begin_experiment(cjob, "conf");

        // The reference fold: complete lines only, checksums verified,
        // dispatched through the model's lenient reader transition.
        let mut model = [PointState::Unscheduled; MODEL_POINTS];
        let mut last_fail: [Option<(u32, String)>; MODEL_POINTS] = [None, None, None];
        let text = String::from_utf8(wal[..cut].to_vec()).expect("utf8 prefix");
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break; // torn tail: the event never happened
            }
            let payload = line.trim_end();
            let (body, sum) = payload.rsplit_once('|').expect("sealed line");
            assert_eq!(format!("{:016x}", fnv1a(body.as_bytes())), sum, "checksum");
            let mut parts = body.splitn(5, ' ');
            let Some(event) = specfetch_verify::parse_tag(parts.next().expect("tag")) else {
                continue; // the header line
            };
            assert_eq!(parts.next(), Some("conf"));
            let idx: usize = parts.next().expect("idx").parse().expect("idx number");
            if event == PointEvent::Fail {
                let n: u32 = parts.next().expect("attempts").parse().expect("attempt count");
                let reason = crate::codec::json_unescape(parts.next().expect("reason"))
                    .expect("escaped reason");
                last_fail[idx] = Some((n, reason));
            }
            model[idx] = replay_step(model[idx], &event);
        }
        for (idx, state) in model.iter().enumerate() {
            let expected = match replay_of(*state) {
                Some(ReplayClass::Completed) => Some(Replayed::Completed),
                Some(ReplayClass::Failed) => {
                    let (n, reason) = last_fail[idx].clone().expect("fail line folded");
                    Some(Replayed::Failed { attempts: n, reason })
                }
                Some(ReplayClass::Pending) | None => None,
            };
            assert_eq!(
                journal::replayed(cjob, idx as u64),
                expected,
                "cut {cut} point {idx}: truncated replay diverged from the model fold"
            );
        }
        journal::release(cjob);
        let _ = std::fs::remove_dir_all(&cdir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
