//! Static program analysis: the `repro --analyze` pass and the cheap
//! pre-simulation preflight.
//!
//! The fetch-policy comparison assumes every generated code image is
//! structurally sound — the speculative policies walk *wrong* paths, so a
//! dangling branch target or a walk that escapes the image would silently
//! skew the very cache statistics the paper measures. This module runs
//! the [`specfetch_isa::verify_cfg`] verifier (through
//! [`Workload::analyze`], which adds the behavioural-annotation checks)
//! over each benchmark's generated program:
//!
//! - [`analyze_benchmark`] / [`analyze_all`] back the `--analyze` CLI
//!   mode and return the full typed [`CfgReport`];
//! - [`preflight`] is the go/no-go gate the runner calls before
//!   simulating a benchmark — its failures carry
//!   [`SpecfetchError::Analysis`] and render as `FAILED(analysis: …)`
//!   cells under the existing per-point isolation.
//!
//! Analysis is memoized per process (one verifier walk per benchmark,
//! ever), so the preflight adds nothing measurable to a sweep.
//!
//! The `--corrupt-target <bench>` hook ([`set_corrupt_target`]) redirects
//! one conditional branch of the named benchmark's image out of the image
//! before analysis, so the failure paths — typed diagnostics, exit codes,
//! `FAILED(analysis: …)` cells — can be exercised end to end without
//! shipping a broken generator.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use specfetch_core::SpecfetchError;
use specfetch_isa::CfgReport;
use specfetch_synth::suite::Benchmark;
use specfetch_synth::Workload;

use crate::{Format, Table};

/// Memoized per-benchmark analysis outcome. [`SpecfetchError`] is not
/// `Clone`, so generation failures are stored as their detail string and
/// re-wrapped on every read.
#[derive(Clone)]
enum Memo {
    Report(CfgReport),
    WorkloadFail(String),
}

fn memo() -> &'static Mutex<HashMap<&'static str, Memo>> {
    static MEMO: OnceLock<Mutex<HashMap<&'static str, Memo>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

static CORRUPT_TARGET: OnceLock<String> = OnceLock::new();

/// Installs the process-wide corruption hook: the named benchmark's
/// image gets one branch target redirected out of the image before
/// analysis. Called once by the CLI (`--corrupt-target`) before anything
/// runs.
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] if `name` is not a benchmark or a
/// target is already installed.
pub fn set_corrupt_target(name: &str) -> Result<(), SpecfetchError> {
    if Benchmark::by_name(name).is_none() {
        return Err(SpecfetchError::InvalidSpec {
            detail: format!("--corrupt-target: unknown benchmark {name:?}"),
        });
    }
    CORRUPT_TARGET.set(name.to_owned()).map_err(|_| SpecfetchError::InvalidSpec {
        detail: "a corrupt target is already installed".to_owned(),
    })
}

fn maybe_corrupt(bench: &Benchmark, workload: Workload) -> Workload {
    if CORRUPT_TARGET.get().is_some_and(|n| n == bench.name) {
        if let Some((corrupted, _, _)) = workload.corrupt_first_branch_target() {
            return corrupted;
        }
    }
    workload
}

fn compute(bench: &Benchmark) -> Memo {
    match bench.workload() {
        Ok(w) => Memo::Report(maybe_corrupt(bench, w).analyze()),
        Err(e) => Memo::WorkloadFail(e.to_string()),
    }
}

/// Statically analyzes one benchmark's generated program, memoized per
/// process.
///
/// The returned report may still contain issues — use
/// [`CfgReport::is_ok`] (or call [`preflight`] for a pass/fail answer).
///
/// # Errors
///
/// [`SpecfetchError::Workload`] if the workload fails to generate at all
/// (there is then no image to analyze).
pub fn analyze_benchmark(bench: &Benchmark) -> Result<CfgReport, SpecfetchError> {
    let mut map = memo().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = map.entry(bench.name).or_insert_with(|| compute(bench)).clone();
    drop(map);
    match entry {
        Memo::Report(r) => Ok(r),
        Memo::WorkloadFail(detail) => {
            Err(SpecfetchError::Workload { bench: bench.name.to_owned(), detail })
        }
    }
}

/// The go/no-go analysis gate the runner fires before simulating a
/// benchmark.
///
/// # Errors
///
/// [`SpecfetchError::Analysis`] (carrying the full typed report) if the
/// image fails verification; [`SpecfetchError::Workload`] if it cannot
/// even be generated.
pub fn preflight(bench: &Benchmark) -> Result<(), SpecfetchError> {
    let report = analyze_benchmark(bench)?;
    if report.is_ok() {
        Ok(())
    } else {
        Err(SpecfetchError::Analysis { bench: bench.name.to_owned(), report })
    }
}

/// Analyzes every benchmark in suite order (the `--analyze` CLI mode).
pub fn analyze_all() -> Vec<(&'static Benchmark, Result<CfgReport, SpecfetchError>)> {
    Benchmark::all().iter().map(|b| (b, analyze_benchmark(b))).collect()
}

/// Renders analysis outcomes as a report table: one row per benchmark,
/// `ok` or `FAILED(...)` in the verdict column (so
/// [`Table::failed_cells`] counts analysis failures like any other
/// report).
pub fn render_analysis(
    results: &[(&'static Benchmark, Result<CfgReport, SpecfetchError>)],
    format: Format,
) -> String {
    let mut t = Table::new(["bench", "instrs", "reachable", "conds", "wp-visited", "verdict"]);
    for (bench, outcome) in results {
        match outcome {
            Ok(r) => t.row([
                bench.name.to_owned(),
                r.instrs.to_string(),
                r.reachable.to_string(),
                r.conditionals.to_string(),
                r.wrong_path_visited.to_string(),
                if r.is_ok() { "ok".to_owned() } else { format!("FAILED({})", r.headline()) },
            ]),
            Err(e) => t.row([
                bench.name.to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
                format!("FAILED({})", e.cell_reason()),
            ]),
        }
    }
    t.render(format)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_preflights_clean() {
        for b in Benchmark::all() {
            assert!(preflight(b).is_ok(), "{} failed preflight", b.name);
        }
    }

    #[test]
    fn analysis_is_memoized() {
        let b = Benchmark::by_name("li").unwrap();
        let a = analyze_benchmark(b).unwrap();
        let c = analyze_benchmark(b).unwrap();
        assert_eq!(a, c);
        assert!(memo().lock().unwrap_or_else(PoisonError::into_inner).contains_key("li"));
    }

    #[test]
    fn render_covers_all_rows_and_counts_no_failures_on_clean_tree() {
        let results = analyze_all();
        assert_eq!(results.len(), 13);
        let text = render_analysis(&results, Format::Plain);
        for b in Benchmark::all() {
            assert!(text.contains(b.name), "missing row for {}", b.name);
        }
        assert!(!text.contains("FAILED"), "clean tree rendered a failure:\n{text}");
    }

    #[test]
    fn corrupt_report_renders_as_failed_cell() {
        // Build the failure rendering without touching the process-wide
        // corruption hook (other tests in this binary rely on clean
        // preflights).
        let b = Benchmark::by_name("li").unwrap();
        let w = b.workload().unwrap();
        let (corrupted, _, _) = w.corrupt_first_branch_target().unwrap();
        let report = corrupted.analyze();
        assert!(!report.is_ok());
        let rendered = render_analysis(&[(b, Ok(report.clone()))], Format::Plain);
        assert!(rendered.contains("FAILED(transfer at"), "{rendered}");
        let err = SpecfetchError::Analysis { bench: b.name.to_owned(), report };
        assert!(err.cell_reason().starts_with("analysis: "), "{}", err.cell_reason());
    }

    #[test]
    fn set_corrupt_target_rejects_unknown_benchmarks() {
        let e = set_corrupt_target("nonesuch").unwrap_err();
        assert!(matches!(e, SpecfetchError::InvalidSpec { .. }));
        assert!(e.to_string().contains("nonesuch"));
    }
}
