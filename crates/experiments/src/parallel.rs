//! A tiny scoped-thread parallel map (no external dependencies).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use specfetch_core::SpecfetchError;

/// A claimable unit of work: the starting output index plus the items,
/// moved out exactly once by whichever worker wins the cursor.
type Chunk<T> = Mutex<Option<(usize, Vec<T>)>>;

/// Maps `f` over `items` on up to `available_parallelism` worker threads,
/// preserving order. Falls back to sequential mapping when `parallel` is
/// false or only one CPU is available.
///
/// Work distribution is chunked work-stealing: the items are cut into more
/// chunks than workers, and idle workers claim the next chunk through a
/// single atomic cursor — there is no per-item lock, and a slow item only
/// delays its own chunk. Results flow back through per-worker buffers, so
/// workers never contend on shared output state.
///
/// # Panics
///
/// If `f` panics on any item, the panic is re-raised on the calling thread
/// (after the remaining workers drain) rather than deadlocking or
/// poisoning shared state.
///
/// # Examples
///
/// ```
/// let squares = specfetch_experiments::par_map(vec![1, 2, 3, 4], true, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, parallel: bool, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        1
    };
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = workers.min(n);

    // More chunks than workers, so the tail of the run load-balances: a
    // worker stuck on an expensive item doesn't strand a static share of
    // the remaining work behind it.
    let chunk_len = (n / (workers * 4)).max(1);
    let mut chunks: Vec<Chunk<T>> = Vec::new();
    {
        let mut items = items.into_iter();
        let mut base = 0;
        loop {
            let c: Vec<T> = items.by_ref().take(chunk_len).collect();
            if c.is_empty() {
                break;
            }
            base += c.len();
            chunks.push(Mutex::new(Some((base - c.len(), c))));
        }
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        let (cursor, chunks, f) = (&cursor, &chunks, &f);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = chunks.get(ci) else { break };
                        // Uncontended: the cursor hands each chunk to
                        // exactly one worker; the mutex only moves
                        // ownership out (and is released before `f` runs).
                        // A poisoned lock means a claimant panicked mid-take
                        // — the chunk state is still a plain Option, so
                        // recover it rather than propagate the poison.
                        let Some((base, chunk)) =
                            slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
                        else {
                            continue;
                        };
                        for (off, item) in chunk.into_iter().enumerate() {
                            local.push((base + off, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();

        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (idx, r) in local {
                        slots[idx] = Some(r);
                    }
                }
                Err(payload) => panicked = Some(payload),
            }
        }
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // The cursor hands out every chunk exactly once and all
            // workers have joined, so every slot holds a result.
            None => unreachable!("worker filled every slot"),
        })
        .collect()
}

/// Renders a captured panic payload as text.
///
/// Panic payloads are `&str` or `String` in practice (`panic!` with a
/// message); anything else gets a placeholder rather than being dropped.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Like [`par_map`], but captures a per-item panic as that item's error
/// instead of re-raising it: one poisoned item yields one `Err` slot
/// (a [`SpecfetchError::PointPanic`] carrying the rendered panic
/// message) while every other item still maps to `Ok`.
///
/// This is the isolation primitive the experiment grid is built on — a
/// single panicking grid point must cost one flagged cell, not the whole
/// `--experiment all` run.
///
/// # Examples
///
/// ```
/// use specfetch_experiments::SpecfetchError;
///
/// let out = specfetch_experiments::try_par_map(vec![1, 2, 3], true, |x| {
///     assert!(x != 2, "boom");
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert!(matches!(&out[1], Err(SpecfetchError::PointPanic { reason }) if reason == "boom"));
/// assert_eq!(out[2].as_ref().unwrap(), &30);
/// ```
pub fn try_par_map<T, R, F>(items: Vec<T>, parallel: bool, f: F) -> Vec<Result<R, SpecfetchError>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // `AssertUnwindSafe` is sound here: `f` is `Fn` over owned items, and
    // the shared caches it may touch recover from poisoning (see
    // `trace_cache::lock_recovering`), so observing post-panic state is
    // safe.
    par_map(items, parallel, |item| {
        panic::catch_unwind(AssertUnwindSafe(|| f(item)))
            .map_err(|p| SpecfetchError::PointPanic { reason: panic_message(p.as_ref()) })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), true, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_under_uneven_load() {
        let out = par_map((0..64).collect(), true, |x: u64| {
            // Early items are the slow ones, inverting completion order.
            if x < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_mode_matches() {
        let a = par_map(vec!["a", "bb", "ccc"], false, |s| s.len());
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(par_map(Vec::<i32>::new(), true, |x| x), Vec::<i32>::new());
        assert_eq!(par_map(vec![7], true, |x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_isolates_panics_per_item() {
        let out = try_par_map((0..32).collect(), true, |x: i32| {
            if x == 13 {
                panic!("boom on {x}");
            }
            x * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 13 {
                assert!(
                    matches!(r, Err(SpecfetchError::PointPanic { reason }) if reason == "boom on 13"),
                    "unexpected error for item 13: {r:?}"
                );
            } else {
                assert_eq!(
                    r.as_ref().unwrap(),
                    &(i as i32 * 2),
                    "item {i} lost to a neighbour's panic"
                );
            }
        }
    }

    #[test]
    fn try_par_map_sequential_mode_isolates_too() {
        let out = try_par_map(vec![1, 2], false, |x: i32| {
            assert!(x != 2, "late boom");
            x
        });
        assert_eq!(out[0].as_ref().unwrap(), &1);
        assert!(
            matches!(&out[1], Err(SpecfetchError::PointPanic { reason }) if reason == "late boom"),
            "unexpected error: {:?}",
            out[1]
        );
    }

    #[test]
    fn panic_message_renders_str_and_string() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(p.as_ref()), "static");
        let p: Box<dyn std::any::Any + Send> = Box::new("owned".to_owned());
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map((0..32).collect(), true, |x: i32| {
                assert!(x != 13, "boom on 13");
                x
            })
        });
        let payload = caught.expect_err("the item panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload should be a message");
        assert!(msg.contains("boom on 13"), "unexpected payload: {msg}");
    }
}
