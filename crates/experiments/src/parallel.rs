//! A tiny scoped-thread parallel map (no external dependencies).

/// Maps `f` over `items` on up to `available_parallelism` worker threads,
/// preserving order. Falls back to sequential mapping when `parallel` is
/// false or only one CPU is available.
///
/// # Examples
///
/// ```
/// let squares = specfetch_experiments::par_map(vec![1, 2, 3, 4], true, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, parallel: bool, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        1
    };
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue lock").pop();
                let Some((idx, item)) = item else { break };
                let r = f(item);
                results.lock().expect("results lock")[idx] = Some(r);
            });
        }
    });

    slots.into_iter().map(|s| s.expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), true, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_mode_matches() {
        let a = par_map(vec!["a", "bb", "ccc"], false, |s| s.len());
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(par_map(Vec::<i32>::new(), true, |x| x), Vec::<i32>::new());
        assert_eq!(par_map(vec![7], true, |x| x + 1), vec![8]);
    }
}
