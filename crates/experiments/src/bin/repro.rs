//! `specfetch-repro`: regenerate the paper's tables and figures.
//!
//! ```text
//! specfetch-repro [--experiment <id>|all] [--instrs N] [--format plain|markdown|csv]
//!                 [--sequential] [--no-trace-cache] [--no-predict-cache] [--list]
//! ```

use std::process::ExitCode;

use specfetch_experiments::{
    run_experiment, Format, RunOptions, EXPERIMENT_IDS, EXTRA_EXPERIMENT_IDS,
};

struct Args {
    experiment: String,
    format: Format,
    opts: RunOptions,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = "all".to_owned();
    let mut format = Format::Plain;
    let mut opts = RunOptions::new();
    let mut list = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = it.next().ok_or("--experiment needs a value")?;
            }
            "--instrs" | "-n" => {
                let v = it.next().ok_or("--instrs needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --instrs value {v:?}"))?;
                if n == 0 {
                    return Err("--instrs must be positive".into());
                }
                opts = opts.with_instrs(n);
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = Format::parse(&v).ok_or(format!("unknown format {v:?}"))?;
            }
            "--sequential" => opts.parallel = false,
            // Re-interpret the workload per run (the pre-sharing
            // behaviour); output is identical, only slower. Kept for
            // equivalence checks and speedup measurements.
            "--no-trace-cache" => opts.share_traces = false,
            // Replay the shared recording without the pre-decoded
            // overlay or the per-(benchmark, config) result memo; same
            // deal — identical output, kept for equivalence checks and
            // speedup measurements.
            "--no-predict-cache" => opts.predict_cache = false,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "usage: specfetch-repro [--experiment <id>|all] [--instrs N] \
                     [--format plain|markdown|csv] [--sequential] [--no-trace-cache] \
                     [--no-predict-cache] [--list]"
                );
                println!("experiments: all {}", EXPERIMENT_IDS.join(" "));
                println!("extras:      extras {}", EXTRA_EXPERIMENT_IDS.join(" "));
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { experiment, format, opts, list })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for id in EXPERIMENT_IDS.iter().chain(EXTRA_EXPERIMENT_IDS.iter()) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = match args.experiment.as_str() {
        "all" => EXPERIMENT_IDS.to_vec(),
        "extras" => EXTRA_EXPERIMENT_IDS.to_vec(),
        other => vec![other],
    };

    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &args.opts) {
            Ok(report) => {
                println!("{}", report.render(args.format));
                eprintln!("[{id} done in {:.1}s]\n", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
