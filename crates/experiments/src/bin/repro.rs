//! `specfetch-repro`: regenerate the paper's tables and figures, or run
//! a user-defined sweep through the same pipeline.
//!
//! ```text
//! specfetch-repro [--experiment <id>|all] [--sweep <spec>] [--instrs N]
//!                 [--format plain|markdown|csv] [--sequential] [--no-trace-cache]
//!                 [--no-predict-cache] [--no-lockstep] [--trace-dir <dir>]
//!                 [--result-dir <dir>] [--no-result-store] [--workers N]
//!                 [--stream] [--overlay-min N] [--inject <spec>] [--list]
//! ```
//!
//! A sweep spec is whitespace-separated `axis=value[,value...]` terms,
//! e.g. `--sweep 'policy=Res,Pess cache=8K,32K penalty=5,20 metric=ispi'`.
//!
//! Exit codes: `0` success, `1` one or more grid points or experiments
//! failed (everything else still ran and rendered), `2` usage error
//! (rejected before any experiment runs).

use std::process::ExitCode;

use specfetch_experiments::fault::FaultPlan;
use specfetch_experiments::sweep::AXES;
use specfetch_experiments::{
    analysis, disk_cache, fault, is_known_experiment, parse_sweep, result_store, run_experiment,
    run_scenario, worker, Format, RunOptions, EXPERIMENT_IDS, EXTRA_EXPERIMENT_IDS,
};
use specfetch_synth::suite::Benchmark;

/// Usage problems abort before any experiment runs.
const EXIT_USAGE: u8 = 2;

struct Args {
    experiment: String,
    sweep: Option<String>,
    format: Format,
    opts: RunOptions,
    list: bool,
    analyze: bool,
    benchmark: Option<String>,
    worker: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment: Option<String> = None;
    let mut sweep: Option<String> = None;
    let mut format = Format::Plain;
    let mut opts = RunOptions::new();
    let mut list = false;
    let mut analyze = false;
    let mut benchmark: Option<String> = None;
    let mut worker = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = Some(it.next().ok_or("--experiment needs a value")?);
            }
            "--sweep" | "-s" => {
                sweep = Some(it.next().ok_or("--sweep needs a spec")?);
            }
            "--instrs" | "-n" => {
                let v = it.next().ok_or("--instrs needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --instrs value {v:?}"))?;
                if n == 0 {
                    return Err("--instrs must be positive".into());
                }
                opts = opts.with_instrs(n);
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = Format::parse(&v).ok_or(format!("unknown format {v:?}"))?;
            }
            "--sequential" => opts.parallel = false,
            // Re-interpret the workload per run (the pre-sharing
            // behaviour); output is identical, only slower. Kept for
            // equivalence checks and speedup measurements.
            "--no-trace-cache" => opts.share_traces = false,
            // Replay the shared recording without the pre-decoded
            // overlay or the per-(benchmark, config) result memo; same
            // deal — identical output, kept for equivalence checks and
            // speedup measurements.
            "--no-predict-cache" => opts.predict_cache = false,
            // Replay each grid point sequentially instead of advancing
            // the whole configuration batch in lockstep over one trace
            // pass; same deal — identical output, kept for equivalence
            // checks and speedup measurements.
            "--no-lockstep" => opts.lockstep = false,
            "--trace-dir" => {
                let v = it.next().ok_or("--trace-dir needs a value")?;
                disk_cache::set_dir(v.into()).map_err(|e| e.to_string())?;
            }
            // Persist finished grid-point results across processes (see
            // DESIGN §5i): a second run over the same store renders from
            // disk, and an interrupted sweep resumes where it stopped.
            "--result-dir" => {
                let v = it.next().ok_or("--result-dir needs a value")?;
                result_store::set_dir(v.into()).map_err(|e| e.to_string())?;
            }
            // Ignore a configured result store: recompute every point
            // and write nothing (byte-identical output).
            "--no-result-store" => opts.result_store = false,
            // Shard grid execution across N child worker processes.
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --workers value {v:?}"))?;
                opts = opts.with_workers(n);
            }
            // Child-process protocol mode (spawned by --workers; not for
            // interactive use).
            "--worker" => worker = true,
            // Print one [row] line to stderr per grid point as it
            // finishes; stdout is unchanged.
            "--stream" => opts = opts.with_stream(true),
            // Smallest window worth pre-decoding into the overlay
            // (advanced; see RunOptions::overlay_min_instrs).
            "--overlay-min" => {
                let v = it.next().ok_or("--overlay-min needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --overlay-min value {v:?}"))?;
                opts = opts.with_overlay_min(n);
            }
            // Deterministic fault injection, e.g.
            //   --inject point=table3:2,panic
            //   --inject 'point=table4:1,err;chaos=50@7,panic'
            "--inject" => {
                let v = it.next().ok_or("--inject needs a value")?;
                let plan = FaultPlan::parse(&v).map_err(|e| e.to_string())?;
                fault::install(plan).map_err(|e| e.to_string())?;
            }
            // Static CFG analysis of the generated programs, no
            // simulation: exit 0 when every image verifies clean, 1 with
            // typed diagnostics otherwise.
            "--analyze" => analyze = true,
            "--benchmark" | "-b" => {
                benchmark = Some(it.next().ok_or("--benchmark needs a name")?);
            }
            // Deliberately corrupt one branch target of the named
            // benchmark's image before analysis — exercises the failure
            // paths (typed diagnostics, FAILED(analysis: ...) cells) end
            // to end.
            "--corrupt-target" => {
                let v = it.next().ok_or("--corrupt-target needs a benchmark name")?;
                analysis::set_corrupt_target(&v).map_err(|e| e.to_string())?;
            }
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "usage: specfetch-repro [--experiment <id>|all] [--sweep <spec>] \
                     [--analyze [--benchmark <name>]] [--instrs N] \
                     [--format plain|markdown|csv] [--sequential] \
                     [--no-trace-cache] [--no-predict-cache] [--no-lockstep] \
                     [--trace-dir <dir>] [--result-dir <dir>] [--no-result-store] \
                     [--workers N] [--stream] [--overlay-min N] \
                     [--inject <spec>] [--corrupt-target <name>] [--list]"
                );
                println!("experiments: all {}", EXPERIMENT_IDS.join(" "));
                println!("extras:      extras {}", EXTRA_EXPERIMENT_IDS.join(" "));
                println!(
                    "sweep spec:  whitespace-separated axis=value[,value...] terms; the \
                     configuration axes cross-multiply"
                );
                for (name, values) in AXES {
                    println!("  {name:<10} {values}");
                }
                println!("  {:<10} projection: ispi, miss, traffic, cycles, ipc", "metric");
                println!(
                    "inject spec: point=<experiment>:<n>,<panic|err|slow|abort> or \
                     chaos=<permille>@<seed>,<action>; ';'-separated"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if sweep.is_some() && experiment.is_some() {
        return Err("--sweep and --experiment are mutually exclusive".into());
    }
    if analyze && (sweep.is_some() || experiment.is_some()) {
        return Err("--analyze and --experiment/--sweep are mutually exclusive".into());
    }
    if let Some(name) = &benchmark {
        if !analyze {
            return Err("--benchmark only applies to --analyze".into());
        }
        if Benchmark::by_name(name).is_none() {
            let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name).collect();
            return Err(format!("unknown benchmark {name:?} (valid names: {})", names.join(" ")));
        }
    }
    if worker && (sweep.is_some() || experiment.is_some() || analyze || list) {
        return Err("--worker is a child-process mode and takes no experiment selection".into());
    }
    Ok(Args {
        experiment: experiment.unwrap_or_else(|| "all".to_owned()),
        sweep,
        format,
        opts,
        list,
        analyze,
        benchmark,
        worker,
    })
}

/// Prints the result-store hit/store counters once per process (stderr),
/// so resume tests — and humans — can see how much work the store saved.
fn report_store_stats() {
    if result_store::dir().is_some() {
        let (hits, stores) = result_store::stats();
        eprintln!("[result-store] hits={hits} stores={stores}");
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    // Worker protocol mode: serve grid groups over stdin/stdout until
    // the parent closes the pipe. Never prints reports.
    if args.worker {
        return worker::child_loop(args.opts);
    }

    if args.list {
        for id in EXPERIMENT_IDS.iter().chain(EXTRA_EXPERIMENT_IDS.iter()) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // Static analysis mode: verify the generated images and print one
    // row per benchmark — no simulation runs at all.
    if args.analyze {
        let results = match args.benchmark.as_deref().and_then(Benchmark::by_name) {
            Some(b) => vec![(b, analysis::analyze_benchmark(b))],
            None => analysis::analyze_all(),
        };
        println!("{}", analysis::render_analysis(&results, args.format));
        let mut failed = 0usize;
        for (b, outcome) in &results {
            match outcome {
                Ok(r) if r.is_ok() => {}
                Ok(r) => {
                    failed += 1;
                    for issue in r.issues.iter().take(8) {
                        eprintln!("error: {}: {issue}", b.name);
                    }
                    if r.issues.len() > 8 {
                        eprintln!("error: {}: ... and {} more", b.name, r.issues.len() - 8);
                    }
                }
                Err(e) => {
                    failed += 1;
                    eprintln!("error: {e}");
                }
            }
        }
        if failed > 0 {
            eprintln!("specfetch-repro: {failed} benchmark(s) failed static analysis");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // A user-defined sweep runs through the same scenario pipeline as
    // the paper experiments: shared trace cache, result memo, per-point
    // fault isolation, and the same `--inject point=sweep:N` numbering.
    if let Some(spec) = &args.sweep {
        let scenario = match parse_sweep(spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        fault::begin_experiment("sweep");
        let started = std::time::Instant::now();
        let report = run_scenario(scenario, &args.opts).render();
        let failed_cells = report.failed_cells();
        println!("{}", report.render(args.format));
        eprintln!("[sweep done in {:.1}s]\n", started.elapsed().as_secs_f64());
        report_store_stats();
        if failed_cells > 0 {
            eprintln!("specfetch-repro: {failed_cells} failed cell(s), 0 failed experiment(s)");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = match args.experiment.as_str() {
        "all" => EXPERIMENT_IDS.to_vec(),
        "extras" => EXTRA_EXPERIMENT_IDS.to_vec(),
        other => vec![other],
    };

    // Reject unknown ids up front — a typo should fail fast, not after
    // an hour of simulation.
    if let Some(bad) = ids.iter().find(|id| !is_known_experiment(id)) {
        eprintln!("error: unknown experiment {bad:?}");
        eprintln!("valid ids: all extras {}", EXPERIMENT_IDS.join(" "));
        eprintln!("           {}", EXTRA_EXPERIMENT_IDS.join(" "));
        return ExitCode::from(EXIT_USAGE);
    }

    // Failures no longer stop the run: every experiment executes, failed
    // grid points render as FAILED(...) cells, and the exit code
    // summarises at the end.
    let mut failed_cells = 0usize;
    let mut failed_experiments = 0usize;
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &args.opts) {
            Ok(report) => {
                failed_cells += report.failed_cells();
                println!("{}", report.render(args.format));
                eprintln!("[{id} done in {:.1}s]\n", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                failed_experiments += 1;
                eprintln!("error: {e}");
                eprintln!("[{id} FAILED in {:.1}s]\n", started.elapsed().as_secs_f64());
            }
        }
    }
    report_store_stats();
    if failed_cells > 0 || failed_experiments > 0 {
        eprintln!(
            "specfetch-repro: {failed_cells} failed cell(s), \
             {failed_experiments} failed experiment(s)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
