//! Deterministic fault injection for the experiment runner.
//!
//! The reproduction is a long unattended sweep; its failure handling is
//! only trustworthy if every recovery path can be exercised on demand.
//! This module injects faults at named grid points so tests and CI can
//! prove that one poisoned point costs one `FAILED(...)` cell — never
//! the run — and that the supervision layer (DESIGN §5j) turns
//! *transient* faults into retries instead of failures.
//!
//! # Grammar
//!
//! `--inject` takes one or more `;`-separated specs:
//!
//! ```text
//! point=<experiment>:<n>,<action>   fire at the n-th grid point (0-based,
//!                                   input order) of <experiment>
//! chaos=<permille>@<seed>,<action>  fire at each grid point with
//!                                   probability permille/1000, decided by
//!                                   a seeded hash of (experiment, point)
//! soak=<permille>@<seed>            chaos-soak: hang or kill the process
//!                                   executing each selected point (first
//!                                   attempt only), decided by a seeded
//!                                   hash — the supervisor must retry its
//!                                   way to a byte-identical table
//! ```
//!
//! where `<action>` is one of:
//!
//! - `panic` — panic inside the grid point (exercises the capture path);
//! - `err` — return a typed [`SpecfetchError::Injected`] error
//!   (transient: the supervisor retries it when `--retries` is set);
//! - `slow` — sleep [`SLOW_MILLIS`] before simulating (the point still
//!   succeeds; exercises scheduling under stragglers);
//! - `abort` — kill the **process** executing the point with
//!   [`std::process::abort`]. In-process this crashes the run (it is a
//!   crash-test primitive, not an isolation test); under `--workers N`
//!   the parent forwards it to the child handling the point, exercising
//!   worker-death recovery;
//! - `hang` — wedge the point: under `--workers` the child freezes
//!   (heartbeats stop, the parent's heartbeat window / `--point-timeout`
//!   deadline kills it); in-process the point spins cooperatively until
//!   the deadline or a shutdown request;
//! - `exitcode=<n>` — exit the process executing the point with status
//!   `n` (clean-death variant of `abort`).
//!
//! Any action may carry an **attempt limit** suffix `*<k>`: the fault
//! fires only on attempts `0..k` of the point. `hang*1` therefore hangs
//! the first attempt and lets the `--retries` rerun succeed — the
//! supervision acceptance test.
//!
//! # Determinism
//!
//! Grid points are numbered in **input order** as each experiment
//! enqueues them — the numbering is assigned before any worker runs, so
//! it is independent of thread scheduling. `chaos`/`soak` decisions hash
//! `(seed, experiment, point)`: the same seed always fails the same
//! cells, on any machine, at any parallelism.
//!
//! The plan is installed once per process ([`install`], called by the
//! `specfetch-repro` CLI); with no plan installed, the per-point check is
//! a single relaxed atomic-free `OnceLock` read.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use specfetch_core::SpecfetchError;

use crate::supervise;

/// How long an injected `slow` fault stalls a grid point.
pub const SLOW_MILLIS: u64 = 250;

/// How often a cooperatively hung in-process point re-checks its
/// deadline and the shutdown flag.
const HANG_POLL_MILLIS: u64 = 10;

/// The exit status a `soak`-selected kill uses (distinct from real
/// failure codes so logs attribute the death to the harness).
pub const SOAK_EXIT_CODE: u8 = 17;

/// What an injected fault does to its grid point.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Panic inside the point (captured and rendered `FAILED(injected
    /// panic)`).
    Panic,
    /// Return a typed error (rendered `FAILED(injected err)`; transient,
    /// so `--retries` re-runs it).
    Err,
    /// Sleep [`SLOW_MILLIS`] and then run normally.
    Slow,
    /// Abort the process executing the point (worker-death testing).
    Abort,
    /// Wedge the point: freeze the worker child (or spin cooperatively
    /// in-process) until a deadline or shutdown unwedges it.
    Hang,
    /// Exit the process executing the point with this status.
    Exit(u8),
}

impl FaultAction {
    fn parse(s: &str) -> Result<FaultAction, SpecfetchError> {
        if let Some(code) = s.strip_prefix("exitcode=") {
            let code = code
                .parse()
                .map_err(|_| bad_spec(format!("bad exitcode {code:?} (expected 0-255)")))?;
            return Ok(FaultAction::Exit(code));
        }
        match s {
            "panic" => Ok(FaultAction::Panic),
            "err" => Ok(FaultAction::Err),
            "slow" => Ok(FaultAction::Slow),
            "abort" => Ok(FaultAction::Abort),
            "hang" => Ok(FaultAction::Hang),
            other => Err(bad_spec(format!(
                "unknown fault action {other:?} (expected panic|err|slow|abort|hang|exitcode=<n>)"
            ))),
        }
    }

    /// Whether this action kills or wedges the **process** running the
    /// point. The worker dispatcher forwards these to the child that
    /// will execute the point instead of firing them in the parent.
    pub(crate) fn is_process_fault(self) -> bool {
        matches!(self, FaultAction::Abort | FaultAction::Hang | FaultAction::Exit(_))
    }

    /// The wire spelling used in the worker protocol's `"fault"` field.
    pub(crate) fn wire_name(self) -> String {
        match self {
            FaultAction::Panic => "panic".to_owned(),
            FaultAction::Err => "err".to_owned(),
            FaultAction::Slow => "slow".to_owned(),
            FaultAction::Abort => "abort".to_owned(),
            FaultAction::Hang => "hang".to_owned(),
            FaultAction::Exit(n) => format!("exit:{n}"),
        }
    }

    /// Parses [`FaultAction::wire_name`] output (worker child side).
    pub(crate) fn parse_wire(s: &str) -> Option<FaultAction> {
        if let Some(code) = s.strip_prefix("exit:") {
            return code.parse().ok().map(FaultAction::Exit);
        }
        match s {
            "panic" => Some(FaultAction::Panic),
            "err" => Some(FaultAction::Err),
            "slow" => Some(FaultAction::Slow),
            "abort" => Some(FaultAction::Abort),
            "hang" => Some(FaultAction::Hang),
            _ => None,
        }
    }
}

/// Parses an action with its optional `*<k>` attempt-limit suffix.
fn parse_limited(s: &str) -> Result<(FaultAction, Option<u32>), SpecfetchError> {
    match s.rsplit_once('*') {
        Some((action, limit)) => {
            let limit = limit
                .parse()
                .map_err(|_| bad_spec(format!("bad attempt limit {limit:?} (expected *<k>)")))?;
            Ok((FaultAction::parse(action)?, Some(limit)))
        }
        None => Ok((FaultAction::parse(s)?, None)),
    }
}

/// Shorthand for the typed rejection every grammar error maps to.
fn bad_spec(detail: String) -> SpecfetchError {
    SpecfetchError::InvalidSpec { detail }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct PointRule {
    experiment: String,
    point: u64,
    action: FaultAction,
    /// Fire only on attempts `0..limit`; `None` fires on every attempt.
    limit: Option<u32>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct ChaosRule {
    permille: u32,
    seed: u64,
    action: FaultAction,
    limit: Option<u32>,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct SoakRule {
    permille: u32,
    seed: u64,
}

/// A parsed `--inject` plan: which grid points fail, and how.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    points: Vec<PointRule>,
    chaos: Option<ChaosRule>,
    soak: Option<SoakRule>,
}

/// Seeded FNV-1a over arbitrary byte runs — the decision hash shared by
/// `chaos` and `soak` rules.
fn decision_hash(seed: u64, salt: &str, experiment: &str, point: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(salt.as_bytes());
    eat(experiment.as_bytes());
    eat(&point.to_le_bytes());
    h
}

fn parse_permille_at_seed(target: &str) -> Result<(u32, u64), SpecfetchError> {
    let (permille, seed) = target
        .split_once('@')
        .ok_or_else(|| bad_spec(format!("bad target {target:?} (expected permille@seed)")))?;
    let permille: u32 =
        permille.parse().map_err(|_| bad_spec(format!("bad permille {permille:?}")))?;
    if permille > 1000 {
        return Err(bad_spec(format!("permille {permille} exceeds 1000")));
    }
    let seed = seed.parse().map_err(|_| bad_spec(format!("bad seed {seed:?}")))?;
    Ok((permille, seed))
}

impl FaultPlan {
    /// Parses the `--inject` grammar (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`SpecfetchError::InvalidSpec`] (with a human-readable detail) for
    /// any spec that does not match the grammar.
    pub fn parse(input: &str) -> Result<FaultPlan, SpecfetchError> {
        let mut plan = FaultPlan::default();
        for spec in input.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, rest) = spec
                .split_once('=')
                .ok_or_else(|| bad_spec(format!("bad fault spec {spec:?} (expected key=value)")))?;
            if kind == "soak" {
                let (permille, seed) = parse_permille_at_seed(rest)?;
                plan.soak = Some(SoakRule { permille, seed });
                continue;
            }
            let (target, action) = rest
                .rsplit_once(',')
                .ok_or_else(|| bad_spec(format!("bad fault spec {spec:?} (missing ,action)")))?;
            let (action, limit) = parse_limited(action)?;
            match kind {
                "point" => {
                    let (experiment, n) = target.split_once(':').ok_or_else(|| {
                        bad_spec(format!("bad point target {target:?} (expected experiment:n)"))
                    })?;
                    let point = n
                        .parse()
                        .map_err(|_| bad_spec(format!("bad point index {n:?} in {spec:?}")))?;
                    plan.points.push(PointRule {
                        experiment: experiment.to_owned(),
                        point,
                        action,
                        limit,
                    });
                }
                "chaos" => {
                    let (permille, seed) = parse_permille_at_seed(target)?;
                    plan.chaos = Some(ChaosRule { permille, seed, action, limit });
                }
                other => return Err(bad_spec(format!("unknown fault kind {other:?} in {spec:?}"))),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty() && self.chaos.is_none() && self.soak.is_none()
    }

    /// The action (if any) this plan fires at `point` of `experiment` on
    /// the given retry `attempt` (0 = the first run). Pure and
    /// deterministic — identical inputs always produce the identical
    /// decision.
    pub fn action_at(&self, experiment: &str, point: u64, attempt: u32) -> Option<FaultAction> {
        let fires = |limit: Option<u32>| limit.is_none_or(|k| attempt < k);
        if let Some(rule) =
            self.points.iter().find(|r| r.experiment == experiment && r.point == point)
        {
            return (fires(rule.limit)).then_some(rule.action);
        }
        if let Some(chaos) = self.chaos {
            let h = decision_hash(chaos.seed, "", experiment, point);
            if h % 1000 < u64::from(chaos.permille) && fires(chaos.limit) {
                return Some(chaos.action);
            }
        }
        // Soak faults model transient infrastructure trouble: first
        // attempt only, so a supervised rerun converges.
        let soak = self.soak?;
        if attempt > 0 {
            return None;
        }
        let h = decision_hash(soak.seed, "soak", experiment, point);
        if h % 1000 >= u64::from(soak.permille) {
            return None;
        }
        Some(if h >> 63 == 0 { FaultAction::Hang } else { FaultAction::Exit(SOAK_EXIT_CODE) })
    }
}

/// Per-process injection state: the installed plan plus the point
/// counter of the experiment currently running.
struct Counter {
    experiment: String,
    next_point: u64,
}

static PLAN: OnceLock<FaultPlan> = OnceLock::new();

fn counter() -> &'static Mutex<Counter> {
    static COUNTER: OnceLock<Mutex<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| Mutex::new(Counter { experiment: String::new(), next_point: 0 }))
}

/// Installs the process-wide fault plan. Called once by the CLI before
/// any experiment runs; a second call is rejected.
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] if a plan is already installed.
pub fn install(plan: FaultPlan) -> Result<(), SpecfetchError> {
    PLAN.set(plan).map_err(|_| bad_spec("a fault plan is already installed".to_owned()))
}

/// Resets the point counter for a new experiment. Called by
/// [`crate::run_experiment`] (and by the CLI before a user-defined
/// sweep) so `point=<exp>:<n>` indices restart at 0 per experiment.
pub fn begin_experiment(id: &str) {
    if PLAN.get().is_none() {
        return;
    }
    let mut c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    c.experiment = id.to_owned();
    c.next_point = 0;
}

/// Claims `n` consecutive point indices for a batch about to run,
/// returning the base index. Indices are handed out in batch-submission
/// order (single-threaded experiment code), so they are deterministic
/// regardless of worker scheduling.
pub(crate) fn reserve(n: usize) -> u64 {
    if PLAN.get().is_none() {
        return 0;
    }
    let mut c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let base = c.next_point;
    c.next_point += n as u64;
    base
}

/// The installed plan's action for point `idx` of the current
/// experiment on `attempt`, without firing it. The worker dispatcher
/// uses this to route process faults (`abort`, `hang`, `exitcode`) to
/// the child process that will run the point instead of killing the
/// parent.
pub(crate) fn peek(idx: u64, attempt: u32) -> Option<FaultAction> {
    let plan = PLAN.get()?;
    let experiment = {
        let c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        c.experiment.clone()
    };
    plan.action_at(&experiment, idx, attempt)
}

/// Fires the installed plan's action for point `idx` of the current
/// experiment on `attempt`, if any: panics for `panic`, sleeps for
/// `slow`, returns a typed error for `err`, aborts/exits the process
/// for `abort`/`exitcode`, and hangs cooperatively for `hang` —
/// spinning until the `deadline_secs` budget (when non-zero) expires
/// with a typed [`SpecfetchError::Timeout`] or a shutdown request
/// surfaces [`SpecfetchError::Interrupted`]. A no-op when no plan is
/// installed.
pub(crate) fn guard(idx: u64, attempt: u32, deadline_secs: u64) -> Result<(), SpecfetchError> {
    match peek(idx, attempt) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("injected panic"),
        Some(FaultAction::Err) => Err(SpecfetchError::Injected { action: "err" }),
        Some(FaultAction::Slow) => {
            std::thread::sleep(Duration::from_millis(SLOW_MILLIS));
            Ok(())
        }
        Some(FaultAction::Abort) => abort_process(),
        Some(FaultAction::Exit(code)) => exit_process(code),
        Some(FaultAction::Hang) => hang_cooperatively(deadline_secs),
    }
}

/// An in-process `hang`: the thread cannot be preempted (no external
/// supervisor), so it spins politely, honouring the per-point deadline
/// and the graceful-shutdown flag. Worker children never reach this —
/// their hang freezes the whole process (see [`crate::worker`]).
fn hang_cooperatively(deadline_secs: u64) -> Result<(), SpecfetchError> {
    let start = Instant::now();
    loop {
        if supervise::shutdown_requested() {
            return Err(SpecfetchError::Interrupted);
        }
        if deadline_secs > 0 && start.elapsed() >= Duration::from_secs(deadline_secs) {
            return Err(SpecfetchError::Timeout { seconds: deadline_secs });
        }
        std::thread::sleep(Duration::from_millis(HANG_POLL_MILLIS));
    }
}

/// Hard-kills the current process. The only non-`bin` abort site in the
/// workspace (the tidy exit-confinement rule pins it here): worker child
/// processes call this when the parent forwards them an `abort` fault.
pub(crate) fn abort_process() -> ! {
    std::process::abort()
}

/// Exits the current process with `code` — the `exitcode=<n>` injection
/// primitive. Lives here with [`abort_process`] so the tidy
/// exit-confinement rule keeps every library exit site in one audited
/// file.
pub(crate) fn exit_process(code: u8) -> ! {
    std::process::exit(i32::from(code))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_point_specs() {
        let p = FaultPlan::parse("point=table4:1,panic").unwrap();
        assert_eq!(p.action_at("table4", 1, 0), Some(FaultAction::Panic));
        assert_eq!(p.action_at("table4", 0, 0), None);
        assert_eq!(p.action_at("table3", 1, 0), None);
    }

    #[test]
    fn parses_multiple_specs_and_actions() {
        let p = FaultPlan::parse("point=table3:2,err; point=figure1:0,slow; point=sweep:1,abort")
            .unwrap();
        assert_eq!(p.action_at("table3", 2, 0), Some(FaultAction::Err));
        assert_eq!(p.action_at("figure1", 0, 0), Some(FaultAction::Slow));
        assert_eq!(p.action_at("sweep", 1, 0), Some(FaultAction::Abort));
    }

    #[test]
    fn parses_hang_and_exitcode_actions() {
        let p = FaultPlan::parse("point=sweep:0,hang; point=sweep:1,exitcode=3").unwrap();
        assert_eq!(p.action_at("sweep", 0, 0), Some(FaultAction::Hang));
        assert_eq!(p.action_at("sweep", 1, 0), Some(FaultAction::Exit(3)));
    }

    #[test]
    fn attempt_limits_stop_refiring() {
        let p = FaultPlan::parse("point=sweep:0,hang*1; point=sweep:1,err*2; point=sweep:2,panic")
            .unwrap();
        assert_eq!(p.action_at("sweep", 0, 0), Some(FaultAction::Hang));
        assert_eq!(p.action_at("sweep", 0, 1), None, "hang*1 fires on the first attempt only");
        assert_eq!(p.action_at("sweep", 1, 1), Some(FaultAction::Err));
        assert_eq!(p.action_at("sweep", 1, 2), None);
        assert_eq!(
            p.action_at("sweep", 2, 9),
            Some(FaultAction::Panic),
            "no limit = every attempt"
        );
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(!FaultPlan::parse("point=a:0,panic").unwrap().is_empty());
        assert!(!FaultPlan::parse("soak=100@1").unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_grammar() {
        for bad in [
            "nonsense",
            "point=table4,panic",
            "point=table4:x,panic",
            "point=table4:1,explode",
            "point=table4:1,exitcode=999",
            "point=table4:1,hang*x",
            "chaos=10,panic",
            "chaos=xx@1,err",
            "chaos=2000@1,err",
            "soak=2000@1",
            "soak=100",
            "rate=1@2,err",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} unexpectedly parsed");
        }
    }

    #[test]
    fn chaos_is_deterministic_and_seeded() {
        let a = FaultPlan::parse("chaos=200@42,err").unwrap();
        let b = FaultPlan::parse("chaos=200@42,err").unwrap();
        let c = FaultPlan::parse("chaos=200@43,err").unwrap();
        let hits = |p: &FaultPlan| {
            (0..500).filter(|&i| p.action_at("table5", i, 0).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(hits(&a), hits(&b), "same seed must fail the same points");
        assert_ne!(hits(&a), hits(&c), "different seeds should differ");
        // ~20% of 500 points; generous bounds, determinism is the claim.
        let n = hits(&a).len();
        assert!((50..200).contains(&n), "chaos rate wildly off: {n}/500");
    }

    #[test]
    fn chaos_rate_zero_never_fires_and_1000_always_fires() {
        let never = FaultPlan::parse("chaos=0@7,panic").unwrap();
        let always = FaultPlan::parse("chaos=1000@7,panic").unwrap();
        for i in 0..100 {
            assert_eq!(never.action_at("x", i, 0), None);
            assert_eq!(always.action_at("x", i, 0), Some(FaultAction::Panic));
        }
    }

    #[test]
    fn point_rules_take_precedence_over_chaos() {
        let p = FaultPlan::parse("point=t:3,slow;chaos=1000@1,panic").unwrap();
        assert_eq!(p.action_at("t", 3, 0), Some(FaultAction::Slow));
        assert_eq!(p.action_at("t", 4, 0), Some(FaultAction::Panic));
    }

    #[test]
    fn soak_picks_process_faults_on_the_first_attempt_only() {
        let p = FaultPlan::parse("soak=1000@9").unwrap();
        for i in 0..50 {
            let action = p.action_at("sweep", i, 0).expect("permille 1000 always fires");
            assert!(action.is_process_fault(), "soak must hang or kill, got {action:?}");
            assert_eq!(p.action_at("sweep", i, 1), None, "soak is first-attempt only");
        }
        let some_hang = (0..50).any(|i| p.action_at("s", i, 0) == Some(FaultAction::Hang));
        let some_exit =
            (0..50).any(|i| p.action_at("s", i, 0) == Some(FaultAction::Exit(SOAK_EXIT_CODE)));
        assert!(some_hang && some_exit, "soak should mix hangs and kills");
    }

    #[test]
    fn soak_is_deterministic_and_seeded() {
        let a = FaultPlan::parse("soak=300@5").unwrap();
        let b = FaultPlan::parse("soak=300@5").unwrap();
        let c = FaultPlan::parse("soak=300@6").unwrap();
        let hits = |p: &FaultPlan| (0..200).map(|i| p.action_at("sweep", i, 0)).collect::<Vec<_>>();
        assert_eq!(hits(&a), hits(&b));
        assert_ne!(hits(&a), hits(&c));
    }

    #[test]
    fn wire_names_round_trip() {
        for action in [
            FaultAction::Panic,
            FaultAction::Err,
            FaultAction::Slow,
            FaultAction::Abort,
            FaultAction::Hang,
            FaultAction::Exit(17),
        ] {
            assert_eq!(FaultAction::parse_wire(&action.wire_name()), Some(action));
        }
        assert_eq!(FaultAction::parse_wire("none"), None);
        assert_eq!(FaultAction::parse_wire("exit:boom"), None);
    }

    #[test]
    fn process_faults_are_exactly_the_process_killers() {
        assert!(FaultAction::Abort.is_process_fault());
        assert!(FaultAction::Hang.is_process_fault());
        assert!(FaultAction::Exit(0).is_process_fault());
        assert!(!FaultAction::Panic.is_process_fault());
        assert!(!FaultAction::Err.is_process_fault());
        assert!(!FaultAction::Slow.is_process_fault());
    }
}
