//! Deterministic fault injection for the experiment runner.
//!
//! The reproduction is a long unattended sweep; its failure handling is
//! only trustworthy if every recovery path can be exercised on demand.
//! This module injects faults at named grid points so tests and CI can
//! prove that one poisoned point costs one `FAILED(...)` cell — never
//! the run.
//!
//! # Grammar
//!
//! `--inject` takes one or more `;`-separated specs:
//!
//! ```text
//! point=<experiment>:<n>,<action>   fire at the n-th grid point (0-based,
//!                                   input order) of <experiment>
//! chaos=<permille>@<seed>,<action>  fire at each grid point with
//!                                   probability permille/1000, decided by
//!                                   a seeded hash of (experiment, point)
//! ```
//!
//! where `<action>` is one of:
//!
//! - `panic` — panic inside the grid point (exercises the capture path);
//! - `err` — return a typed [`SpecfetchError::Injected`] error;
//! - `slow` — sleep [`SLOW_MILLIS`] before simulating (the point still
//!   succeeds; exercises scheduling under stragglers);
//! - `abort` — kill the **process** executing the point with
//!   [`std::process::abort`]. In-process this crashes the run (it is a
//!   crash-test primitive, not an isolation test); under `--workers N`
//!   the parent forwards it to the child handling the point, exercising
//!   worker-death recovery (the child's points render `FAILED(...)`,
//!   sibling workers complete).
//!
//! # Determinism
//!
//! Grid points are numbered in **input order** as each experiment
//! enqueues them — the numbering is assigned before any worker runs, so
//! it is independent of thread scheduling. `chaos` decisions hash
//! `(seed, experiment, point)`: the same seed always fails the same
//! cells, on any machine, at any parallelism.
//!
//! The plan is installed once per process ([`install`], called by the
//! `specfetch-repro` CLI); with no plan installed, the per-point check is
//! a single relaxed atomic-free `OnceLock` read.

use std::sync::{Mutex, OnceLock};

use specfetch_core::SpecfetchError;

/// How long an injected `slow` fault stalls a grid point.
pub const SLOW_MILLIS: u64 = 250;

/// What an injected fault does to its grid point.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Panic inside the point (captured and rendered `FAILED(injected
    /// panic)`).
    Panic,
    /// Return a typed error (rendered `FAILED(injected err)`).
    Err,
    /// Sleep [`SLOW_MILLIS`] and then run normally.
    Slow,
    /// Abort the process executing the point (worker-death testing).
    Abort,
}

impl FaultAction {
    fn parse(s: &str) -> Result<FaultAction, SpecfetchError> {
        match s {
            "panic" => Ok(FaultAction::Panic),
            "err" => Ok(FaultAction::Err),
            "slow" => Ok(FaultAction::Slow),
            "abort" => Ok(FaultAction::Abort),
            other => Err(bad_spec(format!(
                "unknown fault action {other:?} (expected panic|err|slow|abort)"
            ))),
        }
    }
}

/// Shorthand for the typed rejection every grammar error maps to.
fn bad_spec(detail: String) -> SpecfetchError {
    SpecfetchError::InvalidSpec { detail }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct PointRule {
    experiment: String,
    point: u64,
    action: FaultAction,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct ChaosRule {
    permille: u32,
    seed: u64,
    action: FaultAction,
}

/// A parsed `--inject` plan: which grid points fail, and how.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    points: Vec<PointRule>,
    chaos: Option<ChaosRule>,
}

impl FaultPlan {
    /// Parses the `--inject` grammar (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`SpecfetchError::InvalidSpec`] (with a human-readable detail) for
    /// any spec that does not match the grammar.
    pub fn parse(input: &str) -> Result<FaultPlan, SpecfetchError> {
        let mut plan = FaultPlan::default();
        for spec in input.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, rest) = spec
                .split_once('=')
                .ok_or_else(|| bad_spec(format!("bad fault spec {spec:?} (expected key=value)")))?;
            let (target, action) = rest
                .rsplit_once(',')
                .ok_or_else(|| bad_spec(format!("bad fault spec {spec:?} (missing ,action)")))?;
            let action = FaultAction::parse(action)?;
            match kind {
                "point" => {
                    let (experiment, n) = target.split_once(':').ok_or_else(|| {
                        bad_spec(format!("bad point target {target:?} (expected experiment:n)"))
                    })?;
                    let point = n
                        .parse()
                        .map_err(|_| bad_spec(format!("bad point index {n:?} in {spec:?}")))?;
                    plan.points.push(PointRule {
                        experiment: experiment.to_owned(),
                        point,
                        action,
                    });
                }
                "chaos" => {
                    let (permille, seed) = target.split_once('@').ok_or_else(|| {
                        bad_spec(format!("bad chaos target {target:?} (expected permille@seed)"))
                    })?;
                    let permille: u32 = permille
                        .parse()
                        .map_err(|_| bad_spec(format!("bad chaos permille {permille:?}")))?;
                    if permille > 1000 {
                        return Err(bad_spec(format!("chaos permille {permille} exceeds 1000")));
                    }
                    let seed =
                        seed.parse().map_err(|_| bad_spec(format!("bad chaos seed {seed:?}")))?;
                    plan.chaos = Some(ChaosRule { permille, seed, action });
                }
                other => return Err(bad_spec(format!("unknown fault kind {other:?} in {spec:?}"))),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty() && self.chaos.is_none()
    }

    /// The action (if any) this plan fires at `point` of `experiment`.
    /// Pure and deterministic — identical inputs always produce the
    /// identical decision.
    pub fn action_at(&self, experiment: &str, point: u64) -> Option<FaultAction> {
        if let Some(rule) =
            self.points.iter().find(|r| r.experiment == experiment && r.point == point)
        {
            return Some(rule.action);
        }
        let chaos = self.chaos?;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&chaos.seed.to_le_bytes());
        eat(experiment.as_bytes());
        eat(&point.to_le_bytes());
        (h % 1000 < u64::from(chaos.permille)).then_some(chaos.action)
    }
}

/// Per-process injection state: the installed plan plus the point
/// counter of the experiment currently running.
struct Counter {
    experiment: String,
    next_point: u64,
}

static PLAN: OnceLock<FaultPlan> = OnceLock::new();

fn counter() -> &'static Mutex<Counter> {
    static COUNTER: OnceLock<Mutex<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| Mutex::new(Counter { experiment: String::new(), next_point: 0 }))
}

/// Installs the process-wide fault plan. Called once by the CLI before
/// any experiment runs; a second call is rejected.
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] if a plan is already installed.
pub fn install(plan: FaultPlan) -> Result<(), SpecfetchError> {
    PLAN.set(plan).map_err(|_| bad_spec("a fault plan is already installed".to_owned()))
}

/// Resets the point counter for a new experiment. Called by
/// [`crate::run_experiment`] (and by the CLI before a user-defined
/// sweep) so `point=<exp>:<n>` indices restart at 0 per experiment.
pub fn begin_experiment(id: &str) {
    if PLAN.get().is_none() {
        return;
    }
    let mut c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    c.experiment = id.to_owned();
    c.next_point = 0;
}

/// Claims `n` consecutive point indices for a batch about to run,
/// returning the base index. Indices are handed out in batch-submission
/// order (single-threaded experiment code), so they are deterministic
/// regardless of worker scheduling.
pub(crate) fn reserve(n: usize) -> u64 {
    if PLAN.get().is_none() {
        return 0;
    }
    let mut c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let base = c.next_point;
    c.next_point += n as u64;
    base
}

/// The installed plan's action for point `idx` of the current
/// experiment, without firing it. The worker dispatcher uses this to
/// route `abort` to the child process that will run the point instead
/// of killing the parent.
pub(crate) fn peek(idx: u64) -> Option<FaultAction> {
    let plan = PLAN.get()?;
    let experiment = {
        let c = counter().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        c.experiment.clone()
    };
    plan.action_at(&experiment, idx)
}

/// Fires the installed plan's action for point `idx` of the current
/// experiment, if any: panics for `panic`, sleeps for `slow`, returns a
/// typed error for `err`, aborts the process for `abort`. A no-op when
/// no plan is installed.
pub(crate) fn guard(idx: u64) -> Result<(), SpecfetchError> {
    match peek(idx) {
        None => Ok(()),
        Some(FaultAction::Panic) => panic!("injected panic"),
        Some(FaultAction::Err) => Err(SpecfetchError::Injected { action: "err" }),
        Some(FaultAction::Slow) => {
            std::thread::sleep(std::time::Duration::from_millis(SLOW_MILLIS));
            Ok(())
        }
        Some(FaultAction::Abort) => abort_process(),
    }
}

/// Hard-kills the current process. The only non-`bin` abort site in the
/// workspace (the tidy exit-confinement rule pins it here): worker child
/// processes call this when the parent forwards them an `abort` fault.
pub(crate) fn abort_process() -> ! {
    std::process::abort()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_point_specs() {
        let p = FaultPlan::parse("point=table4:1,panic").unwrap();
        assert_eq!(p.action_at("table4", 1), Some(FaultAction::Panic));
        assert_eq!(p.action_at("table4", 0), None);
        assert_eq!(p.action_at("table3", 1), None);
    }

    #[test]
    fn parses_multiple_specs_and_actions() {
        let p = FaultPlan::parse("point=table3:2,err; point=figure1:0,slow; point=sweep:1,abort")
            .unwrap();
        assert_eq!(p.action_at("table3", 2), Some(FaultAction::Err));
        assert_eq!(p.action_at("figure1", 0), Some(FaultAction::Slow));
        assert_eq!(p.action_at("sweep", 1), Some(FaultAction::Abort));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(!FaultPlan::parse("point=a:0,panic").unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_grammar() {
        for bad in [
            "nonsense",
            "point=table4,panic",
            "point=table4:x,panic",
            "point=table4:1,explode",
            "chaos=10,panic",
            "chaos=xx@1,err",
            "chaos=2000@1,err",
            "rate=1@2,err",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} unexpectedly parsed");
        }
    }

    #[test]
    fn chaos_is_deterministic_and_seeded() {
        let a = FaultPlan::parse("chaos=200@42,err").unwrap();
        let b = FaultPlan::parse("chaos=200@42,err").unwrap();
        let c = FaultPlan::parse("chaos=200@43,err").unwrap();
        let hits = |p: &FaultPlan| {
            (0..500).filter(|&i| p.action_at("table5", i).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(hits(&a), hits(&b), "same seed must fail the same points");
        assert_ne!(hits(&a), hits(&c), "different seeds should differ");
        // ~20% of 500 points; generous bounds, determinism is the claim.
        let n = hits(&a).len();
        assert!((50..200).contains(&n), "chaos rate wildly off: {n}/500");
    }

    #[test]
    fn chaos_rate_zero_never_fires_and_1000_always_fires() {
        let never = FaultPlan::parse("chaos=0@7,panic").unwrap();
        let always = FaultPlan::parse("chaos=1000@7,panic").unwrap();
        for i in 0..100 {
            assert_eq!(never.action_at("x", i), None);
            assert_eq!(always.action_at("x", i), Some(FaultAction::Panic));
        }
    }

    #[test]
    fn point_rules_take_precedence_over_chaos() {
        let p = FaultPlan::parse("point=t:3,slow;chaos=1000@1,panic").unwrap();
        assert_eq!(p.action_at("t", 3), Some(FaultAction::Slow));
        assert_eq!(p.action_at("t", 4), Some(FaultAction::Panic));
    }
}
