//! Shared simulation driving: single runs and batched experiment grids.

use specfetch_core::{SimConfig, SimResult, Simulator};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::PathSource;

use crate::{par_map, RunOptions};

/// One benchmark's simulation outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchResult {
    /// Which benchmark.
    pub benchmark: &'static Benchmark,
    /// The measurements.
    pub result: SimResult,
}

/// One cell of an experiment grid: a benchmark under a configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct GridPoint {
    /// Which benchmark's path to replay.
    pub benchmark: &'static Benchmark,
    /// The front-end configuration to replay it under.
    pub cfg: SimConfig,
}

impl GridPoint {
    /// A grid cell.
    pub fn new(benchmark: &'static Benchmark, cfg: SimConfig) -> Self {
        GridPoint { benchmark, cfg }
    }
}

/// Simulates one benchmark under `cfg` for `opts.instrs_per_benchmark`
/// dynamic instructions.
///
/// The correct path is fixed per benchmark (same generator seed, same
/// path seed), so different configurations replay the *same* execution —
/// the property every policy comparison in the paper relies on. Three
/// replay paths produce byte-identical results:
///
/// - default (`share_traces` + `predict_cache`): the engine replays the
///   pre-decoded [`specfetch_trace::PredictedTrace`] overlay from the
///   process-wide [`crate::trace_cache`] (enabling its batched fetch fast
///   path), and the finished result is memoised per
///   `(benchmark, window, config)`;
/// - `--no-predict-cache`: replays the shared recording without the
///   overlay or memo;
/// - `--no-trace-cache`: re-interprets the workload per run (the
///   pre-sharing behaviour).
pub fn simulate_benchmark(bench: &Benchmark, cfg: SimConfig, opts: RunOptions) -> SimResult {
    if opts.use_overlay() {
        crate::trace_cache::memoized_result(bench, opts.instrs_per_benchmark, cfg, || {
            let source = crate::trace_cache::predicted_source(bench, opts.instrs_per_benchmark);
            Simulator::new(cfg).run(source)
        })
    } else if opts.share_traces {
        let source = crate::trace_cache::recorded_source(bench, opts.instrs_per_benchmark);
        Simulator::new(cfg).run(source)
    } else {
        let workload = bench.workload().expect("calibrated specs always generate");
        let source = workload.executor(bench.path_seed()).take_instrs(opts.instrs_per_benchmark);
        Simulator::new(cfg).run(source)
    }
}

/// Simulates every grid point, returning results in input order.
///
/// This is the batched multi-config replay the experiments are built on:
/// points are scheduled **grouped by benchmark**, so all configurations
/// that replay the same trace run back-to-back on one worker — the
/// recording and its overlay are materialised once and stay hot across
/// the whole batch, and the result memo collapses grid points that
/// recur across experiments (every table re-runs the shared baselines).
/// Groups, not points, are the parallel unit; point order within the
/// result is the input order regardless of grouping.
pub fn run_grid(points: &[GridPoint], opts: &RunOptions) -> Vec<SimResult> {
    let mut groups: Vec<(&'static Benchmark, Vec<usize>)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        match groups.iter_mut().find(|(b, _)| std::ptr::eq(*b, p.benchmark)) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((p.benchmark, vec![i])),
        }
    }
    let opts_by_val = *opts;
    let done = par_map(groups, opts.parallel, |(b, idxs)| {
        idxs.into_iter()
            .map(|i| (i, simulate_benchmark(b, points[i].cfg, opts_by_val)))
            .collect::<Vec<(usize, SimResult)>>()
    });
    let mut out: Vec<Option<SimResult>> = vec![None; points.len()];
    for (i, r) in done.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("every grid point is simulated")).collect()
}

/// Runs the full 13-benchmark suite under the configuration produced by
/// `cfg_for` (called once per benchmark), in suite order.
pub fn suite_results(
    opts: &RunOptions,
    cfg_for: impl Fn(&Benchmark) -> SimConfig + Sync,
) -> Vec<BenchResult> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| BenchResult {
        benchmark: b,
        result: simulate_benchmark(b, cfg_for(b), opts),
    })
}

/// The arithmetic mean of `xs`.
pub(crate) fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::FetchPolicy;

    #[test]
    fn simulate_benchmark_is_deterministic() {
        let b = Benchmark::by_name("li").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(20_000);
        let a = simulate_benchmark(b, cfg, opts);
        let c = simulate_benchmark(b, cfg, opts);
        assert_eq!(a, c);
    }

    #[test]
    fn shared_and_legacy_paths_agree() {
        let b = Benchmark::by_name("gcc").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(10_000);
        let shared = simulate_benchmark(b, cfg, opts);
        let legacy = simulate_benchmark(b, cfg, opts.with_share_traces(false));
        assert_eq!(shared, legacy);
    }

    #[test]
    fn overlay_and_plain_shared_paths_agree() {
        let b = Benchmark::by_name("doduc").unwrap();
        let opts = RunOptions::smoke().with_instrs(10_000);
        for policy in FetchPolicy::ALL {
            let mut cfg = SimConfig::paper_baseline();
            cfg.policy = policy;
            let overlay = simulate_benchmark(b, cfg, opts);
            let plain = simulate_benchmark(b, cfg, opts.with_predict_cache(false));
            assert_eq!(overlay, plain, "{policy}: overlay replay diverged");
        }
    }

    #[test]
    fn run_grid_matches_pointwise_runs_in_order() {
        let opts = RunOptions::smoke().with_instrs(8_000);
        let mut points = Vec::new();
        // Deliberately interleave benchmarks so grouping must scatter
        // results back to input order.
        for policy in [FetchPolicy::Oracle, FetchPolicy::Pessimistic] {
            for name in ["li", "gcc", "li", "cfront"] {
                let mut cfg = SimConfig::paper_baseline();
                cfg.policy = policy;
                points.push(GridPoint::new(Benchmark::by_name(name).unwrap(), cfg));
            }
        }
        let grid = run_grid(&points, &opts);
        assert_eq!(grid.len(), points.len());
        for (p, r) in points.iter().zip(&grid) {
            assert_eq!(*r, simulate_benchmark(p.benchmark, p.cfg, opts));
            assert_eq!(r.policy, p.cfg.policy);
        }
    }

    #[test]
    fn run_grid_agrees_without_any_caches() {
        let opts = RunOptions::smoke().with_instrs(6_000);
        let raw = opts.with_share_traces(false).with_predict_cache(false);
        let points: Vec<GridPoint> = FetchPolicy::ALL
            .into_iter()
            .map(|policy| {
                let mut cfg = SimConfig::paper_baseline();
                cfg.policy = policy;
                GridPoint::new(Benchmark::by_name("su2cor").unwrap(), cfg)
            })
            .collect();
        assert_eq!(run_grid(&points, &opts), run_grid(&points, &raw));
    }

    #[test]
    fn suite_results_covers_all_benchmarks_in_order() {
        let opts = RunOptions::smoke().with_instrs(5_000);
        let rs = suite_results(&opts, |_| SimConfig::paper_baseline());
        assert_eq!(rs.len(), 13);
        assert_eq!(rs[0].benchmark.name, "doduc");
        assert_eq!(rs[12].benchmark.name, "porky");
        for r in &rs {
            assert_eq!(r.result.policy, FetchPolicy::Resume);
            assert_eq!(r.result.correct_instrs, 5_000);
        }
    }

    #[test]
    fn helpers() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean([]), 0.0);
    }
}
