//! Shared simulation driving: single runs and batched experiment grids.
//!
//! Two layers of the same machinery:
//!
//! - the `try_*` functions are the fault-isolated substrate every
//!   rendered report runs on — a grid point that fails (a typed
//!   [`SpecfetchError`] or a panic) costs exactly one [`CellFailure`]
//!   cell while every other point completes;
//! - the infallible wrappers ([`simulate_benchmark`], [`run_grid`],
//!   [`suite_results`]) keep the original panic-on-failure contract for
//!   tests, benches, and examples, where a failure is a bug.

use std::panic::{self, AssertUnwindSafe};

use specfetch_core::{run_lockstep, FrontEnd, SimConfig, SimResult, Simulator, SpecfetchError};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::PathSource;

use crate::parallel::panic_message;
use crate::store::{persist, resolve_stored};
use crate::{fault, journal, par_map, supervise, try_par_map, RunOptions};

/// One benchmark's simulation outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchResult {
    /// Which benchmark.
    pub benchmark: &'static Benchmark,
    /// The measurements.
    pub result: SimResult,
}

/// One cell of an experiment grid: a benchmark under a configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct GridPoint {
    /// Which benchmark's path to replay.
    pub benchmark: &'static Benchmark,
    /// The front-end configuration to replay it under.
    pub cfg: SimConfig,
}

impl GridPoint {
    /// A grid cell.
    pub fn new(benchmark: &'static Benchmark, cfg: SimConfig) -> Self {
        GridPoint { benchmark, cfg }
    }
}

/// How a failed grid point should be treated by the supervision layer
/// (DESIGN §5j).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FailKind {
    /// Deterministic: rerunning would fail identically (panics, analysis
    /// and workload errors). Rendered immediately and negatively cached.
    Terminal,
    /// Environmental: worker death, deadline/heartbeat timeouts, injected
    /// `err`. Retried up to `--retries` before becoming terminal.
    Transient,
    /// Drained by a shutdown request: neither failed nor retried; a
    /// `--resume` rerun recomputes it.
    Interrupted,
}

/// Why one grid point produced no measurement: the compact reason
/// rendered as `FAILED(<reason>)` in the report cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellFailure {
    /// Human-readable cause (a panic message or an error summary).
    pub reason: String,
    /// Whether the supervisor may retry this point.
    pub kind: FailKind,
    /// Whether this failure was replayed from the negative cache or the
    /// journal rather than produced by this run — replayed failures are
    /// never re-persisted (the entry already exists).
    pub(crate) replayed: bool,
}

impl CellFailure {
    /// A failure from a typed error. The retry classification follows
    /// the error: timeouts and injected `err` are transient, a shutdown
    /// drain is `Interrupted`, everything else rails to `Terminal`.
    pub fn from_error(e: &SpecfetchError) -> Self {
        let kind = match e {
            SpecfetchError::Timeout { .. } => FailKind::Transient,
            SpecfetchError::Injected { action } if *action == "err" => FailKind::Transient,
            SpecfetchError::Interrupted => FailKind::Interrupted,
            _ => FailKind::Terminal,
        };
        // A `StoredFailure` surfaces a negative-cache entry through the
        // error channel — it carries the replay provenance with it.
        let replayed = matches!(e, SpecfetchError::StoredFailure { .. });
        CellFailure { reason: e.cell_reason(), kind, replayed }
    }

    /// A failure from a captured panic payload (deterministic, terminal).
    fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        CellFailure { reason: panic_message(payload), kind: FailKind::Terminal, replayed: false }
    }

    /// A terminal failure with an explicit reason.
    pub(crate) fn permanent(reason: impl Into<String>) -> Self {
        CellFailure { reason: reason.into(), kind: FailKind::Terminal, replayed: false }
    }

    /// A terminal failure replayed verbatim from the negative cache or
    /// the journal.
    pub(crate) fn from_replay(reason: impl Into<String>) -> Self {
        CellFailure { reason: reason.into(), kind: FailKind::Terminal, replayed: true }
    }

    /// A transient (retryable) failure with an explicit reason.
    pub(crate) fn transient(reason: impl Into<String>) -> Self {
        CellFailure { reason: reason.into(), kind: FailKind::Transient, replayed: false }
    }

    /// A point drained by a shutdown request.
    pub(crate) fn interrupted() -> Self {
        CellFailure {
            reason: "interrupted".to_owned(),
            kind: FailKind::Interrupted,
            replayed: false,
        }
    }

    /// The `FAILED(<reason>)` table cell.
    pub fn cell(&self) -> String {
        format!("FAILED({})", self.reason)
    }
}

/// A per-cell measured value: the measurement, or why it is missing.
pub type Measured<T> = Result<T, CellFailure>;

/// One grid point's simulation outcome under isolation.
pub type GridCell = Measured<SimResult>;

/// Simulates one benchmark under `cfg` for `opts.instrs_per_benchmark`
/// dynamic instructions, reporting trace/workload problems as errors.
///
/// The correct path is fixed per benchmark (same generator seed, same
/// path seed), so different configurations replay the *same* execution —
/// the property every policy comparison in the paper relies on. Three
/// replay paths produce byte-identical results:
///
/// - default (`share_traces` + `predict_cache`): the engine replays the
///   pre-decoded [`specfetch_trace::PredictedTrace`] overlay from the
///   process-wide [`crate::trace_cache`] (enabling its batched fetch fast
///   path), and the finished result is memoised per
///   `(benchmark, window, config)`;
/// - `--no-predict-cache`: replays the shared recording without the
///   overlay or memo;
/// - `--no-trace-cache`: re-interprets the workload per run (the
///   pre-sharing behaviour).
///
/// # Errors
///
/// Returns [`SpecfetchError::Workload`] if the spec fails to generate
/// (replay sources are acquired *before* the memo fill, so acquisition
/// failures surface here instead of panicking inside a cache cell), and
/// [`SpecfetchError::Analysis`] if the generated image fails the static
/// CFG preflight ([`crate::analysis::preflight`]) — rendered as a
/// `FAILED(analysis: …)` cell by the isolated grid.
pub fn try_simulate_benchmark(
    bench: &Benchmark,
    cfg: SimConfig,
    opts: RunOptions,
) -> Result<SimResult, SpecfetchError> {
    // Static preflight: a structurally broken image must never reach the
    // engine (its wrong-path walks would silently skew the very cache
    // statistics being measured). Memoized per process, so this is one
    // verifier walk per benchmark — not per grid point.
    crate::analysis::preflight(bench)?;
    let instrs = opts.instrs_per_benchmark;
    if opts.use_memo() {
        // Memo / result-store check BEFORE any trace work: a warm run
        // (every point already stored) never records, decodes, or loads
        // a trace at all — it is render-only.
        match resolve_stored(bench, instrs, cfg, &opts) {
            Some(Ok(r)) => return Ok(r),
            Some(Err(f)) => return Err(SpecfetchError::StoredFailure { reason: f.reason }),
            None => {}
        }
        let r = if opts.use_overlay() {
            let source = crate::trace_cache::try_predicted_source(bench, instrs)?;
            crate::trace_cache::memoized_result(bench, instrs, cfg, || {
                Simulator::new(cfg).run(source)
            })
        } else {
            // Below the overlay threshold: replay the shared recording
            // directly (byte-identical, no decode pass) but keep the memo.
            let source = crate::trace_cache::try_recorded_source(bench, instrs)?;
            crate::trace_cache::memoized_result(bench, instrs, cfg, || {
                Simulator::new(cfg).run(source)
            })
        };
        persist(bench, instrs, cfg, &r, &opts);
        Ok(r)
    } else if opts.share_traces {
        let source = crate::trace_cache::try_recorded_source(bench, opts.instrs_per_benchmark)?;
        Ok(Simulator::new(cfg).run(source))
    } else {
        let workload = bench.workload().map_err(|e| SpecfetchError::Workload {
            bench: bench.name.to_owned(),
            detail: e.to_string(),
        })?;
        let source = workload.executor(bench.path_seed()).take_instrs(opts.instrs_per_benchmark);
        Ok(Simulator::new(cfg).run(source))
    }
}

/// Streams one finished batch of cells (`--stream`): one `[row] ...`
/// line per grid point, in completion order, delivered through the
/// per-job row sink ([`crate::diag::row`]) — stderr for the CLI, the
/// controller's buffer for service jobs. Stdout — and therefore the
/// golden byte-identity — is untouched.
pub(crate) fn stream_cells(points: &[GridPoint], cells: &[(usize, GridCell)], opts: &RunOptions) {
    if !opts.stream {
        return;
    }
    for (i, cell) in cells {
        let p = &points[*i];
        let row = match cell {
            Ok(r) => format!(
                "[row] {} cfg={:016x} ispi={:.4}",
                p.benchmark.name,
                p.cfg.canonical_hash(),
                r.ispi()
            ),
            Err(f) => format!(
                "[row] {} cfg={:016x} {}",
                p.benchmark.name,
                p.cfg.canonical_hash(),
                f.cell()
            ),
        };
        crate::diag::row(opts.job, &row);
    }
}

/// Infallible convenience over [`try_simulate_benchmark`].
///
/// # Panics
///
/// Panics on trace/workload failure (never expected for the calibrated
/// suite; the isolated grid captures such a panic per point).
pub fn simulate_benchmark(bench: &Benchmark, cfg: SimConfig, opts: RunOptions) -> SimResult {
    try_simulate_benchmark(bench, cfg, opts)
        .unwrap_or_else(|e| panic!("simulating {}: {e}", bench.name))
}

/// Simulates every grid point under per-point isolation, returning one
/// [`GridCell`] per point in input order.
///
/// This is the batched multi-config replay the experiments are built on:
/// points are scheduled **grouped by benchmark**, so all configurations
/// that replay the same trace run back-to-back on one worker — the
/// recording and its overlay are materialised once and stay hot across
/// the whole batch, and the result memo collapses grid points that
/// recur across experiments (every table re-runs the shared baselines).
/// Groups, not points, are the parallel unit; point order within the
/// result is the input order regardless of grouping.
///
/// With [`RunOptions::lockstep`] (the default on the overlay path) each
/// group runs as **one config-lockstep batch**: a single pass over the
/// shared overlay advances a lane per distinct configuration, decoding
/// each fetch window once and fanning it out to every lane (see
/// [`run_lockstep`] and DESIGN §5h). `--no-lockstep` falls back to one
/// sequential replay per point; the cells are byte-identical either way.
///
/// Isolation: each point runs under `catch_unwind`, with the
/// fault-injection [`fault::guard`] fired first (points are numbered in
/// input order via [`fault::reserve`], so `--inject point=<exp>:<n>,...`
/// is deterministic at any parallelism). A panic or typed error in one
/// point yields that point's `Err(CellFailure)`; every other point still
/// simulates — in lockstep form, a panicking lane costs the points of
/// that configuration while sibling lanes complete.
pub fn try_run_grid(points: &[GridPoint], opts: &RunOptions) -> Vec<GridCell> {
    let base = fault::reserve(points.len());
    let jbase = journal::reserve(opts.job, points.len());
    if let Some(jb) = jbase {
        for (i, p) in points.iter().enumerate() {
            journal::record_scheduled(
                opts.job,
                jb + i as u64,
                p.benchmark.name,
                opts.instrs_per_benchmark,
                p.cfg.canonical_hash(),
            );
        }
    }
    let mut out: Vec<Option<GridCell>> = (0..points.len()).map(|_| None).collect();
    let mut attempts: Vec<u32> = vec![0; points.len()];

    // A `--resume` replay: terminal FAILED cells come back from the
    // journal verbatim (attempt counts included) without running;
    // completed points resolve through the memo/store as usual.
    if let Some(jb) = jbase {
        for (i, slot) in out.iter_mut().enumerate() {
            if let Some(journal::Replayed::Failed { attempts: a, reason }) =
                journal::replayed(opts.job, jb + i as u64)
            {
                if !opts.retry_failed {
                    *slot = Some(Err(CellFailure::from_replay(reason)));
                    attempts[i] = a;
                }
            }
        }
    }

    let todo: Vec<usize> = (0..points.len()).filter(|&i| out[i].is_none()).collect();
    run_pass(points, &todo, base, jbase, 0, opts, &mut out, &mut attempts);

    // Bounded retry of transient failures (worker death, timeouts,
    // injected `err`) with seeded exponential backoff. Terminal and
    // interrupted cells are left alone.
    for attempt in 1..=opts.retries {
        if supervise::job_shutdown_requested(opts.job) {
            break;
        }
        let retry: Vec<usize> = (0..points.len())
            .filter(|&i| matches!(&out[i], Some(Err(f)) if f.kind == FailKind::Transient))
            .collect();
        if retry.is_empty() {
            break;
        }
        std::thread::sleep(supervise::backoff_delay(attempt, opts.backoff_ms, points.len() as u64));
        run_pass(points, &retry, base, jbase, attempt, opts, &mut out, &mut attempts);
    }

    // A shutdown drain leaves merely-interrupted points looking like
    // transient failures: a terminal SIGINT reaches the handler-less
    // worker children in the foreground process group, so their
    // in-flight points come back as `worker exited: ...`, and the retry
    // loop above breaks instead of re-dispatching them. Reclassify them
    // before bookkeeping — journaling them as terminal (and negatively
    // caching them) would make `--resume` replay the interruption
    // verbatim instead of recomputing.
    if supervise::job_shutdown_requested(opts.job) {
        for slot in &mut out {
            if let Some(Err(f)) = slot {
                if f.kind == FailKind::Transient {
                    *f = CellFailure::interrupted();
                }
            }
        }
    }

    // Terminal bookkeeping: journal every outcome, negatively cache
    // terminal failures (never interrupted points), and tally the
    // partial-summary counters.
    let (mut completed, mut failed, mut interrupted) = (0u64, 0u64, 0u64);
    for (i, slot) in out.iter().enumerate() {
        match slot {
            Some(Ok(_)) => {
                completed += 1;
                if let Some(jb) = jbase {
                    journal::record_completed(opts.job, jb + i as u64);
                }
            }
            Some(Err(f)) if f.kind == FailKind::Interrupted => {
                interrupted += 1;
                if let Some(jb) = jbase {
                    journal::record_interrupted(opts.job, jb + i as u64);
                }
            }
            Some(Err(f)) => {
                failed += 1;
                // A replayed failure (negative cache or journal) is
                // already persisted — re-recording it would pollute the
                // store counters and grow the WAL on every resume.
                if !f.replayed {
                    if let Some(jb) = jbase {
                        journal::record_failed(
                            opts.job,
                            jb + i as u64,
                            attempts[i].max(1),
                            &f.reason,
                        );
                    }
                    if opts.use_memo() && opts.result_store {
                        let p = &points[i];
                        crate::result_store::put_failed(
                            p.benchmark.name,
                            opts.instrs_per_benchmark,
                            &p.cfg,
                            &f.reason,
                        );
                    }
                }
            }
            None => {}
        }
    }
    supervise::note_outcomes(completed, failed, interrupted);

    // Every index is filled by construction; degrade an impossible gap
    // to a failed cell instead of unwinding past the isolation layer.
    out.into_iter()
        .map(|r| r.unwrap_or_else(|| Err(CellFailure::permanent("grid point was never simulated"))))
        .collect()
}

/// Runs one attempt over the `idxs` subset of `points`, filling `out`.
/// Attempt 0 is the full grid; retry passes re-run only their transient
/// failures. Sharded execution (`--workers`) dispatches through the
/// worker pool; otherwise (or when the pool cannot start) the pass runs
/// in-process, grouped by benchmark.
#[allow(clippy::too_many_arguments)]
fn run_pass(
    points: &[GridPoint],
    idxs: &[usize],
    base: u64,
    jbase: Option<u64>,
    attempt: u32,
    opts: &RunOptions,
    out: &mut [Option<GridCell>],
    attempts: &mut [u32],
) {
    if idxs.is_empty() {
        return;
    }
    if supervise::job_shutdown_requested(opts.job) {
        for &i in idxs {
            out[i] = Some(Err(CellFailure::interrupted()));
        }
        return;
    }
    if let Some(jb) = jbase {
        for &i in idxs {
            journal::record_attempt(opts.job, jb + i as u64, attempt);
        }
    }
    for &i in idxs {
        attempts[i] = attempt + 1;
    }
    let cells = if opts.workers > 0 {
        match crate::worker::try_run_grid_sharded(points, idxs, base, attempt, opts) {
            Some(cells) => cells,
            // The worker pool could not start (e.g. the executable cannot
            // re-spawn itself); a warning has been printed and the pass
            // runs in-process instead.
            None => run_pass_inprocess(points, idxs, base, attempt, opts),
        }
    } else {
        run_pass_inprocess(points, idxs, base, attempt, opts)
    };
    for (i, c) in cells {
        out[i] = Some(c);
    }
}

/// The in-process arm of [`run_pass`]: benchmark-grouped, parallel over
/// groups, lockstep within a group when enabled. A shutdown request
/// drains at group boundaries — groups not yet started are recorded as
/// interrupted without simulating.
fn run_pass_inprocess(
    points: &[GridPoint],
    idxs: &[usize],
    base: u64,
    attempt: u32,
    opts: &RunOptions,
) -> Vec<(usize, GridCell)> {
    let mut groups: Vec<(&'static Benchmark, Vec<usize>)> = Vec::new();
    for &i in idxs {
        let p = &points[i];
        match groups.iter_mut().find(|(b, _)| std::ptr::eq(*b, p.benchmark)) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((p.benchmark, vec![i])),
        }
    }
    let opts_by_val = *opts;
    let done = par_map(groups, opts.parallel, |(b, idxs)| {
        if supervise::job_shutdown_requested(opts_by_val.job) {
            return idxs.into_iter().map(|i| (i, Err(CellFailure::interrupted()))).collect();
        }
        let cells = if opts_by_val.use_lockstep() {
            run_group_lockstep(b, idxs, points, base, attempt, opts_by_val)
        } else {
            idxs.into_iter()
                .map(|i| {
                    let cell = panic::catch_unwind(AssertUnwindSafe(|| {
                        fault::guard(base + i as u64, attempt, opts_by_val.point_timeout_secs)?;
                        try_simulate_benchmark(b, points[i].cfg, opts_by_val)
                    }));
                    let cell = match cell {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(e)) => Err(CellFailure::from_error(&e)),
                        Err(payload) => Err(CellFailure::from_panic(payload.as_ref())),
                    };
                    (i, cell)
                })
                .collect::<Vec<(usize, GridCell)>>()
        };
        stream_cells(points, &cells, &opts_by_val);
        cells
    });
    done.into_iter().flatten().collect()
}

/// Runs one benchmark group's grid points as a config-lockstep batch:
/// one pass over the shared overlay advances a lane per distinct
/// configuration (see [`run_lockstep`]).
///
/// Per-point semantics match the sequential arm exactly:
///
/// - the fault-injection guard and the static preflight fire per point,
///   in input order, so `--inject` numbering is unchanged;
/// - memo-hit configurations are served from the result cache without
///   occupying a lane, and finished lanes fill the memo;
/// - a panicking lane yields `FAILED(...)` for that configuration's
///   points while sibling lanes complete (sequentially, each such point
///   would deterministically re-panic on its own);
/// - a configuration the front end rejects falls back to the sequential
///   per-point path, which runs it unvalidated exactly as [`Simulator`]
///   does.
fn run_group_lockstep(
    b: &'static Benchmark,
    idxs: Vec<usize>,
    points: &[GridPoint],
    base: u64,
    attempt: u32,
    opts: RunOptions,
) -> Vec<(usize, GridCell)> {
    let instrs = opts.instrs_per_benchmark;
    // Per-point guard + preflight; a failure here costs only that cell.
    let cells: Vec<(usize, Option<GridCell>)> = idxs
        .into_iter()
        .map(|i| {
            let pre = panic::catch_unwind(AssertUnwindSafe(|| {
                fault::guard(base + i as u64, attempt, opts.point_timeout_secs)?;
                crate::analysis::preflight(b)
            }));
            let early = match pre {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(Err(CellFailure::from_error(&e))),
                Err(payload) => Some(Err(CellFailure::from_panic(payload.as_ref()))),
            };
            (i, early)
        })
        .collect();

    // Deduplicate configurations and resolve memo / result-store hits
    // BEFORE touching the trace layer: a fully warm batch returns here
    // without recording or decoding anything.
    let mut resolved: Vec<(SimConfig, GridCell)> = Vec::new();
    let mut pending: Vec<SimConfig> = Vec::new();
    for &(i, ref early) in &cells {
        let cfg = points[i].cfg;
        if early.is_some() || resolved.iter().any(|(c, _)| *c == cfg) || pending.contains(&cfg) {
            continue;
        }
        match resolve_stored(b, instrs, cfg, &opts) {
            Some(cell) => resolved.push((cfg, cell)),
            None => pending.push(cfg),
        }
    }

    if !pending.is_empty() {
        // One shared overlay for the whole batch; failing to build it
        // fails every unresolved point (the sequential arm would hit the
        // same error per point), while stored points still render.
        match crate::trace_cache::try_predicted_trace(b, instrs) {
            Err(e) => {
                let fail: GridCell = Err(CellFailure::from_error(&e));
                resolved.extend(pending.into_iter().map(|cfg| (cfg, fail.clone())));
            }
            Ok(overlay) => {
                let mut fronts: Vec<FrontEnd> = Vec::new();
                for cfg in pending {
                    match FrontEnd::build(cfg) {
                        Ok(fe) => fronts.push(fe),
                        Err(_) => {
                            let cell = panic::catch_unwind(AssertUnwindSafe(|| {
                                try_simulate_benchmark(b, cfg, opts)
                            }));
                            let cell = match cell {
                                Ok(Ok(r)) => Ok(r),
                                Ok(Err(e)) => Err(CellFailure::from_error(&e)),
                                Err(payload) => Err(CellFailure::from_panic(payload.as_ref())),
                            };
                            resolved.push((cfg, cell));
                        }
                    }
                }
                let lane_cfgs: Vec<SimConfig> = fronts.iter().map(|f| *f.config()).collect();
                for (cfg, outcome) in lane_cfgs.into_iter().zip(run_lockstep(&overlay, fronts)) {
                    let cell = match outcome {
                        Ok(r) => {
                            crate::trace_cache::store_result(b, instrs, cfg, r.clone());
                            persist(b, instrs, cfg, &r, &opts);
                            Ok(r)
                        }
                        Err(payload) => Err(CellFailure::from_panic(payload.as_ref())),
                    };
                    resolved.push((cfg, cell));
                }
            }
        }
    }

    cells
        .into_iter()
        .map(|(i, early)| {
            let cell = early.unwrap_or_else(|| {
                resolved
                    .iter()
                    .find(|(c, _)| *c == points[i].cfg)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_else(|| {
                        Err(CellFailure::permanent("grid point was never simulated"))
                    })
            });
            (i, cell)
        })
        .collect()
}

/// Infallible convenience over [`try_run_grid`].
///
/// # Panics
///
/// Panics if any grid point fails (tests and examples treat a failed
/// point as a bug; rendered reports use [`try_run_grid`] and flag the
/// cell instead).
pub fn run_grid(points: &[GridPoint], opts: &RunOptions) -> Vec<SimResult> {
    try_run_grid(points, opts)
        .into_iter()
        .map(|cell| cell.unwrap_or_else(|f| panic!("grid point failed: {}", f.reason)))
        .collect()
}

/// Maps `f` over `items` with full per-item isolation and deterministic
/// fault-point numbering — the row-granular counterpart of
/// [`try_run_grid`] for experiments whose unit of work is not a single
/// grid point (Table 2's characterisation rows, the ablation sweeps).
pub(crate) fn isolated_map<T, R, F>(items: Vec<T>, opts: &RunOptions, f: F) -> Vec<Measured<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Result<R, SpecfetchError> + Sync,
{
    let base = fault::reserve(items.len());
    let indexed: Vec<(u64, T)> =
        items.into_iter().enumerate().map(|(i, t)| (base + i as u64, t)).collect();
    try_par_map(indexed, opts.parallel, |(idx, item)| {
        fault::guard(idx, 0, opts.point_timeout_secs)?;
        f(item)
    })
    .into_iter()
    .map(|r| match r {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(CellFailure::from_error(&e)),
        // A captured panic arrives as `PointPanic`; its cell reason is
        // the raw panic message, matching the pre-typed rendering.
        Err(e) => Err(CellFailure::from_error(&e)),
    })
    .collect()
}

/// Runs the full 13-benchmark suite under the configuration produced by
/// `cfg_for` (called once per benchmark), in suite order.
pub fn suite_results(
    opts: &RunOptions,
    cfg_for: impl Fn(&Benchmark) -> SimConfig + Sync,
) -> Vec<BenchResult> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| BenchResult {
        benchmark: b,
        result: simulate_benchmark(b, cfg_for(b), opts),
    })
}

/// The arithmetic mean of `xs`.
pub(crate) fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The arithmetic mean of the `Ok` values of `xs` — failed cells are
/// excluded from report averages rather than zeroing them.
pub(crate) fn mean_ok<'a>(xs: impl IntoIterator<Item = &'a Measured<f64>>) -> f64 {
    mean(xs.into_iter().filter_map(|m| m.as_ref().ok().copied()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::FetchPolicy;

    #[test]
    fn simulate_benchmark_is_deterministic() {
        let b = Benchmark::by_name("li").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(20_000);
        let a = simulate_benchmark(b, cfg, opts);
        let c = simulate_benchmark(b, cfg, opts);
        assert_eq!(a, c);
    }

    #[test]
    fn shared_and_legacy_paths_agree() {
        let b = Benchmark::by_name("gcc").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(10_000);
        let shared = simulate_benchmark(b, cfg, opts);
        let legacy = simulate_benchmark(b, cfg, opts.with_share_traces(false));
        assert_eq!(shared, legacy);
    }

    #[test]
    fn overlay_and_plain_shared_paths_agree() {
        let b = Benchmark::by_name("doduc").unwrap();
        let opts = RunOptions::smoke().with_instrs(10_000);
        for policy in FetchPolicy::ALL {
            let mut cfg = SimConfig::paper_baseline();
            cfg.policy = policy;
            let overlay = simulate_benchmark(b, cfg, opts);
            let plain = simulate_benchmark(b, cfg, opts.with_predict_cache(false));
            assert_eq!(overlay, plain, "{policy}: overlay replay diverged");
        }
    }

    #[test]
    fn run_grid_matches_pointwise_runs_in_order() {
        let opts = RunOptions::smoke().with_instrs(8_000);
        let mut points = Vec::new();
        // Deliberately interleave benchmarks so grouping must scatter
        // results back to input order.
        for policy in [FetchPolicy::Oracle, FetchPolicy::Pessimistic] {
            for name in ["li", "gcc", "li", "cfront"] {
                let mut cfg = SimConfig::paper_baseline();
                cfg.policy = policy;
                points.push(GridPoint::new(Benchmark::by_name(name).unwrap(), cfg));
            }
        }
        let grid = run_grid(&points, &opts);
        assert_eq!(grid.len(), points.len());
        for (p, r) in points.iter().zip(&grid) {
            assert_eq!(*r, simulate_benchmark(p.benchmark, p.cfg, opts));
            assert_eq!(r.policy, p.cfg.policy);
        }
    }

    #[test]
    fn run_grid_agrees_without_any_caches() {
        let opts = RunOptions::smoke().with_instrs(6_000);
        let raw = opts.with_share_traces(false).with_predict_cache(false);
        let points: Vec<GridPoint> = FetchPolicy::ALL
            .into_iter()
            .map(|policy| {
                let mut cfg = SimConfig::paper_baseline();
                cfg.policy = policy;
                GridPoint::new(Benchmark::by_name("su2cor").unwrap(), cfg)
            })
            .collect();
        assert_eq!(run_grid(&points, &opts), run_grid(&points, &raw));
    }

    #[test]
    fn try_run_grid_cells_match_the_infallible_grid() {
        let opts = RunOptions::smoke().with_instrs(6_000);
        let points: Vec<GridPoint> = ["li", "gcc"]
            .into_iter()
            .map(|n| GridPoint::new(Benchmark::by_name(n).unwrap(), SimConfig::paper_baseline()))
            .collect();
        let cells = try_run_grid(&points, &opts);
        let plain = run_grid(&points, &opts);
        assert_eq!(cells.len(), plain.len());
        for (c, r) in cells.iter().zip(&plain) {
            assert_eq!(c.as_ref().unwrap(), r, "isolated cell diverged from the plain grid");
        }
    }

    #[test]
    fn isolated_map_captures_both_error_kinds() {
        let opts = RunOptions::smoke();
        let out = isolated_map(vec![0u32, 1, 2, 3], &opts, |x| match x {
            1 => Err(SpecfetchError::Injected { action: "err" }),
            2 => panic!("kaboom {x}"),
            other => Ok(other * 10),
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1].as_ref().unwrap_err().reason, "injected err");
        assert_eq!(out[2].as_ref().unwrap_err().reason, "kaboom 2");
        assert_eq!(out[3], Ok(30));
    }

    #[test]
    fn cell_failure_renders() {
        let f = CellFailure::permanent("injected panic");
        assert_eq!(f.cell(), "FAILED(injected panic)");
        let e = SpecfetchError::Injected { action: "err" };
        assert_eq!(CellFailure::from_error(&e).cell(), "FAILED(injected err)");
    }

    #[test]
    fn failure_kinds_classify_retryability() {
        let kind = |e: &SpecfetchError| CellFailure::from_error(e).kind;
        assert_eq!(kind(&SpecfetchError::Timeout { seconds: 1 }), FailKind::Transient);
        assert_eq!(kind(&SpecfetchError::Injected { action: "err" }), FailKind::Transient);
        assert_eq!(kind(&SpecfetchError::Interrupted), FailKind::Interrupted);
        assert_eq!(kind(&SpecfetchError::PointPanic { reason: "b".into() }), FailKind::Terminal);
        assert_eq!(
            kind(&SpecfetchError::StoredFailure { reason: "x".into() }),
            FailKind::Terminal,
            "negative-cache replays must not re-enter the retry loop"
        );
        assert_eq!(CellFailure::interrupted().kind, FailKind::Interrupted);
        assert_eq!(CellFailure::transient("x").kind, FailKind::Transient);
    }

    #[test]
    fn suite_results_covers_all_benchmarks_in_order() {
        let opts = RunOptions::smoke().with_instrs(5_000);
        let rs = suite_results(&opts, |_| SimConfig::paper_baseline());
        assert_eq!(rs.len(), 13);
        assert_eq!(rs[0].benchmark.name, "doduc");
        assert_eq!(rs[12].benchmark.name, "porky");
        for r in &rs {
            assert_eq!(r.result.policy, FetchPolicy::Resume);
            assert_eq!(r.result.correct_instrs, 5_000);
        }
    }

    #[test]
    fn helpers() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean([]), 0.0);
        let cells: Vec<Measured<f64>> = vec![Ok(1.0), Err(CellFailure::permanent("x")), Ok(3.0)];
        assert!((mean_ok(cells.iter()) - 2.0).abs() < 1e-12, "failed cells are skipped");
    }
}
