//! Shared simulation driving: one benchmark × one configuration.

use specfetch_core::{SimConfig, SimResult, Simulator};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::PathSource;

use crate::{par_map, RunOptions};

/// One benchmark's simulation outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchResult {
    /// Which benchmark.
    pub benchmark: &'static Benchmark,
    /// The measurements.
    pub result: SimResult,
}

/// Simulates one benchmark under `cfg` for `opts.instrs_per_benchmark`
/// dynamic instructions.
///
/// The correct path is fixed per benchmark (same generator seed, same
/// path seed), so different configurations replay the *same* execution —
/// the property every policy comparison in the paper relies on. With
/// `opts.share_traces` (the default) that path comes from the process-wide
/// [`crate::trace_cache`], so the workload is interpreted at most once per
/// (benchmark, window) no matter how many configurations replay it; the
/// legacy path re-interprets per call and produces the identical stream.
pub fn simulate_benchmark(bench: &Benchmark, cfg: SimConfig, opts: RunOptions) -> SimResult {
    if opts.share_traces {
        let source = crate::trace_cache::recorded_source(bench, opts.instrs_per_benchmark);
        Simulator::new(cfg).run(source)
    } else {
        let workload = bench.workload().expect("calibrated specs always generate");
        let source = workload.executor(bench.path_seed()).take_instrs(opts.instrs_per_benchmark);
        Simulator::new(cfg).run(source)
    }
}

/// Runs the full 13-benchmark suite under the configuration produced by
/// `cfg_for` (called once per benchmark), in suite order.
pub fn suite_results(
    opts: &RunOptions,
    cfg_for: impl Fn(&Benchmark) -> SimConfig + Sync,
) -> Vec<BenchResult> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| BenchResult {
        benchmark: b,
        result: simulate_benchmark(b, cfg_for(b), opts),
    })
}

/// The arithmetic mean of `xs`.
pub(crate) fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::FetchPolicy;

    #[test]
    fn simulate_benchmark_is_deterministic() {
        let b = Benchmark::by_name("li").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(20_000);
        let a = simulate_benchmark(b, cfg, opts);
        let c = simulate_benchmark(b, cfg, opts);
        assert_eq!(a, c);
    }

    #[test]
    fn shared_and_legacy_paths_agree() {
        let b = Benchmark::by_name("gcc").unwrap();
        let cfg = SimConfig::paper_baseline();
        let opts = RunOptions::smoke().with_instrs(10_000);
        let shared = simulate_benchmark(b, cfg, opts);
        let legacy = simulate_benchmark(b, cfg, opts.with_share_traces(false));
        assert_eq!(shared, legacy);
    }

    #[test]
    fn suite_results_covers_all_benchmarks_in_order() {
        let opts = RunOptions::smoke().with_instrs(5_000);
        let rs = suite_results(&opts, |_| SimConfig::paper_baseline());
        assert_eq!(rs.len(), 13);
        assert_eq!(rs[0].benchmark.name, "doduc");
        assert_eq!(rs[12].benchmark.name, "porky");
        for r in &rs {
            assert_eq!(r.result.policy, FetchPolicy::Resume);
            assert_eq!(r.result.correct_instrs, 5_000);
        }
    }

    #[test]
    fn helpers() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean([]), 0.0);
    }
}
