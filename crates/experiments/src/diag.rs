//! The diagnostics sink: every status line the execution path emits —
//! `[result-store] hits=H stores=S`, `[journal] <path>`, per-experiment
//! timings, warnings — funnels through here instead of calling
//! `eprintln!` directly, so one switch (`--quiet`) silences them all
//! and report payloads can never be polluted by counters.
//!
//! Two channels:
//!
//! - [`line`] — process-wide diagnostics. Stderr-only; suppressed when
//!   [`set_quiet`] has been called.
//! - [`row`] — per-grid-point `[row] ...` progress events (the
//!   `--stream` feed). A job with a registered sink ([`register_row_sink`])
//!   gets its rows delivered there — that is how the service streams
//!   chunked progress over HTTP — while unregistered jobs (the CLI)
//!   fall back to stderr. Rows are *data*, not chatter, so `--quiet`
//!   does not suppress them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// A registered per-job consumer of `[row]` events.
type RowSink = Box<dyn Fn(&str) + Send + Sync>;

static QUIET: AtomicBool = AtomicBool::new(false);

fn row_sinks() -> &'static Mutex<HashMap<u64, RowSink>> {
    static SINKS: OnceLock<Mutex<HashMap<u64, RowSink>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Suppresses (or re-enables) diagnostic [`line`]s — the `--quiet`
/// switch. Row events are unaffected.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::SeqCst);
}

/// Emits one diagnostic line to stderr, unless quieted.
pub fn line(text: &str) {
    if !QUIET.load(Ordering::SeqCst) {
        eprintln!("{text}");
    }
}

/// Registers `sink` as the consumer of job `job`'s `[row]` events,
/// replacing any previous sink. The service controller registers one
/// per running job; the CLI registers none and its rows go to stderr.
pub fn register_row_sink(job: u64, sink: impl Fn(&str) + Send + Sync + 'static) {
    let mut sinks = row_sinks().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    sinks.insert(job, Box::new(sink));
}

/// Unregisters job `job`'s row sink (controller cleanup).
pub fn clear_row_sink(job: u64) {
    let mut sinks = row_sinks().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    sinks.remove(&job);
}

/// Delivers one `[row] ...` event for `job`: to its registered sink if
/// one exists, to stderr otherwise.
pub fn row(job: u64, text: &str) {
    let sinks = row_sinks().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    match sinks.get(&job) {
        Some(sink) => sink(text),
        None => eprintln!("{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registered_sinks_capture_rows_and_clearing_restores_stderr() {
        // Ids chosen to stay clear of other tests: sinks are
        // process-wide.
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink_seen = Arc::clone(&seen);
        register_row_sink(0xDEAD_2001, move |r| sink_seen.lock().unwrap().push(r.to_owned()));
        row(0xDEAD_2001, "[row] li cfg=00 ispi=1.0");
        row(0xDEAD_2002, "[row] goes to stderr, not the sink");
        assert_eq!(seen.lock().unwrap().as_slice(), ["[row] li cfg=00 ispi=1.0"]);
        clear_row_sink(0xDEAD_2001);
        row(0xDEAD_2001, "[row] after clearing");
        assert_eq!(seen.lock().unwrap().len(), 1, "cleared sinks see nothing");
    }
}
