//! Experiment harness regenerating every table and figure of the ISCA '95
//! fetch-policy paper.
//!
//! Each paper artifact has a module under [`experiments`] exposing a
//! structured `data(...)` function (used by tests and Criterion benches)
//! and a `run(...)` function returning a rendered [`ExperimentReport`].
//! The `specfetch-repro` binary drives them:
//!
//! ```text
//! specfetch-repro --experiment table5 --instrs 2000000
//! specfetch-repro --experiment all --format markdown
//! ```
//!
//! | Id | Paper artifact | What it reproduces |
//! |---|---|---|
//! | `table2` | Table 2 | workload inventory: instruction counts, % branches |
//! | `table3` | Table 3 | miss rates (8K/32K) + PHT/BTB ISPI at depths 1 and 4 |
//! | `table4` | Table 4 | miss classification BM/SPo/SPr/WP + traffic ratio |
//! | `figure1` | Figure 1 | ISPI breakdown per policy, baseline (5-cycle penalty) |
//! | `figure2` | Figure 2 | ISPI breakdown per policy, 20-cycle penalty |
//! | `table5` | Table 5 | ISPI × speculation depth (1/2/4) × policy |
//! | `table6` | Table 6 | ISPI per policy with a 32K cache |
//! | `figure3` | Figure 3 | next-line prefetching at the baseline penalty |
//! | `figure4` | Figure 4 | next-line prefetching at the 20-cycle penalty |
//! | `table7` | Table 7 | memory-traffic ratios with prefetching |
//!
//! Every report prints measured values next to the paper's published
//! numbers (kept in [`paper`]), so shape comparisons are immediate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codec;
#[cfg(test)]
mod conformance;
pub mod diag;
pub mod disk_cache;
pub mod driver;
pub mod experiments;
pub mod fault;
pub mod journal;
mod options;
pub mod paper;
mod parallel;
pub mod registry;
mod report;
pub mod result_store;
mod runner;
pub mod scenario;
pub mod store;
pub mod supervise;
pub mod sweep;
mod table;
pub mod trace_cache;
pub mod worker;

pub use driver::{Driver, DriverEvents, DriverOutcome, JobSpec};
pub use options::RunOptions;
pub use parallel::{par_map, try_par_map};
pub use registry::{ExperimentEntry, REGISTRY};
pub use report::ExperimentReport;
pub use runner::{
    run_grid, simulate_benchmark, suite_results, try_run_grid, try_simulate_benchmark, BenchResult,
    CellFailure, FailKind, GridCell, GridPoint, Measured,
};
pub use scenario::{run_scenario, ConfigPoint, Metric, Scenario, ScenarioGrid};
pub use specfetch_core::SpecfetchError;
pub use store::{Progress, RunStore};
pub use sweep::{parse_sweep, SweepError};
pub use table::{Format, Table};

/// The paper-artifact experiment identifiers (`--experiment all`).
pub const EXPERIMENT_IDS: [&str; 10] = [
    "table2", "table3", "table4", "figure1", "figure2", "table5", "table6", "figure3", "figure4",
    "table7",
];

/// The ablation-study identifiers (`--experiment extras`), beyond the
/// paper's artifacts.
pub const EXTRA_EXPERIMENT_IDS: [&str; 5] =
    ["ablation-prefetch", "ablation-bpred", "ablation-assoc", "ablation-penalty", "ablation-bus"];

/// Whether `id` names an experiment [`run_experiment`] can dispatch
/// (paper artifact or ablation).
pub fn is_known_experiment(id: &str) -> bool {
    registry::find(id).is_some()
}

/// Runs one experiment by id, isolated: grid-point failures render as
/// `FAILED(...)` cells inside the report, and even a panic that escapes
/// an experiment's own aggregation logic is caught here and returned as
/// a typed error instead of unwinding through the caller.
///
/// # Errors
///
/// [`SpecfetchError::UnknownExperiment`] if `id` is not one of
/// [`EXPERIMENT_IDS`] / [`EXTRA_EXPERIMENT_IDS`];
/// [`SpecfetchError::ExperimentPanic`] if the experiment itself
/// panicked.
pub fn run_experiment(id: &str, opts: &RunOptions) -> Result<ExperimentReport, SpecfetchError> {
    if !is_known_experiment(id) {
        return Err(SpecfetchError::UnknownExperiment { id: id.to_owned() });
    }
    fault::begin_experiment(id);
    journal::begin_experiment(opts.job, id);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(id, opts))).map_err(
        |payload| SpecfetchError::ExperimentPanic {
            id: id.to_owned(),
            reason: parallel::panic_message(payload.as_ref()),
        },
    )
}

fn dispatch(id: &str, opts: &RunOptions) -> ExperimentReport {
    let entry =
        registry::find(id).unwrap_or_else(|| unreachable!("is_known_experiment admitted {id}"));
    (entry.run)(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let opts = RunOptions::smoke();
        let e = run_experiment("table99", &opts).unwrap_err();
        assert!(matches!(&e, SpecfetchError::UnknownExperiment { id } if id == "table99"));
        assert!(e.to_string().contains("table99"));
    }

    #[test]
    fn known_ids_are_known() {
        for id in EXPERIMENT_IDS.iter().chain(&EXTRA_EXPERIMENT_IDS) {
            assert!(is_known_experiment(id), "{id} should be known");
        }
        assert!(!is_known_experiment("table99"));
        assert!(!is_known_experiment(""));
    }

    /// The const id arrays (kept for the bench harness and CLI help) must
    /// partition the registry exactly, in registry order.
    #[test]
    fn id_arrays_mirror_the_registry() {
        let papers: Vec<&str> =
            REGISTRY.iter().filter(|e| e.paper_artifact).map(|e| e.id).collect();
        let extras: Vec<&str> =
            REGISTRY.iter().filter(|e| !e.paper_artifact).map(|e| e.id).collect();
        assert_eq!(papers, EXPERIMENT_IDS);
        assert_eq!(extras, EXTRA_EXPERIMENT_IDS);
    }

    #[test]
    fn every_listed_id_dispatches() {
        // Smoke-run the two cheapest to keep test time sane; the rest are
        // covered by integration tests and benches.
        let opts = RunOptions::smoke();
        for id in ["table2", "table4"] {
            let r = run_experiment(id, &opts).unwrap();
            assert_eq!(r.id, id);
            assert!(!r.table.render(Format::Plain).is_empty());
        }
    }
}
