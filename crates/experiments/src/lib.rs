//! Experiment harness regenerating every table and figure of the ISCA '95
//! fetch-policy paper.
//!
//! Each paper artifact has a module under [`experiments`] exposing a
//! structured `data(...)` function (used by tests and Criterion benches)
//! and a `run(...)` function returning a rendered [`ExperimentReport`].
//! The `specfetch-repro` binary drives them:
//!
//! ```text
//! specfetch-repro --experiment table5 --instrs 2000000
//! specfetch-repro --experiment all --format markdown
//! ```
//!
//! | Id | Paper artifact | What it reproduces |
//! |---|---|---|
//! | `table2` | Table 2 | workload inventory: instruction counts, % branches |
//! | `table3` | Table 3 | miss rates (8K/32K) + PHT/BTB ISPI at depths 1 and 4 |
//! | `table4` | Table 4 | miss classification BM/SPo/SPr/WP + traffic ratio |
//! | `figure1` | Figure 1 | ISPI breakdown per policy, baseline (5-cycle penalty) |
//! | `figure2` | Figure 2 | ISPI breakdown per policy, 20-cycle penalty |
//! | `table5` | Table 5 | ISPI × speculation depth (1/2/4) × policy |
//! | `table6` | Table 6 | ISPI per policy with a 32K cache |
//! | `figure3` | Figure 3 | next-line prefetching at the baseline penalty |
//! | `figure4` | Figure 4 | next-line prefetching at the 20-cycle penalty |
//! | `table7` | Table 7 | memory-traffic ratios with prefetching |
//!
//! Every report prints measured values next to the paper's published
//! numbers (kept in [`paper`]), so shape comparisons are immediate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod options;
pub mod paper;
mod parallel;
mod report;
mod runner;
mod table;
pub mod trace_cache;

pub use options::RunOptions;
pub use parallel::par_map;
pub use report::ExperimentReport;
pub use runner::{run_grid, simulate_benchmark, suite_results, BenchResult, GridPoint};
pub use table::{Format, Table};

use std::fmt;

/// The paper-artifact experiment identifiers (`--experiment all`).
pub const EXPERIMENT_IDS: [&str; 10] = [
    "table2", "table3", "table4", "figure1", "figure2", "table5", "table6", "figure3", "figure4",
    "table7",
];

/// The ablation-study identifiers (`--experiment extras`), beyond the
/// paper's artifacts.
pub const EXTRA_EXPERIMENT_IDS: [&str; 5] =
    ["ablation-prefetch", "ablation-bpred", "ablation-assoc", "ablation-penalty", "ablation-bus"];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns [`UnknownExperiment`] if `id` is not one of
/// [`EXPERIMENT_IDS`].
pub fn run_experiment(id: &str, opts: &RunOptions) -> Result<ExperimentReport, UnknownExperiment> {
    match id {
        "table2" => Ok(experiments::table2::run(opts)),
        "table3" => Ok(experiments::table3::run(opts)),
        "table4" => Ok(experiments::table4::run(opts)),
        "figure1" => Ok(experiments::figure1::run(opts)),
        "figure2" => Ok(experiments::figure2::run(opts)),
        "table5" => Ok(experiments::table5::run(opts)),
        "table6" => Ok(experiments::table6::run(opts)),
        "figure3" => Ok(experiments::figure3::run(opts)),
        "figure4" => Ok(experiments::figure4::run(opts)),
        "table7" => Ok(experiments::table7::run(opts)),
        "ablation-prefetch" => Ok(experiments::ablations::run_prefetch(opts)),
        "ablation-bpred" => Ok(experiments::ablations::run_bpred(opts)),
        "ablation-assoc" => Ok(experiments::ablations::run_assoc(opts)),
        "ablation-penalty" => Ok(experiments::ablations::run_penalty(opts)),
        "ablation-bus" => Ok(experiments::ablations::run_bus(opts)),
        other => Err(UnknownExperiment { id: other.to_owned() }),
    }
}

/// Returned by [`run_experiment`] for an unrecognised id.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownExperiment {
    /// The unrecognised identifier.
    pub id: String,
}

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown experiment {:?} (expected one of {:?})", self.id, EXPERIMENT_IDS)
    }
}

impl std::error::Error for UnknownExperiment {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_reported() {
        let opts = RunOptions::smoke();
        let e = run_experiment("table99", &opts).unwrap_err();
        assert!(e.to_string().contains("table99"));
    }

    #[test]
    fn every_listed_id_dispatches() {
        // Smoke-run the two cheapest to keep test time sane; the rest are
        // covered by integration tests and benches.
        let opts = RunOptions::smoke();
        for id in ["table2", "table4"] {
            let r = run_experiment(id, &opts).unwrap();
            assert_eq!(r.id, id);
            assert!(!r.table.render(Format::Plain).is_empty());
        }
    }
}
