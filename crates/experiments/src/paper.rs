//! The paper's published numbers, kept verbatim for side-by-side columns.
//!
//! Benchmark order everywhere matches the paper's tables (and
//! [`specfetch_synth::suite::Benchmark::all`]): doduc, fpppp, su2cor,
//! ditroff, gcc, li, tex, cfront, db++, groff, idl, lic, porky.
//!
//! Tables 2–3 reference values live with the benchmark models in
//! [`specfetch_synth::suite::PaperRow`]; this module holds the evaluation
//! tables (4–7).

/// Number of benchmarks in every table.
pub const N_BENCH: usize = 13;

/// Paper Table 4 row: miss-ratio classification under Optimistic vs
/// Oracle (percent of correct-path accesses) and the traffic ratio.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Table4Row {
    /// Both-Miss percentage.
    pub bm: f64,
    /// Spec-Pollute percentage.
    pub spo: f64,
    /// Spec-Prefetch percentage.
    pub spr: f64,
    /// Wrong-Path percentage.
    pub wp: f64,
    /// Traffic ratio (Optimistic fills / Oracle fills).
    pub tr: f64,
}

/// Paper Table 4 (baseline: 8K, penalty 5, depth 4).
pub const TABLE4: [Table4Row; N_BENCH] = [
    Table4Row { bm: 2.58, spo: 0.10, spr: 0.36, wp: 0.58, tr: 1.11 }, // doduc
    Table4Row { bm: 7.18, spo: 0.03, spr: 0.08, wp: 0.15, tr: 1.01 }, // fpppp
    Table4Row { bm: 1.24, spo: 0.01, spr: 0.09, wp: 0.10, tr: 1.01 }, // su2cor
    Table4Row { bm: 2.27, spo: 0.38, spr: 0.92, wp: 2.01, tr: 1.46 }, // ditroff
    Table4Row { bm: 3.09, spo: 0.48, spr: 1.40, wp: 3.25, tr: 1.52 }, // gcc
    Table4Row { bm: 2.43, spo: 0.42, spr: 0.90, wp: 2.05, tr: 1.47 }, // li
    Table4Row { bm: 2.36, spo: 0.25, spr: 0.49, wp: 1.24, tr: 1.35 }, // tex
    Table4Row { bm: 5.22, spo: 0.63, spr: 2.02, wp: 4.67, tr: 1.45 }, // cfront
    Table4Row { bm: 1.15, spo: 0.23, spr: 0.42, wp: 1.02, tr: 1.52 }, // db++
    Table4Row { bm: 3.72, spo: 0.70, spr: 1.61, wp: 3.95, tr: 1.57 }, // groff
    Table4Row { bm: 1.67, spo: 0.14, spr: 0.49, wp: 1.03, tr: 1.31 }, // idl
    Table4Row { bm: 2.56, spo: 0.36, spr: 1.37, wp: 2.62, tr: 1.41 }, // lic
    Table4Row { bm: 1.81, spo: 0.35, spr: 0.70, wp: 1.67, tr: 1.53 }, // porky
];

/// ISPI of the five policies in the paper's order: Oracle, Optimistic,
/// Resume, Pessimistic, Decode.
pub type PolicyIspi = [f64; 5];

/// Paper Table 5: ISPI per policy at speculation depths 1, 2, and 4
/// (8K cache, 5-cycle penalty). Index as `TABLE5[bench][depth_idx]` with
/// `depth_idx` 0/1/2 for depths 1/2/4.
pub const TABLE5: [[PolicyIspi; 3]; N_BENCH] = [
    // doduc
    [
        [1.19, 1.20, 1.17, 1.46, 1.43],
        [1.10, 1.12, 1.08, 1.37, 1.35],
        [1.00, 1.02, 0.97, 1.27, 1.25],
    ],
    // fpppp
    [
        [1.64, 1.64, 1.64, 2.24, 2.22],
        [1.59, 1.60, 1.59, 2.19, 2.18],
        [1.58, 1.59, 1.58, 2.18, 2.17],
    ],
    // su2cor
    [
        [0.46, 0.45, 0.45, 0.58, 0.56],
        [0.40, 0.39, 0.38, 0.52, 0.49],
        [0.37, 0.36, 0.36, 0.50, 0.47],
    ],
    // ditroff
    [
        [2.02, 2.09, 2.01, 2.35, 2.29],
        [1.68, 1.80, 1.67, 2.01, 1.96],
        [1.52, 1.68, 1.52, 1.84, 1.84],
    ],
    // gcc
    [
        [2.33, 2.46, 2.34, 2.73, 2.71],
        [1.99, 2.19, 2.01, 2.40, 2.39],
        [1.87, 2.11, 1.88, 2.28, 2.30],
    ],
    // li
    [
        [2.04, 2.10, 2.01, 2.35, 2.31],
        [1.65, 1.72, 1.62, 1.98, 1.91],
        [1.54, 1.73, 1.54, 1.88, 1.86],
    ],
    // tex
    [
        [1.28, 1.34, 1.28, 1.55, 1.52],
        [1.11, 1.19, 1.12, 1.38, 1.36],
        [1.07, 1.18, 1.07, 1.34, 1.33],
    ],
    // cfront
    [
        [2.68, 2.88, 2.69, 3.32, 3.30],
        [2.45, 2.73, 2.46, 3.09, 3.10],
        [2.40, 2.73, 2.41, 3.06, 3.09],
    ],
    // db++
    [
        [1.43, 1.50, 1.46, 1.58, 1.56],
        [1.00, 1.09, 1.03, 1.15, 1.15],
        [0.87, 0.98, 0.90, 1.02, 1.09],
    ],
    // groff
    [
        [2.53, 2.75, 2.59, 3.02, 2.99],
        [2.18, 2.47, 2.24, 2.67, 2.66],
        [2.09, 2.43, 2.15, 2.58, 2.60],
    ],
    // idl
    [
        [1.74, 1.79, 1.74, 1.94, 1.93],
        [1.30, 1.35, 1.29, 1.51, 1.49],
        [1.09, 1.15, 1.07, 1.30, 1.28],
    ],
    // lic
    [
        [2.13, 2.22, 2.10, 2.48, 2.46],
        [1.77, 1.89, 1.72, 2.13, 2.11],
        [1.63, 1.78, 1.57, 2.00, 2.01],
    ],
    // porky
    [
        [2.00, 2.11, 2.02, 2.24, 2.23],
        [1.49, 1.61, 1.50, 1.74, 1.72],
        [1.25, 1.40, 1.26, 1.50, 1.51],
    ],
];

/// Paper Table 6: ISPI per policy, 32K direct-mapped cache, 5-cycle
/// penalty, depth 4.
pub const TABLE6: [PolicyIspi; N_BENCH] = [
    [0.52, 0.53, 0.51, 0.56, 0.57], // doduc
    [0.35, 0.35, 0.35, 0.44, 0.44], // fpppp
    [0.12, 0.12, 0.12, 0.12, 0.12], // su2cor
    [1.03, 1.08, 1.01, 1.10, 1.10], // ditroff
    [1.33, 1.43, 1.32, 1.49, 1.51], // gcc
    [0.89, 1.04, 0.92, 0.90, 0.96], // li
    [0.70, 0.74, 0.69, 0.80, 0.80], // tex
    [1.50, 1.70, 1.50, 1.74, 1.79], // cfront
    [0.65, 0.69, 0.65, 0.69, 0.69], // db++
    [1.39, 1.56, 1.43, 1.55, 1.58], // groff
    [0.79, 0.82, 0.77, 0.85, 0.85], // idl
    [1.19, 1.29, 1.17, 1.36, 1.37], // lic
    [0.89, 0.93, 0.88, 0.95, 0.97], // porky
];

/// Paper Table 7: memory-traffic ratio of Oracle/Resume/Pessimistic *with*
/// next-line prefetching, relative to Oracle *without* prefetching
/// (baseline architecture).
pub const TABLE7: [[f64; 3]; N_BENCH] = [
    [1.22, 1.28, 1.23], // doduc
    [1.02, 1.03, 1.03], // fpppp
    [1.26, 1.27, 1.26], // su2cor
    [1.41, 1.68, 1.47], // ditroff
    [1.39, 1.62, 1.45], // gcc
    [1.29, 1.62, 1.29], // li
    [1.34, 1.54, 1.38], // tex
    [1.35, 1.56, 1.39], // cfront
    [1.43, 1.74, 1.47], // db++
    [1.46, 1.71, 1.49], // groff
    [1.64, 1.81, 1.67], // idl
    [1.28, 1.52, 1.32], // lic
    [1.51, 1.83, 1.54], // porky
];

/// The five benchmarks Figures 1–4 break down (representative of the
/// Fortran / C / C++ groups).
pub const FIGURE_BENCHMARKS: [&str; 5] = ["doduc", "gcc", "li", "groff", "lic"];

/// [`FIGURE_BENCHMARKS`] resolved against the calibrated suite, in
/// figure order.
pub fn figure_benches() -> Vec<&'static specfetch_synth::suite::Benchmark> {
    let resolved: Vec<_> = FIGURE_BENCHMARKS
        .iter()
        .filter_map(|n| specfetch_synth::suite::Benchmark::all().iter().find(|b| b.name == *n))
        .collect();
    debug_assert_eq!(resolved.len(), FIGURE_BENCHMARKS.len(), "figure benchmarks exist");
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_synth::suite::Benchmark;

    #[test]
    fn reference_tables_cover_the_suite() {
        assert_eq!(Benchmark::all().len(), N_BENCH);
        assert_eq!(TABLE4.len(), N_BENCH);
        assert_eq!(TABLE5.len(), N_BENCH);
        assert_eq!(TABLE6.len(), N_BENCH);
        assert_eq!(TABLE7.len(), N_BENCH);
    }

    #[test]
    fn figure_benchmarks_exist() {
        for name in FIGURE_BENCHMARKS {
            assert!(Benchmark::by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn paper_averages_match_the_published_average_rows() {
        // Table 5 depth-4 published averages: 1.41 1.55 1.41 1.75 1.75.
        let published = [1.41, 1.55, 1.41, 1.75, 1.75];
        for (p, &want) in published.iter().enumerate() {
            let avg = TABLE5.iter().map(|b| b[2][p]).sum::<f64>() / N_BENCH as f64;
            assert!((avg - want).abs() < 0.01, "avg {avg} vs published {want}");
        }
        // Table 4 published averages.
        let bm = TABLE4.iter().map(|r| r.bm).sum::<f64>() / N_BENCH as f64;
        assert!((bm - 2.87).abs() < 0.01);
        let tr = TABLE4.iter().map(|r| r.tr).sum::<f64>() / N_BENCH as f64;
        assert!((tr - 1.36).abs() < 0.01);
    }

    #[test]
    fn paper_trends_hold_in_reference_data() {
        // Depth 4 beats depth 1 for every benchmark and policy (Table 5).
        for b in &TABLE5 {
            for (&d4, &d1) in b[2].iter().zip(b[0].iter()) {
                assert!(d4 <= d1 + 1e-9);
            }
        }
        // Resume ties-or-beats Pessimistic at the small penalty.
        for b in &TABLE5 {
            assert!(b[2][2] <= b[2][3] + 1e-9);
        }
    }
}
