//! `--sweep` spec parsing: a user-defined scenario from the command line.
//!
//! A spec is whitespace-separated `axis=value[,value...]` terms, e.g.
//!
//! ```text
//! policy=Res,Pess cache=8K,32K penalty=5,20 depth=1,2,4 metric=ispi
//! ```
//!
//! The configuration axes cross-multiply (in the order written, leftmost
//! outermost) into one [`ConfigPoint`] per combination; `bench` restricts
//! the row axis and `metric` picks the projection. Every axis name and
//! value is validated up front: a typo is rejected with a
//! "did you mean" hint before anything simulates, mirroring the
//! unknown-experiment-id treatment (`specfetch-repro` exits 2).

use specfetch_core::{FetchPolicy, SimConfig};
use specfetch_synth::suite::Benchmark;

use crate::scenario::{ConfigPoint, Metric, Scenario};

/// Why a sweep spec was rejected; `Display` carries the full
/// user-facing message including any "did you mean" hint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepError {
    /// The user-facing rejection message.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SweepError {}

/// The configuration axes a sweep can vary, with the value syntax each
/// accepts.
pub const AXES: [(&str, &str); 10] = [
    ("policy", "Oracle,Opt,Res,Pess,Dec,Dyn"),
    ("cache", "cache size, e.g. 8K,32K"),
    ("line", "line bytes, e.g. 16,32,64"),
    ("assoc", "associativity, e.g. 1,2,4"),
    ("penalty", "miss penalty cycles, e.g. 5,20"),
    ("depth", "speculation depth, e.g. 1,2,4"),
    ("width", "issue width, e.g. 2,4,8"),
    ("bus", "bus transaction slots, e.g. 1,2,4"),
    ("prefetch", "off,nl,target,both,stream"),
    ("bench", "benchmark names, e.g. gcc,li (row axis)"),
];

const PREFETCH_MODES: [&str; 5] = ["off", "nl", "target", "both", "stream"];

fn policy_names() -> Vec<String> {
    let mut names = Vec::new();
    for p in FetchPolicy::ALL.into_iter().chain([FetchPolicy::Dynamic]) {
        for n in [p.short_name().to_owned(), p.to_string()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    names
}

/// Levenshtein edit distance, for "did you mean" hints.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) =
        (a.to_lowercase().chars().collect(), b.to_lowercase().chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance budget, as a
/// ` — did you mean "x"?` suffix (empty when nothing is close). Shared
/// with [`crate::driver`]'s experiment-id validation so HTTP 400s hint
/// the same way sweep errors do.
pub(crate) fn did_you_mean<'a>(
    given: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> String {
    candidates
        .into_iter()
        .map(|c| (edit_distance(given, c), c))
        .filter(|&(d, c)| d <= (c.len() / 2).max(1))
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| format!(" — did you mean {c:?}?"))
        .unwrap_or_default()
}

fn err(message: String) -> SweepError {
    SweepError { message }
}

fn parse_int<T: std::str::FromStr>(axis: &str, v: &str) -> Result<T, SweepError> {
    v.parse().map_err(|_| err(format!("sweep axis {axis}: {v:?} is not a number")))
}

/// Cache sizes accept `8K`/`32K` suffixes or raw byte counts.
fn parse_cache_size(v: &str) -> Result<u64, SweepError> {
    let (digits, mult) = match v.strip_suffix(['K', 'k']) {
        Some(d) => (d, 1024),
        None => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| err(format!("sweep axis cache: {v:?} is not a size (try 8K or 32K)")))?;
    Ok(n * mult)
}

/// A single parsed axis value, pre-validated.
#[derive(Clone)]
enum AxisValue {
    Policy(FetchPolicy),
    Num(u64),
    Prefetch(&'static str),
}

fn apply(cfg: &mut SimConfig, name: &str, v: &AxisValue) {
    match (name, v) {
        ("policy", AxisValue::Policy(p)) => cfg.policy = *p,
        ("cache", AxisValue::Num(n)) => cfg.icache.size_bytes = *n,
        ("line", AxisValue::Num(n)) => cfg.icache.line_bytes = *n,
        ("assoc", AxisValue::Num(n)) => cfg.icache.assoc = *n as usize,
        ("penalty", AxisValue::Num(n)) => cfg.miss_penalty = *n,
        ("depth", AxisValue::Num(n)) => cfg.max_unresolved = *n as usize,
        ("width", AxisValue::Num(n)) => cfg.issue_width = *n as u32,
        ("bus", AxisValue::Num(n)) => cfg.bus_slots = *n as usize,
        ("prefetch", AxisValue::Prefetch(mode)) => {
            cfg.prefetch = matches!(*mode, "nl" | "both");
            cfg.target_prefetch = matches!(*mode, "target" | "both");
            cfg.stream_buffer = *mode == "stream";
        }
        _ => unreachable!("axis {name} paired with a foreign value"),
    }
}

/// Parses a sweep spec into a runnable [`Scenario`].
///
/// # Errors
///
/// Rejects unknown axis names, unknown or malformed values, duplicate
/// axes, invalid resulting configurations, and empty specs — each with a
/// message suitable for direct CLI output (including a "did you mean"
/// hint when a known name is close).
pub fn parse_sweep(spec: &str) -> Result<Scenario, SweepError> {
    let mut benches: Option<Vec<&'static Benchmark>> = None;
    let mut metric: Option<Metric> = None;
    // (axis name, parsed values with labels), in spec order.
    let mut axes: Vec<(&'static str, Vec<(String, AxisValue)>)> = Vec::new();

    for term in spec.split_whitespace() {
        let Some((axis, values)) = term.split_once('=') else {
            return Err(err(format!(
                "sweep term {term:?} is not axis=value[,value...] (axes: {})",
                AXES.map(|(n, _)| n).join(", ")
            )));
        };
        if values.is_empty() {
            return Err(err(format!("sweep axis {axis}: empty value list")));
        }
        match axis {
            "metric" => {
                if metric.is_some() {
                    return Err(err("sweep axis metric given twice".into()));
                }
                let m = Metric::parse(values).ok_or_else(|| {
                    let names = Metric::ALL.map(|(n, _)| n);
                    err(format!(
                        "sweep metric {values:?} is unknown (one of: {}){}",
                        names.join(", "),
                        did_you_mean(values, names)
                    ))
                })?;
                metric = Some(m);
            }
            "bench" => {
                if benches.is_some() {
                    return Err(err("sweep axis bench given twice".into()));
                }
                let mut set = Vec::new();
                for name in values.split(',') {
                    let b = Benchmark::by_name(name).ok_or_else(|| {
                        let names = Benchmark::all().iter().map(|b| b.name);
                        err(format!("sweep bench {name:?} is unknown{}", did_you_mean(name, names)))
                    })?;
                    set.push(b);
                }
                benches = Some(set);
            }
            name => {
                let Some(&(canon, _)) = AXES.iter().find(|(n, _)| *n == name) else {
                    let names = AXES.map(|(n, _)| n);
                    return Err(err(format!(
                        "unknown sweep axis {name:?} (axes: {}, metric){}",
                        names.join(", "),
                        did_you_mean(name, names.into_iter().chain(["metric"]))
                    )));
                };
                if axes.iter().any(|(n, _)| *n == canon) {
                    return Err(err(format!("sweep axis {canon} given twice")));
                }
                let mut parsed = Vec::new();
                for v in values.split(',') {
                    let value = match canon {
                        "policy" => {
                            let p = FetchPolicy::parse(v).ok_or_else(|| {
                                let names = policy_names();
                                err(format!(
                                    "sweep policy {v:?} is unknown (one of: {}){}",
                                    names.join(", "),
                                    did_you_mean(v, names.iter().map(String::as_str))
                                ))
                            })?;
                            (p.short_name().to_owned(), AxisValue::Policy(p))
                        }
                        "cache" => (v.to_owned(), AxisValue::Num(parse_cache_size(v)?)),
                        "prefetch" => {
                            let mode =
                                PREFETCH_MODES.iter().find(|m| **m == v).ok_or_else(|| {
                                    err(format!(
                                        "sweep prefetch {v:?} is unknown (one of: {}){}",
                                        PREFETCH_MODES.join(", "),
                                        did_you_mean(v, PREFETCH_MODES)
                                    ))
                                })?;
                            ((*mode).to_owned(), AxisValue::Prefetch(mode))
                        }
                        _ => (v.to_owned(), AxisValue::Num(parse_int(canon, v)?)),
                    };
                    parsed.push(value);
                }
                axes.push((canon, parsed));
            }
        }
    }

    if axes.is_empty() {
        return Err(err(format!(
            "empty sweep: give at least one configuration axis ({})",
            AXES.map(|(n, _)| n).join(", ")
        )));
    }

    // Cross-multiply, leftmost axis outermost.
    let mut points: Vec<ConfigPoint> =
        vec![ConfigPoint::new(String::new(), SimConfig::paper_baseline())];
    for (name, values) in &axes {
        let mut next = Vec::with_capacity(points.len() * values.len());
        for p in &points {
            for (label, value) in values {
                let mut cfg = p.cfg;
                apply(&mut cfg, name, value);
                let full =
                    if p.label.is_empty() { label.clone() } else { format!("{}/{label}", p.label) };
                next.push(ConfigPoint::new(full, cfg));
            }
        }
        points = next;
    }
    for p in &points {
        p.cfg
            .validate()
            .map_err(|e| err(format!("sweep point {}: invalid configuration: {e}", p.label)))?;
    }

    let mut scenario = Scenario::suite("sweep", format!("Custom sweep: {}", spec.trim()), points)
        .with_metric(metric.unwrap_or_default())
        .with_note(
            "User-defined grid evaluated by the shared scenario pipeline (trace cache, \
             result memo, per-point fault isolation).",
        );
    if let Some(benches) = benches {
        scenario = scenario.with_benches(benches);
    }
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_issue_example_parses() {
        let s = parse_sweep("policy=Res,Pess cache=8K,32K penalty=5,20 depth=1,2,4 metric=ispi")
            .unwrap();
        assert_eq!(s.points.len(), 2 * 2 * 2 * 3);
        assert_eq!(s.benches.len(), 13);
        assert_eq!(s.metric, Metric::Ispi);
        assert_eq!(s.points[0].label, "Res/8K/5/1");
        let last = s.points.last().unwrap();
        assert_eq!(last.label, "Pess/32K/20/4");
        assert_eq!(last.cfg.policy, FetchPolicy::Pessimistic);
        assert_eq!(last.cfg.icache.size_bytes, 32 * 1024);
        assert_eq!(last.cfg.miss_penalty, 20);
        assert_eq!(last.cfg.max_unresolved, 4);
    }

    #[test]
    fn unknown_axis_gets_a_hint() {
        let e = parse_sweep("polcy=Res").unwrap_err();
        assert!(e.message.contains("unknown sweep axis"), "{e}");
        assert!(e.message.contains("did you mean \"policy\"?"), "{e}");
    }

    #[test]
    fn unknown_policy_value_gets_a_hint() {
        let e = parse_sweep("policy=Rez").unwrap_err();
        assert!(e.message.contains("did you mean \"Res\"?"), "{e}");
    }

    #[test]
    fn unknown_bench_and_metric_get_hints() {
        let e = parse_sweep("policy=Res bench=gcc,lli").unwrap_err();
        assert!(e.message.contains("did you mean \"li\"?"), "{e}");
        let e = parse_sweep("policy=Res metric=ipsi").unwrap_err();
        assert!(e.message.contains("did you mean \"ispi\"?"), "{e}");
    }

    #[test]
    fn malformed_terms_and_duplicates_are_rejected() {
        assert!(parse_sweep("policy").unwrap_err().message.contains("axis=value"));
        assert!(parse_sweep("").unwrap_err().message.contains("empty sweep"));
        assert!(parse_sweep("depth=1 depth=2").unwrap_err().message.contains("given twice"));
        assert!(parse_sweep("depth=").unwrap_err().message.contains("empty value list"));
        assert!(parse_sweep("depth=x").unwrap_err().message.contains("not a number"));
    }

    #[test]
    fn invalid_configurations_are_rejected_at_parse_time() {
        let e = parse_sweep("width=0").unwrap_err();
        assert!(e.message.contains("invalid configuration"), "{e}");
        // next-line prefetch and the stream buffer are mutually exclusive
        // owners of the prefetch bus purpose, but that needs two axes —
        // a single prefetch axis can't express it, so cache=weird sizes:
        let e = parse_sweep("cache=3K").unwrap_err();
        assert!(e.message.contains("invalid configuration"), "{e}");
    }

    #[test]
    fn dynamic_policy_and_prefetch_modes_parse() {
        let s = parse_sweep("policy=Dyn prefetch=off,nl,target,both,stream bench=li").unwrap();
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points[0].cfg.policy, FetchPolicy::Dynamic);
        assert!(s.points[1].cfg.prefetch && !s.points[1].cfg.target_prefetch);
        assert!(s.points[3].cfg.prefetch && s.points[3].cfg.target_prefetch);
        assert!(s.points[4].cfg.stream_buffer);
        assert_eq!(s.benches.len(), 1);
    }

    #[test]
    fn cache_sizes_accept_suffix_and_raw_bytes() {
        assert_eq!(parse_cache_size("8K").unwrap(), 8 * 1024);
        assert_eq!(parse_cache_size("32k").unwrap(), 32 * 1024);
        assert_eq!(parse_cache_size("4096").unwrap(), 4096);
        assert!(parse_cache_size("8KB").is_err());
    }

    #[test]
    fn edit_distance_is_sane() {
        assert_eq!(edit_distance("policy", "policy"), 0);
        assert_eq!(edit_distance("polcy", "policy"), 1);
        assert_eq!(edit_distance("Rez", "Res"), 1);
        assert!(did_you_mean("zzzzzz", ["policy", "cache"]).is_empty());
    }
}
