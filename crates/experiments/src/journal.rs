//! The crash-exact sweep journal: an append-only, checksummed
//! write-ahead log of grid-point lifecycle events (DESIGN §5j).
//!
//! The result store only knows *successes*; the journal complements it
//! with everything else a resumed sweep needs to replay exactly —
//! terminal `FAILED(...)` cells (with their attempt counts and verbatim
//! reasons) and points that were interrupted mid-flight. A killed or
//! SIGINT'd sweep rerun with `--resume` renders the identical table:
//! completed points come back as result-store hits, terminal failures
//! replay from the journal without recomputing, and only interrupted /
//! never-started points are simulated.
//!
//! # File format
//!
//! One journal per run at `<result-dir>/journal/run-<key>.wal`, where
//! `<key>` hashes the run's selection (experiments or sweep spec) and
//! instruction window — a resume must describe the same run to find the
//! same journal. Line-oriented text; every line is
//! `<payload>|<fnv1a(payload):016x>`, so torn tail writes from a crash
//! are detected and dropped (crash-exactness) while interior corruption
//! is reported. The first payload is the header
//! `specfetch-journal/1 run=<key>`; each subsequent payload is one
//! space-separated event:
//!
//! ```text
//! s <experiment> <idx> <bench> <instrs> <cfg-hash>   scheduled
//! a <experiment> <idx> <attempt>                     attempt started
//! c <experiment> <idx>                               completed OK
//! f <experiment> <idx> <attempts> <reason>           terminal failure
//! i <experiment> <idx>                               interrupted
//! ```
//!
//! Events append with an explicit flush (write-ahead semantics); the
//! reason field is JSON-escaped so it stays one line. Indices restart
//! at 0 per experiment (mirroring `fault`'s input-order numbering), so
//! replay keys are `(experiment, idx)`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use specfetch_core::{fnv1a, SpecfetchError};
use specfetch_verify::{
    event_tag, parse_tag, point_step, replay_of, replay_step, Counters, PointEvent, PointState,
    ReplayClass, Step,
};

use crate::codec::{json_escape, json_unescape};

/// Bumped when the line grammar changes incompatibly.
pub const FORMAT_VERSION: u32 = 1;

/// What a loaded journal says about a grid point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Replayed {
    /// The point completed; the result store has (or had) its result.
    Completed,
    /// The point failed terminally after `attempts` tries.
    Failed {
        /// Total attempts made (first run + retries).
        attempts: u32,
        /// The verbatim `FAILED(...)` reason.
        reason: String,
    },
    /// The point was scheduled/started but never reached a terminal
    /// state (crash or shutdown mid-flight).
    Pending,
}

struct Active {
    file: File,
    /// Terminal outcomes loaded from a `--resume` replay.
    replay: HashMap<(String, u64), Replayed>,
    /// The experiment currently being journalled.
    experiment: String,
    /// Next point index within `experiment` (input order).
    next_point: u64,
    /// Writer-side lifecycle state per point recorded by *this* process
    /// run, dispatched through `verify::point_step` — an event order
    /// the model calls illegal is reported (see [`transition`]).
    points: HashMap<(String, u64), PointState>,
    /// Lifecycle counters for [`counters`]: events recorded by *this*
    /// process run (replayed history is not re-counted).
    counters: Counters,
}

/// Active journals, keyed by job id. Job `0` is the CLI's ambient job;
/// the service controller activates one journal per submitted job so
/// concurrent jobs log (and count) independently.
static STATE: OnceLock<Mutex<HashMap<u64, Active>>> = OnceLock::new();

fn state() -> &'static Mutex<HashMap<u64, Active>> {
    STATE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn io_err(context: &str, source: std::io::Error) -> SpecfetchError {
    SpecfetchError::Io { context: context.to_owned(), source }
}

/// One checksummed journal line for `payload`.
fn sealed(payload: &str) -> String {
    format!("{payload}|{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Splits and verifies one journal line; `None` if torn or corrupt.
fn unseal(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once('|')?;
    (format!("{:016x}", fnv1a(payload.as_bytes())) == sum).then_some(payload)
}

/// The journal path a run key maps to under `dir`.
pub fn path_for(dir: &Path, run_key: u64) -> PathBuf {
    dir.join("journal").join(format!("run-{run_key:016x}.wal"))
}

/// Hashes a run description (experiment selection or sweep spec, plus
/// the instruction window) into the journal's run key. A `--resume`
/// invocation must describe the same run to replay the same journal.
pub fn run_key(description: &str, instrs: u64) -> u64 {
    fnv1a(format!("{description}@{instrs}").as_bytes())
}

/// Parses loaded journal payloads into the replay map by folding each
/// point's events through the model's lenient reader-side projection
/// (`verify::replay_step`) — total over any prefix a crash can leave,
/// with last-terminal-wins semantics. Failure details (attempt count,
/// verbatim reason) ride alongside the fold and are attached to points
/// that finish in the `Failed` class.
fn replay_events(payloads: &[String]) -> HashMap<(String, u64), Replayed> {
    let mut states: HashMap<(String, u64), PointState> = HashMap::new();
    let mut failures: HashMap<(String, u64), (u32, String)> = HashMap::new();
    for p in payloads {
        let mut parts = p.splitn(5, ' ');
        let (Some(tag), Some(exp), Some(idx)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Some(event) = parse_tag(tag) else { continue };
        let Ok(idx) = idx.parse::<u64>() else { continue };
        let key = (exp.to_owned(), idx);
        if event == PointEvent::Fail {
            let attempts = parts.next().and_then(|a| a.parse().ok()).unwrap_or(1);
            let reason = parts
                .next()
                .and_then(json_unescape)
                .unwrap_or_else(|| "unrecorded failure".to_owned());
            failures.insert(key.clone(), (attempts, reason));
        }
        let state = states.entry(key).or_insert(PointState::Unscheduled);
        *state = replay_step(*state, &event);
    }
    states
        .into_iter()
        .filter_map(|(key, state)| {
            let replayed = match replay_of(state)? {
                ReplayClass::Pending => Replayed::Pending,
                ReplayClass::Completed => Replayed::Completed,
                ReplayClass::Failed => {
                    let (attempts, reason) = failures
                        .remove(&key)
                        .unwrap_or_else(|| (1, "unrecorded failure".to_owned()));
                    Replayed::Failed { attempts, reason }
                }
            };
            Some((key, replayed))
        })
        .collect()
}

/// Reads an existing journal, tolerating a torn final line (the crash
/// case) but rejecting interior corruption. Returns the payloads plus
/// the byte length of the valid prefix — everything past it is the
/// torn tail, which a resume truncates away before appending (an
/// append onto a torn tail would weld the next record to the partial
/// line and turn a tolerated crash artifact into interior corruption).
fn load(path: &Path) -> Result<(Vec<String>, u64), SpecfetchError> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| io_err("read journal", e))?;
    let chunks: Vec<&str> = text.split_inclusive('\n').collect();
    let mut payloads = Vec::with_capacity(chunks.len());
    let mut valid_len = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i + 1 == chunks.len();
        // A chunk without its terminator is a write that never finished
        // — torn even when the checksum happens to verify.
        let complete = chunk.ends_with('\n');
        match unseal(chunk.trim_end_matches(['\n', '\r'])) {
            Some(p) if complete => {
                payloads.push(p.to_owned());
                valid_len += chunk.len() as u64;
            }
            _ if last => {
                // A torn tail is exactly what a WAL expects after a
                // crash: the event never fully happened. Drop it.
                crate::diag::line(&format!(
                    "[journal] dropping torn final line of {}",
                    path.display()
                ));
            }
            _ => {
                return Err(SpecfetchError::InvalidSpec {
                    detail: format!(
                        "journal {} is corrupt at line {} (bad checksum)",
                        path.display(),
                        i + 1
                    ),
                });
            }
        }
    }
    let header = format!("specfetch-journal/{FORMAT_VERSION}");
    match payloads.first() {
        Some(h) if h.starts_with(&header) => Ok((payloads, valid_len)),
        _ => Err(SpecfetchError::InvalidSpec {
            detail: format!("journal {} has no valid header", path.display()),
        }),
    }
}

/// Opens (or, with `resume`, replays) the journal for `run_key` under
/// `dir` and activates journalling for the CLI's ambient job (job `0`).
/// Worker children and in-process test runs never activate it, so all
/// journal calls below are no-ops for them.
///
/// # Errors
///
/// [`SpecfetchError::Io`] when the directory or file cannot be created;
/// [`SpecfetchError::InvalidSpec`] for interior corruption, a bad
/// header, or a double activation.
pub fn activate(dir: &Path, run_key: u64, resume: bool) -> Result<PathBuf, SpecfetchError> {
    activate_job(0, dir, run_key, resume)
}

/// Opens (or, with `resume`, replays) the journal for `run_key` under
/// `dir` and activates journalling for `job`. Jobs journal
/// independently: the service controller gives every submitted job its
/// own id and directory, while the CLI activates job `0` once.
///
/// # Errors
///
/// Same as [`activate`], plus a double activation *of the same job*.
pub fn activate_job(
    job: u64,
    dir: &Path,
    run_key: u64,
    resume: bool,
) -> Result<PathBuf, SpecfetchError> {
    let path = path_for(dir, run_key);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| io_err("create journal dir", e))?;
    }
    let mut replay = HashMap::new();
    let mut valid_len = 0u64;
    if resume && path.metadata().is_ok_and(|m| m.len() > 0) {
        let (payloads, len) = load(&path)?;
        replay = replay_events(&payloads);
        valid_len = len;
    }
    let mut file = OpenOptions::new()
        .create(true)
        .append(resume)
        .truncate(!resume)
        .write(true)
        .open(&path)
        .map_err(|e| io_err("open journal", e))?;
    // Chop any torn tail off before the first append: `load` tolerated
    // it, but appending after it would weld the next record onto the
    // partial line and brick the *next* resume with a checksum error.
    if resume && file.metadata().is_ok_and(|m| m.len() > valid_len) {
        file.set_len(valid_len).map_err(|e| io_err("truncate torn journal tail", e))?;
    }
    // The header goes into every journal that doesn't have one yet —
    // a truncated fresh run, but also a first invocation that happened
    // to pass `--resume` (nothing to replay, but the file must still be
    // loadable by the next resume).
    if file.metadata().map_or(true, |m| m.len() == 0) {
        let header = format!("specfetch-journal/{FORMAT_VERSION} run={run_key:016x}");
        file.write_all(sealed(&header).as_bytes()).map_err(|e| io_err("write journal", e))?;
        file.flush().map_err(|e| io_err("flush journal", e))?;
    }
    let active = Active {
        file,
        replay,
        experiment: String::new(),
        next_point: 0,
        points: HashMap::new(),
        counters: Counters::default(),
    };
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if jobs.contains_key(&job) {
        return Err(SpecfetchError::InvalidSpec { detail: "journal already active".to_owned() });
    }
    jobs.insert(job, active);
    Ok(path)
}

/// Flushes and deactivates `job`'s journal (the controller's cleanup
/// once a job reaches a terminal state). A no-op for inactive jobs.
pub fn release(job: u64) {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(mut active) = jobs.remove(&job) {
        let _ = active.file.flush();
    }
}

fn with_job<R>(job: u64, f: impl FnOnce(&mut Active) -> R) -> Option<R> {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    jobs.get_mut(&job).map(f)
}

fn append(job: u64, payload: &str) {
    with_job(job, |s| {
        // WAL semantics: the event is on disk before the runner moves
        // on. Failure to journal is loud but not fatal — the sweep's
        // results still land in the store.
        let line = sealed(payload);
        if let Err(e) = s.file.write_all(line.as_bytes()).and_then(|()| s.file.flush()) {
            crate::diag::line(&format!("[journal] append failed: {e}"));
        }
    });
}

/// Resets `job`'s per-experiment point counter (mirrors
/// [`crate::fault::begin_experiment`]).
pub fn begin_experiment(job: u64, id: &str) {
    with_job(job, |s| {
        s.experiment = id.to_owned();
        s.next_point = 0;
        // Indices restart per experiment, so lifecycle tracking does
        // too (a re-selected experiment is a fresh grid, not a replay).
        s.points.retain(|(exp, _), _| exp != id);
    });
}

/// Dispatches one lifecycle event for point `idx` of `job`'s current
/// experiment through the model's strict writer-side transition
/// function and folds it into the Progress counters. Returns the
/// experiment name for the WAL payload; `None` when `job` has no
/// active journal.
///
/// An event order `verify::point_step` calls illegal is a runner bug:
/// it is reported loudly on the diagnostics stream (and still
/// journalled — the lenient reader absorbs it on replay) rather than
/// taking the sweep down.
fn transition(job: u64, idx: u64, event: PointEvent) -> Option<String> {
    with_job(job, |s| {
        let key = (s.experiment.clone(), idx);
        let state = s.points.entry(key).or_insert(PointState::Unscheduled);
        match point_step(state, &event) {
            Step::Next(next) => *state = next,
            Step::Stay => {}
            Step::Unhandled => crate::diag::line(&format!(
                "[journal] illegal transition {state:?} -> {event:?} for point {idx}"
            )),
        }
        s.counters.apply(&event);
        s.experiment.clone()
    })
}

/// Claims `n` consecutive journal indices for a grid about to run,
/// returning the base index; `None` when `job` has no active journal.
pub(crate) fn reserve(job: u64, n: usize) -> Option<u64> {
    with_job(job, |s| {
        let base = s.next_point;
        s.next_point += n as u64;
        base
    })
}

/// Journals one scheduled grid point.
pub(crate) fn record_scheduled(job: u64, idx: u64, bench: &str, instrs: u64, cfg_hash: u64) {
    let event = PointEvent::Schedule;
    let Some(exp) = transition(job, idx, event) else { return };
    append(job, &format!("{} {exp} {idx} {bench} {instrs} {cfg_hash:016x}", event_tag(&event)));
}

/// Journals the start of `attempt` (0-based) on a point.
pub(crate) fn record_attempt(job: u64, idx: u64, attempt: u32) {
    let event = PointEvent::Attempt;
    let Some(exp) = transition(job, idx, event) else { return };
    append(job, &format!("{} {exp} {idx} {attempt}", event_tag(&event)));
}

/// Journals a completed point.
pub(crate) fn record_completed(job: u64, idx: u64) {
    let event = PointEvent::Complete;
    let Some(exp) = transition(job, idx, event) else { return };
    append(job, &format!("{} {exp} {idx}", event_tag(&event)));
}

/// Journals a terminal failure with its total attempt count.
pub(crate) fn record_failed(job: u64, idx: u64, attempts: u32, reason: &str) {
    let event = PointEvent::Fail;
    let Some(exp) = transition(job, idx, event) else { return };
    append(job, &format!("{} {exp} {idx} {attempts} {}", event_tag(&event), json_escape(reason)));
}

/// Journals an interrupted point (drained by a shutdown request).
pub(crate) fn record_interrupted(job: u64, idx: u64) {
    let event = PointEvent::Interrupt;
    let Some(exp) = transition(job, idx, event) else { return };
    append(job, &format!("{} {exp} {idx}", event_tag(&event)));
}

/// The replayed terminal outcome (if any) for point `idx` of `job`'s
/// current experiment — only populated on `--resume`.
pub(crate) fn replayed(job: u64, idx: u64) -> Option<Replayed> {
    with_job(job, |s| {
        let key = (s.experiment.clone(), idx);
        match s.replay.get(&key) {
            Some(Replayed::Completed) => Some(Replayed::Completed),
            Some(Replayed::Failed { attempts, reason }) => {
                Some(Replayed::Failed { attempts: *attempts, reason: reason.clone() })
            }
            _ => None,
        }
    })
    .flatten()
}

/// `(scheduled, completed, failed, interrupted)` event counts recorded
/// by this process run for `job` — the raw feed behind
/// [`crate::store::Progress`]. `None` when `job` has no active journal.
pub(crate) fn counters(job: u64) -> Option<(u64, u64, u64, u64)> {
    with_job(job, |s| {
        (s.counters.scheduled, s.counters.completed, s.counters.failed, s.counters.interrupted)
    })
}

/// Flushes every active journal file (a drain point before exit).
pub fn flush() {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for active in jobs.values_mut() {
        let _ = active.file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_lines_round_trip_and_detect_tampering() {
        let line = sealed("c sweep 3");
        assert_eq!(unseal(line.trim_end()), Some("c sweep 3"));
        let tampered = line.replace("c sweep 3", "c sweep 4");
        assert_eq!(unseal(tampered.trim_end()), None);
    }

    #[test]
    fn run_keys_separate_runs() {
        assert_eq!(run_key("sweep:x", 100), run_key("sweep:x", 100));
        assert_ne!(run_key("sweep:x", 100), run_key("sweep:x", 200));
        assert_ne!(run_key("sweep:x", 100), run_key("sweep:y", 100));
    }

    #[test]
    fn replay_takes_the_last_terminal_event() {
        let payloads: Vec<String> = [
            "specfetch-journal/1 run=0",
            "s sweep 0 li 100 00000000000000aa",
            "a sweep 0 0",
            "f sweep 0 2 injected\\u0020err", // escaped reason survives
            "s sweep 1 gcc 100 00000000000000ab",
            "a sweep 1 0",
            "c sweep 1",
            "s sweep 2 doduc 100 00000000000000ac",
            "i sweep 2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let replay = replay_events(&payloads);
        assert_eq!(
            replay.get(&("sweep".to_owned(), 0)),
            Some(&Replayed::Failed { attempts: 2, reason: "injected err".to_owned() })
        );
        assert_eq!(replay.get(&("sweep".to_owned(), 1)), Some(&Replayed::Completed));
        assert_eq!(replay.get(&("sweep".to_owned(), 2)), Some(&Replayed::Pending));
    }

    #[test]
    fn jobs_journal_independently_and_release_frees_the_slot() {
        let dir = std::env::temp_dir()
            .join(format!("specfetch-journal-jobs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Ids chosen to stay clear of other tests: the journal map is
        // process-wide.
        let (a, b) = (0xDEAD_1001u64, 0xDEAD_1002u64);
        let path_a = activate_job(a, &dir.join("a"), 1, false).unwrap();
        let path_b = activate_job(b, &dir.join("b"), 2, false).unwrap();
        assert_ne!(path_a, path_b);
        assert!(activate_job(a, &dir.join("a"), 1, false).is_err(), "double activation");

        begin_experiment(a, "sweep");
        begin_experiment(b, "table3");
        assert_eq!(reserve(a, 3), Some(0));
        assert_eq!(reserve(a, 2), Some(3), "indices advance per job");
        assert_eq!(reserve(b, 1), Some(0), "...not across jobs");
        record_scheduled(a, 0, "li", 100, 0xaa);
        record_completed(a, 0);
        record_scheduled(b, 0, "gcc", 100, 0xab);
        record_interrupted(b, 0);
        assert_eq!(counters(a), Some((1, 1, 0, 0)));
        assert_eq!(counters(b), Some((1, 0, 0, 1)));

        let text = std::fs::read_to_string(&path_a).unwrap();
        assert!(text.lines().any(|l| l.starts_with("c sweep 0|")), "{text}");
        assert!(!text.contains("gcc"), "job b's events stay out of job a's file: {text}");

        release(a);
        release(b);
        assert_eq!(counters(a), None, "released jobs are inactive");
        assert!(activate_job(a, &dir.join("a"), 1, false).is_ok(), "slot is reusable");
        release(a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_tolerates_a_torn_tail_but_not_interior_corruption() {
        let dir =
            std::env::temp_dir().join(format!("specfetch-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let good = sealed("specfetch-journal/1 run=0000000000000000");
        let event = sealed("c sweep 0");
        std::fs::write(&path, format!("{good}{event}c sweep 1|deadbeef")).unwrap();
        let (payloads, valid_len) = load(&path).unwrap();
        assert_eq!(payloads.len(), 2, "torn tail dropped");
        assert_eq!(valid_len, (good.len() + event.len()) as u64, "valid prefix excludes the tail");

        let interior = format!("{good}c sweep 1|deadbeefdeadbeef\n{event}");
        std::fs::write(&path, interior).unwrap();
        assert!(load(&path).is_err(), "interior corruption must be loud");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_unterminated_final_line_is_torn_even_with_a_valid_checksum() {
        let dir = std::env::temp_dir()
            .join(format!("specfetch-journal-noterm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noterm.wal");
        let good = sealed("specfetch-journal/1 run=0000000000000000");
        let event = sealed("c sweep 0");
        // Checksum verifies, but the write never finished: no '\n'.
        std::fs::write(&path, format!("{good}{}", event.trim_end())).unwrap();
        let (payloads, valid_len) = load(&path).unwrap();
        assert_eq!(payloads.len(), 1, "only the header survives");
        assert_eq!(valid_len, good.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (model invariant: replay of any reachable WAL prefix
    /// is consistent). `activate_job` used to open in append mode with
    /// the torn tail still in place, so the first new record was welded
    /// onto the partial line — a checksum-invalid *interior* line that
    /// bricked the next resume. Resume must truncate the torn tail
    /// before appending.
    #[test]
    fn resume_truncates_the_torn_tail_before_appending() {
        let dir = std::env::temp_dir()
            .join(format!("specfetch-journal-tornappend-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let job = 0xDEAD_1003u64;
        let run = 7u64;
        let path = path_for(&dir, run);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let header = sealed(&format!("specfetch-journal/{FORMAT_VERSION} run={run:016x}"));
        let event = sealed("c sweep 0");
        // A crash tore the write of "s sweep 1 ..." mid-line.
        std::fs::write(&path, format!("{header}{event}s sweep 1 gc")).unwrap();

        activate_job(job, &dir, run, true).unwrap();
        begin_experiment(job, "sweep");
        record_scheduled(job, 1, "gcc", 100, 0xab);
        record_attempt(job, 1, 0);
        record_completed(job, 1);
        release(job);

        // The journal must replay clean: torn tail gone, both points'
        // events intact and checksummed.
        let (payloads, _) = load(&path).unwrap();
        assert_eq!(payloads.len(), 5, "header + c + s/a/c, no welded garbage: {payloads:?}");
        let replay = replay_events(&payloads);
        assert_eq!(replay.get(&("sweep".to_owned(), 0)), Some(&Replayed::Completed));
        assert_eq!(replay.get(&("sweep".to_owned(), 1)), Some(&Replayed::Completed));
        std::fs::remove_dir_all(&dir).ok();
    }
}
