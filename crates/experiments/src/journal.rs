//! The crash-exact sweep journal: an append-only, checksummed
//! write-ahead log of grid-point lifecycle events (DESIGN §5j).
//!
//! The result store only knows *successes*; the journal complements it
//! with everything else a resumed sweep needs to replay exactly —
//! terminal `FAILED(...)` cells (with their attempt counts and verbatim
//! reasons) and points that were interrupted mid-flight. A killed or
//! SIGINT'd sweep rerun with `--resume` renders the identical table:
//! completed points come back as result-store hits, terminal failures
//! replay from the journal without recomputing, and only interrupted /
//! never-started points are simulated.
//!
//! # File format
//!
//! One journal per run at `<result-dir>/journal/run-<key>.wal`, where
//! `<key>` hashes the run's selection (experiments or sweep spec) and
//! instruction window — a resume must describe the same run to find the
//! same journal. Line-oriented text; every line is
//! `<payload>|<fnv1a(payload):016x>`, so torn tail writes from a crash
//! are detected and dropped (crash-exactness) while interior corruption
//! is reported. The first payload is the header
//! `specfetch-journal/1 run=<key>`; each subsequent payload is one
//! space-separated event:
//!
//! ```text
//! s <experiment> <idx> <bench> <instrs> <cfg-hash>   scheduled
//! a <experiment> <idx> <attempt>                     attempt started
//! c <experiment> <idx>                               completed OK
//! f <experiment> <idx> <attempts> <reason>           terminal failure
//! i <experiment> <idx>                               interrupted
//! ```
//!
//! Events append with an explicit flush (write-ahead semantics); the
//! reason field is JSON-escaped so it stays one line. Indices restart
//! at 0 per experiment (mirroring `fault`'s input-order numbering), so
//! replay keys are `(experiment, idx)`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use specfetch_core::{fnv1a, SpecfetchError};

use crate::codec::{json_escape, json_unescape};

/// Bumped when the line grammar changes incompatibly.
pub const FORMAT_VERSION: u32 = 1;

/// What a loaded journal says about a grid point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Replayed {
    /// The point completed; the result store has (or had) its result.
    Completed,
    /// The point failed terminally after `attempts` tries.
    Failed {
        /// Total attempts made (first run + retries).
        attempts: u32,
        /// The verbatim `FAILED(...)` reason.
        reason: String,
    },
    /// The point was scheduled/started but never reached a terminal
    /// state (crash or shutdown mid-flight).
    Pending,
}

struct Active {
    file: File,
    /// Terminal outcomes loaded from a `--resume` replay.
    replay: HashMap<(String, u64), Replayed>,
    /// The experiment currently being journalled.
    experiment: String,
    /// Next point index within `experiment` (input order).
    next_point: u64,
    /// Lifecycle counters for [`counters`]: events recorded by *this*
    /// process run (replayed history is not re-counted).
    scheduled: u64,
    completed: u64,
    failed: u64,
    interrupted: u64,
}

/// Active journals, keyed by job id. Job `0` is the CLI's ambient job;
/// the service controller activates one journal per submitted job so
/// concurrent jobs log (and count) independently.
static STATE: OnceLock<Mutex<HashMap<u64, Active>>> = OnceLock::new();

fn state() -> &'static Mutex<HashMap<u64, Active>> {
    STATE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn io_err(context: &str, source: std::io::Error) -> SpecfetchError {
    SpecfetchError::Io { context: context.to_owned(), source }
}

/// One checksummed journal line for `payload`.
fn sealed(payload: &str) -> String {
    format!("{payload}|{:016x}\n", fnv1a(payload.as_bytes()))
}

/// Splits and verifies one journal line; `None` if torn or corrupt.
fn unseal(line: &str) -> Option<&str> {
    let (payload, sum) = line.rsplit_once('|')?;
    (format!("{:016x}", fnv1a(payload.as_bytes())) == sum).then_some(payload)
}

/// The journal path a run key maps to under `dir`.
pub fn path_for(dir: &Path, run_key: u64) -> PathBuf {
    dir.join("journal").join(format!("run-{run_key:016x}.wal"))
}

/// Hashes a run description (experiment selection or sweep spec, plus
/// the instruction window) into the journal's run key. A `--resume`
/// invocation must describe the same run to replay the same journal.
pub fn run_key(description: &str, instrs: u64) -> u64 {
    fnv1a(format!("{description}@{instrs}").as_bytes())
}

/// Parses loaded journal payloads into the replay map.
fn replay_events(payloads: &[String]) -> HashMap<(String, u64), Replayed> {
    let mut replay = HashMap::new();
    for p in payloads {
        let mut parts = p.splitn(5, ' ');
        let (Some(event), Some(exp), Some(idx)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Ok(idx) = idx.parse::<u64>() else { continue };
        let key = (exp.to_owned(), idx);
        match event {
            "s" | "a" | "i" => {
                replay.entry(key).or_insert(Replayed::Pending);
            }
            "c" => {
                replay.insert(key, Replayed::Completed);
            }
            "f" => {
                let attempts = parts.next().and_then(|a| a.parse().ok()).unwrap_or(1);
                let reason = parts
                    .next()
                    .and_then(json_unescape)
                    .unwrap_or_else(|| "unrecorded failure".to_owned());
                replay.insert(key, Replayed::Failed { attempts, reason });
            }
            _ => {}
        }
    }
    replay
}

/// Reads an existing journal, tolerating a torn final line (the crash
/// case) but rejecting interior corruption.
fn load(path: &Path) -> Result<Vec<String>, SpecfetchError> {
    let file = File::open(path).map_err(|e| io_err("open journal", e))?;
    let lines: Vec<String> = BufReader::new(file)
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| io_err("read journal", e))?;
    let mut payloads = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match unseal(line) {
            Some(p) => payloads.push(p.to_owned()),
            None if i + 1 == lines.len() => {
                // A torn tail is exactly what a WAL expects after a
                // crash: the event never fully happened. Drop it.
                crate::diag::line(&format!(
                    "[journal] dropping torn final line of {}",
                    path.display()
                ));
            }
            None => {
                return Err(SpecfetchError::InvalidSpec {
                    detail: format!(
                        "journal {} is corrupt at line {} (bad checksum)",
                        path.display(),
                        i + 1
                    ),
                });
            }
        }
    }
    let header = format!("specfetch-journal/{FORMAT_VERSION}");
    match payloads.first() {
        Some(h) if h.starts_with(&header) => Ok(payloads),
        _ => Err(SpecfetchError::InvalidSpec {
            detail: format!("journal {} has no valid header", path.display()),
        }),
    }
}

/// Opens (or, with `resume`, replays) the journal for `run_key` under
/// `dir` and activates journalling for the CLI's ambient job (job `0`).
/// Worker children and in-process test runs never activate it, so all
/// journal calls below are no-ops for them.
///
/// # Errors
///
/// [`SpecfetchError::Io`] when the directory or file cannot be created;
/// [`SpecfetchError::InvalidSpec`] for interior corruption, a bad
/// header, or a double activation.
pub fn activate(dir: &Path, run_key: u64, resume: bool) -> Result<PathBuf, SpecfetchError> {
    activate_job(0, dir, run_key, resume)
}

/// Opens (or, with `resume`, replays) the journal for `run_key` under
/// `dir` and activates journalling for `job`. Jobs journal
/// independently: the service controller gives every submitted job its
/// own id and directory, while the CLI activates job `0` once.
///
/// # Errors
///
/// Same as [`activate`], plus a double activation *of the same job*.
pub fn activate_job(
    job: u64,
    dir: &Path,
    run_key: u64,
    resume: bool,
) -> Result<PathBuf, SpecfetchError> {
    let path = path_for(dir, run_key);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| io_err("create journal dir", e))?;
    }
    let mut replay = HashMap::new();
    if resume && path.metadata().is_ok_and(|m| m.len() > 0) {
        replay = replay_events(&load(&path)?);
    }
    let mut file = OpenOptions::new()
        .create(true)
        .append(resume)
        .truncate(!resume)
        .write(true)
        .open(&path)
        .map_err(|e| io_err("open journal", e))?;
    // The header goes into every journal that doesn't have one yet —
    // a truncated fresh run, but also a first invocation that happened
    // to pass `--resume` (nothing to replay, but the file must still be
    // loadable by the next resume).
    if file.metadata().map_or(true, |m| m.len() == 0) {
        let header = format!("specfetch-journal/{FORMAT_VERSION} run={run_key:016x}");
        file.write_all(sealed(&header).as_bytes()).map_err(|e| io_err("write journal", e))?;
        file.flush().map_err(|e| io_err("flush journal", e))?;
    }
    let active = Active {
        file,
        replay,
        experiment: String::new(),
        next_point: 0,
        scheduled: 0,
        completed: 0,
        failed: 0,
        interrupted: 0,
    };
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if jobs.contains_key(&job) {
        return Err(SpecfetchError::InvalidSpec { detail: "journal already active".to_owned() });
    }
    jobs.insert(job, active);
    Ok(path)
}

/// Flushes and deactivates `job`'s journal (the controller's cleanup
/// once a job reaches a terminal state). A no-op for inactive jobs.
pub fn release(job: u64) {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(mut active) = jobs.remove(&job) {
        let _ = active.file.flush();
    }
}

fn with_job<R>(job: u64, f: impl FnOnce(&mut Active) -> R) -> Option<R> {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    jobs.get_mut(&job).map(f)
}

fn append(job: u64, payload: &str) {
    with_job(job, |s| {
        // WAL semantics: the event is on disk before the runner moves
        // on. Failure to journal is loud but not fatal — the sweep's
        // results still land in the store.
        let line = sealed(payload);
        if let Err(e) = s.file.write_all(line.as_bytes()).and_then(|()| s.file.flush()) {
            crate::diag::line(&format!("[journal] append failed: {e}"));
        }
    });
}

/// Resets `job`'s per-experiment point counter (mirrors
/// [`crate::fault::begin_experiment`]).
pub fn begin_experiment(job: u64, id: &str) {
    with_job(job, |s| {
        s.experiment = id.to_owned();
        s.next_point = 0;
    });
}

/// Claims `n` consecutive journal indices for a grid about to run,
/// returning the base index; `None` when `job` has no active journal.
pub(crate) fn reserve(job: u64, n: usize) -> Option<u64> {
    with_job(job, |s| {
        let base = s.next_point;
        s.next_point += n as u64;
        base
    })
}

/// Journals one scheduled grid point.
pub(crate) fn record_scheduled(job: u64, idx: u64, bench: &str, instrs: u64, cfg_hash: u64) {
    let exp = match with_job(job, |s| {
        s.scheduled += 1;
        s.experiment.clone()
    }) {
        Some(e) => e,
        None => return,
    };
    append(job, &format!("s {exp} {idx} {bench} {instrs} {cfg_hash:016x}"));
}

/// Journals the start of `attempt` (0-based) on a point.
pub(crate) fn record_attempt(job: u64, idx: u64, attempt: u32) {
    let exp = match with_job(job, |s| s.experiment.clone()) {
        Some(e) => e,
        None => return,
    };
    append(job, &format!("a {exp} {idx} {attempt}"));
}

/// Journals a completed point.
pub(crate) fn record_completed(job: u64, idx: u64) {
    let exp = match with_job(job, |s| {
        s.completed += 1;
        s.experiment.clone()
    }) {
        Some(e) => e,
        None => return,
    };
    append(job, &format!("c {exp} {idx}"));
}

/// Journals a terminal failure with its total attempt count.
pub(crate) fn record_failed(job: u64, idx: u64, attempts: u32, reason: &str) {
    let exp = match with_job(job, |s| {
        s.failed += 1;
        s.experiment.clone()
    }) {
        Some(e) => e,
        None => return,
    };
    append(job, &format!("f {exp} {idx} {attempts} {}", json_escape(reason)));
}

/// Journals an interrupted point (drained by a shutdown request).
pub(crate) fn record_interrupted(job: u64, idx: u64) {
    let exp = match with_job(job, |s| {
        s.interrupted += 1;
        s.experiment.clone()
    }) {
        Some(e) => e,
        None => return,
    };
    append(job, &format!("i {exp} {idx}"));
}

/// The replayed terminal outcome (if any) for point `idx` of `job`'s
/// current experiment — only populated on `--resume`.
pub(crate) fn replayed(job: u64, idx: u64) -> Option<Replayed> {
    with_job(job, |s| {
        let key = (s.experiment.clone(), idx);
        match s.replay.get(&key) {
            Some(Replayed::Completed) => Some(Replayed::Completed),
            Some(Replayed::Failed { attempts, reason }) => {
                Some(Replayed::Failed { attempts: *attempts, reason: reason.clone() })
            }
            _ => None,
        }
    })
    .flatten()
}

/// `(scheduled, completed, failed, interrupted)` event counts recorded
/// by this process run for `job` — the raw feed behind
/// [`crate::store::Progress`]. `None` when `job` has no active journal.
pub(crate) fn counters(job: u64) -> Option<(u64, u64, u64, u64)> {
    with_job(job, |s| (s.scheduled, s.completed, s.failed, s.interrupted))
}

/// Flushes every active journal file (a drain point before exit).
pub fn flush() {
    let mut jobs = state().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for active in jobs.values_mut() {
        let _ = active.file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_lines_round_trip_and_detect_tampering() {
        let line = sealed("c sweep 3");
        assert_eq!(unseal(line.trim_end()), Some("c sweep 3"));
        let tampered = line.replace("c sweep 3", "c sweep 4");
        assert_eq!(unseal(tampered.trim_end()), None);
    }

    #[test]
    fn run_keys_separate_runs() {
        assert_eq!(run_key("sweep:x", 100), run_key("sweep:x", 100));
        assert_ne!(run_key("sweep:x", 100), run_key("sweep:x", 200));
        assert_ne!(run_key("sweep:x", 100), run_key("sweep:y", 100));
    }

    #[test]
    fn replay_takes_the_last_terminal_event() {
        let payloads: Vec<String> = [
            "specfetch-journal/1 run=0",
            "s sweep 0 li 100 00000000000000aa",
            "a sweep 0 0",
            "f sweep 0 2 injected\\u0020err", // escaped reason survives
            "s sweep 1 gcc 100 00000000000000ab",
            "a sweep 1 0",
            "c sweep 1",
            "s sweep 2 doduc 100 00000000000000ac",
            "i sweep 2",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let replay = replay_events(&payloads);
        assert_eq!(
            replay.get(&("sweep".to_owned(), 0)),
            Some(&Replayed::Failed { attempts: 2, reason: "injected err".to_owned() })
        );
        assert_eq!(replay.get(&("sweep".to_owned(), 1)), Some(&Replayed::Completed));
        assert_eq!(replay.get(&("sweep".to_owned(), 2)), Some(&Replayed::Pending));
    }

    #[test]
    fn jobs_journal_independently_and_release_frees_the_slot() {
        let dir = std::env::temp_dir()
            .join(format!("specfetch-journal-jobs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Ids chosen to stay clear of other tests: the journal map is
        // process-wide.
        let (a, b) = (0xDEAD_1001u64, 0xDEAD_1002u64);
        let path_a = activate_job(a, &dir.join("a"), 1, false).unwrap();
        let path_b = activate_job(b, &dir.join("b"), 2, false).unwrap();
        assert_ne!(path_a, path_b);
        assert!(activate_job(a, &dir.join("a"), 1, false).is_err(), "double activation");

        begin_experiment(a, "sweep");
        begin_experiment(b, "table3");
        assert_eq!(reserve(a, 3), Some(0));
        assert_eq!(reserve(a, 2), Some(3), "indices advance per job");
        assert_eq!(reserve(b, 1), Some(0), "...not across jobs");
        record_scheduled(a, 0, "li", 100, 0xaa);
        record_completed(a, 0);
        record_scheduled(b, 0, "gcc", 100, 0xab);
        record_interrupted(b, 0);
        assert_eq!(counters(a), Some((1, 1, 0, 0)));
        assert_eq!(counters(b), Some((1, 0, 0, 1)));

        let text = std::fs::read_to_string(&path_a).unwrap();
        assert!(text.lines().any(|l| l.starts_with("c sweep 0|")), "{text}");
        assert!(!text.contains("gcc"), "job b's events stay out of job a's file: {text}");

        release(a);
        release(b);
        assert_eq!(counters(a), None, "released jobs are inactive");
        assert!(activate_job(a, &dir.join("a"), 1, false).is_ok(), "slot is reusable");
        release(a);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_tolerates_a_torn_tail_but_not_interior_corruption() {
        let dir =
            std::env::temp_dir().join(format!("specfetch-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let good = sealed("specfetch-journal/1 run=0000000000000000");
        let event = sealed("c sweep 0");
        std::fs::write(&path, format!("{good}{event}c sweep 1|deadbeef")).unwrap();
        let payloads = load(&path).unwrap();
        assert_eq!(payloads.len(), 2, "torn tail dropped");

        let interior = format!("{good}c sweep 1|deadbeefdeadbeef\n{event}");
        std::fs::write(&path, interior).unwrap();
        assert!(load(&path).is_err(), "interior corruption must be loud");
        std::fs::remove_dir_all(&dir).ok();
    }
}
