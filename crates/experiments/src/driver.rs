//! The driver layer: executes one [`JobSpec`] — an experiment selection
//! or a parsed sweep — over the supervised execution substrate
//! (heartbeats, deadlines, retry/backoff, graceful drain), completely
//! decoupled from argv parsing and process exit codes.
//!
//! The CLI is one thin client of this layer (it parses flags, installs
//! signal handlers, maps the returned [`DriverOutcome`] to an exit
//! code); the service controller is another (it maps the same outcome
//! to a job state). Report payloads are delivered through the
//! [`DriverEvents`] callback — stdout for the CLI, the job's result
//! buffer for the service — while status chatter goes through the
//! [`crate::diag`] sink, so the two can never mix.

use std::time::Instant;

use crate::sweep::did_you_mean;
use crate::{
    diag, fault, is_known_experiment, journal, parse_sweep, run_experiment, run_scenario,
    supervise, Format, RunOptions, SpecfetchError, EXPERIMENT_IDS, EXTRA_EXPERIMENT_IDS,
};

/// One unit of drivable work: what the CLI's `--experiment` /
/// `--sweep` flags select, as a value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobSpec {
    /// An experiment selection: an id, `"all"`, or `"extras"`.
    Experiment(String),
    /// A sweep spec (the `--sweep` grammar, see [`crate::sweep`]).
    Sweep(String),
}

impl JobSpec {
    /// The run description the journal is keyed by — stable across the
    /// CLI and the service, so a job submitted over HTTP resumes from
    /// (and byte-matches) the same journal a CLI run would use.
    pub fn describe(&self) -> String {
        match self {
            JobSpec::Sweep(spec) => format!("sweep:{spec}"),
            JobSpec::Experiment(sel) => format!("experiment:{sel}"),
        }
    }

    /// The experiment ids this spec expands to (empty for sweeps).
    fn ids(&self) -> Vec<&str> {
        match self {
            JobSpec::Sweep(_) => Vec::new(),
            JobSpec::Experiment(sel) => match sel.as_str() {
                "all" => EXPERIMENT_IDS.to_vec(),
                "extras" => EXTRA_EXPERIMENT_IDS.to_vec(),
                other => vec![other],
            },
        }
    }

    /// Rejects a spec that could not run: a sweep that fails to parse
    /// or an unknown experiment id, both with a "did you mean" hint.
    /// Validation runs nothing and touches no journal — it is what a
    /// submission endpoint calls before accepting a job.
    ///
    /// # Errors
    ///
    /// [`SpecfetchError::InvalidSpec`], whose `Display` is the
    /// human-readable rejection — suitable for a usage error or an
    /// HTTP 400 body.
    pub fn validate(&self) -> Result<(), SpecfetchError> {
        match self {
            JobSpec::Sweep(spec) => parse_sweep(spec)
                .map(|_| ())
                .map_err(|e| SpecfetchError::InvalidSpec { detail: e.to_string() }),
            JobSpec::Experiment(_) => {
                for id in self.ids() {
                    if !is_known_experiment(id) {
                        let known = ["all", "extras"]
                            .into_iter()
                            .chain(EXPERIMENT_IDS)
                            .chain(EXTRA_EXPERIMENT_IDS);
                        return Err(SpecfetchError::InvalidSpec {
                            detail: format!("unknown experiment {id:?}{}", did_you_mean(id, known)),
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

/// Where a driver delivers rendered report payloads. Exactly the bytes
/// the CLI prints to stdout, one call per report, without the trailing
/// newline `println!` appends.
pub trait DriverEvents {
    /// One rendered experiment/sweep report.
    fn report(&mut self, text: &str);
}

/// Blanket impl so a closure can serve as the event sink.
impl<F: FnMut(&str)> DriverEvents for F {
    fn report(&mut self, text: &str) {
        self(text)
    }
}

/// What running one [`JobSpec`] amounted to. The CLI maps this to an
/// exit code (`interrupted` → 130, any failure → 1); the controller
/// maps it to a terminal job state.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct DriverOutcome {
    /// `FAILED(...)` cells across every rendered report.
    pub failed_cells: usize,
    /// Experiments that produced no report at all (panic or unknown
    /// id at run time).
    pub failed_experiments: usize,
    /// Whether the run was drained by a shutdown or cancellation
    /// before finishing.
    pub interrupted: bool,
}

impl DriverOutcome {
    /// Whether anything at all went wrong.
    pub fn failed(&self) -> bool {
        self.failed_cells > 0 || self.failed_experiments > 0
    }
}

/// Executes [`JobSpec`]s under fixed options and output format.
#[derive(Copy, Clone, Debug)]
pub struct Driver {
    opts: RunOptions,
    format: Format,
}

impl Driver {
    /// A driver running under `opts`, rendering reports as `format`.
    pub fn new(opts: RunOptions, format: Format) -> Self {
        Driver { opts, format }
    }

    /// The options this driver runs under.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// Runs one spec to completion (or drain): sweeps and experiment
    /// selections go through the exact pipeline the CLI always used —
    /// shared trace cache, result memo/store, per-point fault
    /// isolation, supervised workers — and every rendered report is
    /// delivered through `events` in execution order.
    ///
    /// Specs should be [`JobSpec::validate`]d first; a spec that fails
    /// to parse or names no known experiment counts as one failed
    /// experiment (with the rejection on the diagnostics sink) rather
    /// than panicking or exiting.
    pub fn run(&self, spec: &JobSpec, events: &mut dyn DriverEvents) -> DriverOutcome {
        match spec {
            JobSpec::Sweep(raw) => self.run_sweep(raw, events),
            JobSpec::Experiment(_) => self.run_experiments(spec, events),
        }
    }

    fn run_sweep(&self, raw: &str, events: &mut dyn DriverEvents) -> DriverOutcome {
        let scenario = match parse_sweep(raw) {
            Ok(s) => s,
            Err(e) => {
                diag::line(&format!("error: {e}"));
                return DriverOutcome { failed_experiments: 1, ..DriverOutcome::default() };
            }
        };
        fault::begin_experiment("sweep");
        journal::begin_experiment(self.opts.job, "sweep");
        let started = Instant::now();
        let report = run_scenario(scenario, &self.opts).render();
        let failed_cells = report.failed_cells();
        events.report(&report.render(self.format));
        diag::line(&format!("[sweep done in {:.1}s]\n", started.elapsed().as_secs_f64()));
        DriverOutcome {
            failed_cells,
            failed_experiments: 0,
            interrupted: supervise::job_shutdown_requested(self.opts.job),
        }
    }

    fn run_experiments(&self, spec: &JobSpec, events: &mut dyn DriverEvents) -> DriverOutcome {
        let mut outcome = DriverOutcome::default();
        for id in spec.ids() {
            // Graceful shutdown: the experiment that saw the request
            // drained its in-flight points; those after it never start.
            if supervise::job_shutdown_requested(self.opts.job) {
                break;
            }
            let started = Instant::now();
            match run_experiment(id, &self.opts) {
                Ok(report) => {
                    outcome.failed_cells += report.failed_cells();
                    events.report(&report.render(self.format));
                    diag::line(&format!(
                        "[{id} done in {:.1}s]\n",
                        started.elapsed().as_secs_f64()
                    ));
                }
                Err(e) => {
                    outcome.failed_experiments += 1;
                    diag::line(&format!("error: {e}"));
                    diag::line(&format!(
                        "[{id} FAILED in {:.1}s]\n",
                        started.elapsed().as_secs_f64()
                    ));
                }
            }
        }
        outcome.interrupted = supervise::job_shutdown_requested(self.opts.job);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_describe_and_expand() {
        let sweep = JobSpec::Sweep("policy=Res cache=8K".into());
        assert_eq!(sweep.describe(), "sweep:policy=Res cache=8K");
        assert!(sweep.ids().is_empty());
        let all = JobSpec::Experiment("all".into());
        assert_eq!(all.describe(), "experiment:all");
        assert_eq!(all.ids(), EXPERIMENT_IDS.to_vec());
        assert_eq!(JobSpec::Experiment("extras".into()).ids(), EXTRA_EXPERIMENT_IDS.to_vec());
        assert_eq!(JobSpec::Experiment("table3".into()).ids(), ["table3"]);
    }

    #[test]
    fn validation_hints_at_the_nearest_id() {
        assert!(JobSpec::Experiment("all".into()).validate().is_ok());
        assert!(JobSpec::Experiment("table3".into()).validate().is_ok());
        assert!(JobSpec::Sweep("policy=Res cache=8K".into()).validate().is_ok());
        let e = JobSpec::Experiment("tabel3".into()).validate().unwrap_err().to_string();
        assert!(e.contains("unknown experiment \"tabel3\""), "{e}");
        assert!(e.contains("did you mean \"table3\"?"), "{e}");
        let e = JobSpec::Sweep("polcy=Res".into()).validate().unwrap_err().to_string();
        assert!(e.contains("did you mean"), "{e}");
    }

    #[test]
    fn a_driven_experiment_matches_run_experiment() {
        let opts = RunOptions::smoke().with_instrs(8_000);
        let direct = run_experiment("table2", &opts).unwrap().render(Format::Plain);
        let mut reports: Vec<String> = Vec::new();
        let mut sink = |text: &str| reports.push(text.to_owned());
        let outcome =
            Driver::new(opts, Format::Plain).run(&JobSpec::Experiment("table2".into()), &mut sink);
        assert_eq!(reports, [direct], "the driver must render the same bytes");
        assert_eq!(outcome, DriverOutcome::default());
        assert!(!outcome.failed());
    }

    #[test]
    fn unknown_ids_at_run_time_count_as_failed_experiments() {
        let mut sink = |_: &str| panic!("no report expected");
        let outcome = Driver::new(RunOptions::smoke(), Format::Plain)
            .run(&JobSpec::Experiment("table99".into()), &mut sink);
        assert_eq!(outcome.failed_experiments, 1);
        assert!(outcome.failed());
    }
}
