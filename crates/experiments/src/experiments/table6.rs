//! Paper Table 6: effect of cache size (32K) on policy ISPI.

use specfetch_cache::CacheConfig;
use specfetch_core::{FetchPolicy, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, measured, vs, vs_cell};
use crate::paper::TABLE6;
use crate::runner::{mean_ok, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Scenario};
use crate::{ExperimentReport, RunOptions, Table};

/// ISPI of all five policies for one benchmark with a 32K cache.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// ISPI in policy order; each slot is the measurement or its point's
    /// failure.
    pub ispi: [Measured<f64>; 5],
}

/// The declarative grid: all five policies at the 32K cache.
pub(crate) fn scenario() -> Scenario {
    let points = FetchPolicy::ALL
        .into_iter()
        .map(|policy| {
            let mut cfg = baseline(policy);
            cfg.icache = CacheConfig::paper_32k();
            ConfigPoint::new(policy.short_name(), cfg)
        })
        .collect();
    Scenario::suite("table6", "Effect of cache size: 32K direct-mapped (paper Table 6)", points)
}

/// Gathers the 32K sweep.
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let grid = run_scenario(scenario(), opts);
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &benchmark)| {
            let runs = grid.bench_cells(bi);
            let ispi = std::array::from_fn(|i| measured(&runs[i], SimResult::ispi));
            Row { benchmark, ispi }
        })
        .collect()
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table = Table::new([
        "bench",
        "Oracle (paper)",
        "Opt (paper)",
        "Res (paper)",
        "Pess (paper)",
        "Dec (paper)",
    ]);
    for (i, r) in rows.iter().enumerate() {
        let mut cells = vec![r.benchmark.name.to_owned()];
        for (m, &published) in r.ispi.iter().zip(TABLE6[i].iter()) {
            cells.push(vs_cell(m, published));
        }
        table.row(cells);
    }
    let paper_avg = [0.87, 0.94, 0.87, 0.97, 0.98];
    let mut cells = vec!["Average".to_owned()];
    for (p, &published) in paper_avg.iter().enumerate() {
        cells.push(vs(mean_ok(rows.iter().map(|r| &r.ispi[p])), published));
    }
    table.row(cells);
    ExperimentReport {
        id: "table6",
        title: "Effect of cache size: 32K direct-mapped (paper Table 6)".into(),
        table,
        notes: vec!["Expected shape: miss rates shrink, so policies converge — the \
             Resume-vs-Pessimistic gap narrows relative to the 8K cache."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table5;
    use crate::runner::mean;

    #[test]
    fn thirteen_rows() {
        let rows = data(&RunOptions::smoke());
        assert_eq!(rows.len(), 13);
    }

    #[test]
    fn policies_converge_relative_to_8k() {
        let opts = RunOptions::smoke().with_instrs(60_000);
        let k32 = data(&opts);
        let k8 = table5::data(&opts);
        // Pess - Res, from cells that must all be Ok in a clean run.
        let gap = |ispi: &[Measured<f64>; 5]| {
            (*ispi[3].as_ref().unwrap() - *ispi[2].as_ref().unwrap()).max(0.0)
        };
        let gap32 = mean(k32.iter().map(|r| gap(&r.ispi)));
        let gap8 = mean(k8.iter().filter(|r| r.depth == 4).map(|r| gap(&r.ispi)));
        assert!(gap32 < gap8, "32K Pess-Res gap {gap32:.3} should be below the 8K gap {gap8:.3}");
    }
}
