//! Ablation studies beyond the paper's tables: prefetch variants,
//! branch-architecture choices, and cache associativity.
//!
//! These quantify the design decisions the paper takes as given (its
//! §2 cites the papers these mechanisms come from) plus the
//! set-associative caches it leaves unexplored.
//!
//! Each ablation declares its grid as a [`Scenario`] and runs through
//! the shared [`run_scenario`] pipeline (per-point fault isolation,
//! process-wide trace cache, result memo); only the rendering stays
//! bespoke. The row-level failure model matches the pre-scenario code:
//! a benchmark's row reports the first failing point in it.

use specfetch_bpred::{BtbCoupling, DirectionKind, GhrUpdate, PhtTrain};
use specfetch_core::{FetchPolicy, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::experiments::baseline;
use crate::runner::{mean, CellFailure, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Scenario, ScenarioGrid};
use crate::{ExperimentReport, RunOptions, Table};

/// All of one benchmark's cells, or the first failure among them.
fn row_results(grid: &ScenarioGrid, bi: usize) -> Result<Vec<&SimResult>, &CellFailure> {
    grid.bench_cells(bi).iter().map(|c| c.as_ref()).collect()
}

/// Suite-average ISPI of one grid column, or its first failing cell.
/// Benchmarks are averaged in suite order, so the mean is bit-identical
/// to a hand-rolled loop over [`Benchmark::all`].
fn col_ispi(grid: &ScenarioGrid, pi: usize) -> Measured<f64> {
    let vals: Vec<f64> = (0..grid.scenario.benches.len())
        .map(|bi| grid.cell(bi, pi).as_ref().map(SimResult::ispi).map_err(Clone::clone))
        .collect::<Result<_, _>>()?;
    Ok(mean(vals))
}

// ---------------------------------------------------------------------------
// Prefetch variants
// ---------------------------------------------------------------------------

/// Prefetch configurations compared by [`prefetch_data`].
pub const PREFETCH_VARIANTS: [&str; 5] = ["none", "next-line", "target", "both-path", "stream"];

/// `(next_line, target, stream_buffer)` per variant, same order.
const PREFETCH_FLAGS: [(bool, bool, bool); 5] = [
    (false, false, false),
    (true, false, false),
    (false, true, false),
    (true, true, false),
    (false, false, true),
];

/// ISPI and traffic per prefetch variant for one benchmark (Resume
/// policy, baseline machine).
#[derive(Clone, PartialEq, Debug)]
pub struct PrefetchRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// ISPI per variant, [`PREFETCH_VARIANTS`] order.
    pub ispi: [f64; 5],
    /// Total memory traffic per variant, same order.
    pub traffic: [u64; 5],
}

/// The declarative grid: the five prefetch variants under Resume.
pub(crate) fn prefetch_scenario() -> Scenario {
    let points = PREFETCH_VARIANTS
        .iter()
        .zip(PREFETCH_FLAGS)
        .map(|(&label, (next, target, stream))| {
            let mut cfg = baseline(FetchPolicy::Resume);
            cfg.prefetch = next;
            cfg.target_prefetch = target;
            cfg.stream_buffer = stream;
            ConfigPoint::new(label, cfg)
        })
        .collect();
    Scenario::suite(
        "ablation-prefetch",
        "Prefetch variants under Resume: none / next-line (paper) / target \
         (Smith & Hsu) / both-path (Pierce & Mudge)",
        points,
    )
}

/// Re-chunks an evaluated prefetch grid into per-benchmark rows.
fn prefetch_rows(grid: &ScenarioGrid) -> Vec<Measured<PrefetchRow>> {
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &benchmark)| {
            let runs = row_results(grid, bi).map_err(Clone::clone)?;
            Ok(PrefetchRow {
                benchmark,
                ispi: std::array::from_fn(|i| runs[i].ispi()),
                traffic: std::array::from_fn(|i| runs[i].total_traffic()),
            })
        })
        .collect()
}

/// Gathers the prefetch-variant sweep.
pub fn prefetch_data(opts: &RunOptions) -> Vec<PrefetchRow> {
    prefetch_rows(&run_scenario(prefetch_scenario(), opts))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("prefetch sweep: {}", e.reason)))
        .collect()
}

/// Renders the prefetch-variant report.
pub fn run_prefetch(opts: &RunOptions) -> ExperimentReport {
    let grid = run_scenario(prefetch_scenario(), opts);
    let rows = prefetch_rows(&grid);
    let mut table = Table::new([
        "bench",
        "none",
        "next-line",
        "target",
        "both-path",
        "stream",
        "traffic x (nl/t/both/sb)",
    ]);
    for (b, row) in grid.scenario.benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => {
                let base = r.traffic[0].max(1) as f64;
                cells.extend(r.ispi.iter().map(|i| format!("{i:.3}")));
                cells.push(format!(
                    "{:.2}/{:.2}/{:.2}/{:.2}",
                    r.traffic[1] as f64 / base,
                    r.traffic[2] as f64 / base,
                    r.traffic[3] as f64 / base,
                    r.traffic[4] as f64 / base
                ));
            }
            Err(e) => cells.extend((0..6).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok = |i: usize| mean(rows.iter().filter_map(|r| r.as_ref().ok()).map(|r| r.ispi[i]));
    let mut avg = vec!["Average".to_owned()];
    for i in 0..5 {
        avg.push(format!("{:.3}", ok(i)));
    }
    avg.push("-".into());
    table.row(avg);
    ExperimentReport {
        id: "ablation-prefetch",
        title: "Prefetch variants under Resume: none / next-line (paper) / target \
                (Smith & Hsu) / both-path (Pierce & Mudge)"
            .into(),
        table,
        notes: vec!["Pierce & Mudge report next-line provides 70-80% of the combined gain; \
             expect 'both-path' to edge out 'next-line' at extra traffic. The \
             four-entry Jouppi stream buffer covers sequential misses like next-line \
             but restarts on every non-sequential miss — on this shared blocking bus \
             it loses on branchy codes (Jouppi assumed a separate fill path), an \
             amplified case of the paper's bandwidth caution."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Branch-architecture variants
// ---------------------------------------------------------------------------

/// Branch-architecture variants compared by [`bpred_data`].
pub const BPRED_VARIANTS: [&str; 6] =
    ["paper", "coupled-btb", "bimodal", "static-nt", "spec-ghr", "resolve-idx"];

/// ISPI and conditional accuracy per branch-architecture variant.
#[derive(Clone, PartialEq, Debug)]
pub struct BpredRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// ISPI per variant, [`BPRED_VARIANTS`] order.
    pub ispi: [f64; 6],
    /// Conditional-branch prediction accuracy per variant.
    pub accuracy: [f64; 6],
}

/// The declarative grid: the six branch-architecture variants under
/// Resume.
pub(crate) fn bpred_scenario() -> Scenario {
    let points = BPRED_VARIANTS
        .iter()
        .map(|&variant| {
            let mut cfg = baseline(FetchPolicy::Resume);
            match variant {
                "paper" => {}
                "coupled-btb" => cfg.bpred.coupling = BtbCoupling::Coupled,
                "bimodal" => cfg.bpred.direction = DirectionKind::Bimodal,
                "static-nt" => cfg.bpred.direction = DirectionKind::StaticNotTaken,
                "spec-ghr" => cfg.bpred.ghr_update = GhrUpdate::Speculative,
                "resolve-idx" => cfg.bpred.pht_train = PhtTrain::ResolveIndex,
                other => unreachable!("unknown variant {other}"),
            }
            ConfigPoint::new(variant, cfg)
        })
        .collect();
    Scenario::suite(
        "ablation-bpred",
        "Branch-architecture ablations under Resume (decoupled gshare is the \
         paper's choice)",
        points,
    )
}

/// Re-chunks an evaluated branch-architecture grid into per-benchmark
/// rows.
fn bpred_rows(grid: &ScenarioGrid) -> Vec<Measured<BpredRow>> {
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &benchmark)| {
            let runs = row_results(grid, bi).map_err(Clone::clone)?;
            Ok(BpredRow {
                benchmark,
                ispi: std::array::from_fn(|i| runs[i].ispi()),
                accuracy: std::array::from_fn(|i| runs[i].bpred.cond_accuracy()),
            })
        })
        .collect()
}

/// Gathers the branch-architecture sweep (Resume policy).
pub fn bpred_data(opts: &RunOptions) -> Vec<BpredRow> {
    bpred_rows(&run_scenario(bpred_scenario(), opts))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("bpred sweep: {}", e.reason)))
        .collect()
}

/// Renders the branch-architecture report.
pub fn run_bpred(opts: &RunOptions) -> ExperimentReport {
    let grid = run_scenario(bpred_scenario(), opts);
    let rows = bpred_rows(&grid);
    let mut headers = vec!["bench".to_owned()];
    headers.extend(BPRED_VARIANTS.iter().map(|v| format!("{v} (acc%)")));
    let mut table = Table::new(headers);
    for (b, row) in grid.scenario.benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => {
                for i in 0..BPRED_VARIANTS.len() {
                    cells.push(format!("{:.3} ({:.1})", r.ispi[i], 100.0 * r.accuracy[i]));
                }
            }
            Err(e) => cells.extend((0..BPRED_VARIANTS.len()).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok_rows = || rows.iter().filter_map(|r| r.as_ref().ok());
    let mut avg = vec!["Average".to_owned()];
    for i in 0..BPRED_VARIANTS.len() {
        avg.push(format!(
            "{:.3} ({:.1})",
            mean(ok_rows().map(|r| r.ispi[i])),
            100.0 * mean(ok_rows().map(|r| r.accuracy[i]))
        ));
    }
    table.row(avg);
    ExperimentReport {
        id: "ablation-bpred",
        title: "Branch-architecture ablations under Resume (decoupled gshare is the \
                paper's choice)"
            .into(),
        table,
        notes: vec!["Expected: coupled BTBs lose accuracy on BTB misses (Calder & Grunwald \
             '94); static not-taken is the floor. Caveat: on these synthetic \
             workloads bimodal can beat gshare-512 — i.i.d.-biased conditionals give \
             the global history little signal while its entropy scatters each branch \
             across the small table (the PHT ISPI nevertheless matches Table 3)."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Cache associativity
// ---------------------------------------------------------------------------

/// Associativities compared by [`assoc_data`].
pub const ASSOCIATIVITIES: [usize; 3] = [1, 2, 4];

/// Miss rate and ISPI per associativity (8K cache, Resume policy).
#[derive(Clone, PartialEq, Debug)]
pub struct AssocRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Correct-path miss rate (percent) per associativity.
    pub miss: [f64; 3],
    /// ISPI per associativity.
    pub ispi: [f64; 3],
}

/// The declarative grid: three associativities at 8K under Resume.
pub(crate) fn assoc_scenario() -> Scenario {
    let points = ASSOCIATIVITIES
        .into_iter()
        .map(|assoc| {
            let mut cfg = baseline(FetchPolicy::Resume);
            cfg.icache.assoc = assoc;
            ConfigPoint::new(format!("{assoc}-way"), cfg)
        })
        .collect();
    Scenario::suite(
        "ablation-assoc",
        "8K I-cache associativity under Resume (the paper models direct-mapped \
         only)",
        points,
    )
}

/// Re-chunks an evaluated associativity grid into per-benchmark rows.
fn assoc_rows(grid: &ScenarioGrid) -> Vec<Measured<AssocRow>> {
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &benchmark)| {
            let runs = row_results(grid, bi).map_err(Clone::clone)?;
            Ok(AssocRow {
                benchmark,
                miss: std::array::from_fn(|i| runs[i].miss_rate_pct()),
                ispi: std::array::from_fn(|i| runs[i].ispi()),
            })
        })
        .collect()
}

/// Gathers the associativity sweep.
pub fn assoc_data(opts: &RunOptions) -> Vec<AssocRow> {
    assoc_rows(&run_scenario(assoc_scenario(), opts))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("associativity sweep: {}", e.reason)))
        .collect()
}

/// Renders the associativity report.
pub fn run_assoc(opts: &RunOptions) -> ExperimentReport {
    let grid = run_scenario(assoc_scenario(), opts);
    let rows = assoc_rows(&grid);
    let mut table = Table::new(["bench", "DM miss%/ISPI", "2-way miss%/ISPI", "4-way miss%/ISPI"]);
    for (b, row) in grid.scenario.benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => cells.extend((0..3).map(|i| format!("{:.2}/{:.3}", r.miss[i], r.ispi[i]))),
            Err(e) => cells.extend((0..3).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok_rows = || rows.iter().filter_map(|r| r.as_ref().ok());
    let mut avg = vec!["Average".to_owned()];
    for i in 0..3 {
        avg.push(format!(
            "{:.2}/{:.3}",
            mean(ok_rows().map(|r| r.miss[i])),
            mean(ok_rows().map(|r| r.ispi[i]))
        ));
    }
    table.row(avg);
    ExperimentReport {
        id: "ablation-assoc",
        title: "8K I-cache associativity under Resume (the paper models direct-mapped \
                only)"
            .into(),
        table,
        notes: vec!["Associativity removes conflict misses; the residual at 4-way is \
             capacity — how much of each benchmark's 8K miss rate was conflict \
             pressure."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Miss-penalty sweep (the summary's crossover claim)
// ---------------------------------------------------------------------------

/// Miss penalties swept by [`penalty_data`].
pub const PENALTIES: [u64; 5] = [3, 5, 10, 20, 40];

/// Suite-average ISPI of Resume and Pessimistic at one miss penalty.
#[derive(Clone, PartialEq, Debug)]
pub struct PenaltyRow {
    /// Line-fill latency in cycles.
    pub penalty: u64,
    /// Suite-average Resume ISPI.
    pub resume: f64,
    /// Suite-average Pessimistic ISPI.
    pub pessimistic: f64,
    /// Suite-average Resume-with-prefetch ISPI.
    pub resume_pref: f64,
}

/// The declarative grid: `penalty × (Resume, Pessimistic, Resume+Pref)`,
/// penalty-major — three columns per [`PENALTIES`] entry.
pub(crate) fn penalty_scenario() -> Scenario {
    let mut points = Vec::new();
    for penalty in PENALTIES {
        for (label, policy, prefetch) in [
            ("Res", FetchPolicy::Resume, false),
            ("Pess", FetchPolicy::Pessimistic, false),
            ("Res+Pref", FetchPolicy::Resume, true),
        ] {
            let mut cfg = baseline(policy);
            cfg.miss_penalty = penalty;
            cfg.prefetch = prefetch;
            points.push(ConfigPoint::new(format!("p{penalty}/{label}"), cfg));
        }
    }
    Scenario::suite(
        "ablation-penalty",
        "Miss-penalty sweep: where the conservative policy catches up (paper \
         summary / §5.2.1)",
        points,
    )
}

/// Projects an evaluated penalty grid into suite-average rows, locating
/// the crossover the paper's summary describes ("when the miss penalty
/// is high, Pessimistic performs as well as Resume on average").
fn penalty_rows(grid: &ScenarioGrid) -> Vec<Measured<PenaltyRow>> {
    PENALTIES
        .iter()
        .enumerate()
        .map(|(i, &penalty)| {
            Ok(PenaltyRow {
                penalty,
                resume: col_ispi(grid, 3 * i)?,
                pessimistic: col_ispi(grid, 3 * i + 1)?,
                resume_pref: col_ispi(grid, 3 * i + 2)?,
            })
        })
        .collect()
}

/// Gathers the miss-penalty sweep.
pub fn penalty_data(opts: &RunOptions) -> Vec<PenaltyRow> {
    penalty_rows(&run_scenario(penalty_scenario(), opts))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("penalty sweep: {}", e.reason)))
        .collect()
}

/// Renders the penalty-sweep report.
pub fn run_penalty(opts: &RunOptions) -> ExperimentReport {
    let rows = penalty_rows(&run_scenario(penalty_scenario(), opts));
    let mut table = Table::new(["penalty", "Resume", "Pessimistic", "Pess/Res", "Resume+Pref"]);
    for (penalty, row) in PENALTIES.into_iter().zip(&rows) {
        let mut cells = vec![penalty.to_string()];
        match row {
            Ok(r) => cells.extend([
                format!("{:.3}", r.resume),
                format!("{:.3}", r.pessimistic),
                format!("{:.2}", r.pessimistic / r.resume.max(1e-9)),
                format!("{:.3}", r.resume_pref),
            ]),
            Err(e) => cells.extend((0..4).map(|_| e.cell())),
        }
        table.row(cells);
    }
    ExperimentReport {
        id: "ablation-penalty",
        title: "Miss-penalty sweep: where the conservative policy catches up (paper \
                summary / §5.2.1)"
            .into(),
        table,
        notes: vec!["Expected shape: Pessimistic/Resume ratio falls toward (and past) 1.0 as \
             the penalty grows; Resume+Pref's advantage over plain Resume shrinks and \
             inverts at high penalties."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Pipelined miss requests (the paper's §6 future work)
// ---------------------------------------------------------------------------

/// Bus slot counts swept by [`bus_data`].
pub const BUS_SLOTS: [usize; 3] = [1, 2, 4];

/// Suite-average ISPI at the long penalty, with and without next-line
/// prefetching, per bus configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct BusRow {
    /// Transaction slots on the bus.
    pub slots: usize,
    /// Resume, no prefetch.
    pub plain: f64,
    /// Resume with next-line prefetching.
    pub prefetch: f64,
}

/// The declarative grid: `bus slots × (plain, prefetch)` under Resume at
/// the 20-cycle penalty, slot-major — two columns per [`BUS_SLOTS`]
/// entry. Tests the paper's §6 hypothesis: does pipelining miss requests
/// rescue next-line prefetching where Figure 4 shows it hurting?
pub(crate) fn bus_scenario() -> Scenario {
    let mut points = Vec::new();
    for slots in BUS_SLOTS {
        for prefetch in [false, true] {
            let mut cfg = baseline(FetchPolicy::Resume);
            cfg.miss_penalty = 20;
            cfg.bus_slots = slots;
            cfg.prefetch = prefetch;
            let label =
                if prefetch { format!("b{slots}/Res+Pref") } else { format!("b{slots}/Res") };
            points.push(ConfigPoint::new(label, cfg));
        }
    }
    Scenario::suite(
        "ablation-bus",
        "Pipelined miss requests at the 20-cycle penalty (paper §6 future work)",
        points,
    )
}

/// Projects an evaluated bus grid into suite-average rows.
fn bus_rows(grid: &ScenarioGrid) -> Vec<Measured<BusRow>> {
    BUS_SLOTS
        .iter()
        .enumerate()
        .map(|(i, &slots)| {
            Ok(BusRow {
                slots,
                plain: col_ispi(grid, 2 * i)?,
                prefetch: col_ispi(grid, 2 * i + 1)?,
            })
        })
        .collect()
}

/// Gathers the pipelined-bus sweep.
pub fn bus_data(opts: &RunOptions) -> Vec<BusRow> {
    bus_rows(&run_scenario(bus_scenario(), opts))
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("bus sweep: {}", e.reason)))
        .collect()
}

/// Renders the pipelined-bus report.
pub fn run_bus(opts: &RunOptions) -> ExperimentReport {
    let rows = bus_rows(&run_scenario(bus_scenario(), opts));
    let mut table = Table::new(["bus slots", "Resume", "Resume+Pref", "prefetch gain%"]);
    for (slots, row) in BUS_SLOTS.into_iter().zip(&rows) {
        let mut cells = vec![slots.to_string()];
        match row {
            Ok(r) => cells.extend([
                format!("{:.3}", r.plain),
                format!("{:.3}", r.prefetch),
                format!("{:.1}", 100.0 * (r.plain - r.prefetch) / r.plain.max(1e-9)),
            ]),
            Err(e) => cells.extend((0..3).map(|_| e.cell())),
        }
        table.row(cells);
    }
    ExperimentReport {
        id: "ablation-bus",
        title: "Pipelined miss requests at the 20-cycle penalty (paper §6 future work)".into(),
        table,
        notes: vec!["Expected shape: with one slot, prefetching at the long penalty is a \
             wash or a loss (Figure 4); extra slots let prefetches overlap demand \
             fills, restoring the prefetch gain."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOptions {
        RunOptions::smoke().with_instrs(60_000)
    }

    #[test]
    fn both_path_prefetching_beats_none_on_average() {
        let rows = prefetch_data(&opts());
        let avg = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(avg(3) < avg(0), "both-path {:.3} !< none {:.3}", avg(3), avg(0));
        assert!(avg(1) < avg(0), "next-line {:.3} !< none {:.3}", avg(1), avg(0));
        // Traffic is near-monotone: covering a line by target prefetch can
        // displace a next-line issue or a demand fill, so allow small
        // reductions but no large ones.
        for r in &rows {
            assert!(
                r.traffic[3] as f64 >= 0.95 * r.traffic[1] as f64,
                "{}: both {} vs next-line {}",
                r.benchmark.name,
                r.traffic[3],
                r.traffic[1]
            );
        }
    }

    /// Any dynamic predictor must beat static not-taken. Note: on these
    /// synthetic workloads bimodal can *beat* gshare — many conditionals
    /// are i.i.d.-biased, so the 9-bit global history carries little
    /// signal while still scattering each branch over many of the 512
    /// entries (McFarling's gshare advantage needs low-entropy, correlated
    /// histories or larger tables). The measured PHT ISPI still lands on
    /// the paper's Table 3 values, which is the quantity the reproduction
    /// calibrates.
    #[test]
    fn dynamic_prediction_beats_static() {
        let rows = bpred_data(&opts());
        let acc = |i: usize| mean(rows.iter().map(|r| r.accuracy[i]));
        assert!(acc(0) > acc(3), "gshare {:.3} !> static {:.3}", acc(0), acc(3));
        assert!(acc(2) > acc(3), "bimodal {:.3} !> static {:.3}", acc(2), acc(3));
        let ispi = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(ispi(0) < ispi(3), "paper config must beat static not-taken");
    }

    #[test]
    fn decoupled_beats_coupled() {
        let rows = bpred_data(&opts());
        let ispi = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(
            ispi(0) < ispi(1),
            "decoupled {:.3} should beat coupled {:.3} (Calder & Grunwald)",
            ispi(0),
            ispi(1)
        );
    }

    /// Associativity usually removes conflict misses, but LRU is
    /// *pathological* on near-cyclic sweeps larger than the cache (each
    /// way evicts exactly the line needed furthest in the future), so a
    /// strictly monotone assertion would be wrong — fpppp, a nearly
    /// cyclic sweep, genuinely misses more at 4-way than 2-way. Assert
    /// the average improves and per-benchmark regressions stay modest.
    #[test]
    fn associativity_reduces_misses_on_average() {
        let rows = assoc_data(&opts());
        let avg = |i: usize| mean(rows.iter().map(|r| r.miss[i]));
        assert!(avg(1) <= avg(0) + 0.05, "2-way {:.2} vs DM {:.2}", avg(1), avg(0));
        for r in &rows {
            assert!(
                r.miss[2] <= r.miss[0] * 1.5 + 0.3,
                "{}: 4-way {:.2} wildly above DM {:.2}",
                r.benchmark.name,
                r.miss[2],
                r.miss[0]
            );
        }
    }

    #[test]
    fn pipelined_bus_rescues_long_latency_prefetching() {
        let rows = bus_data(&opts());
        let gain = |r: &BusRow| (r.plain - r.prefetch) / r.plain;
        assert!(
            gain(&rows[2]) > gain(&rows[0]),
            "4-slot prefetch gain {:.3} should exceed 1-slot gain {:.3}",
            gain(&rows[2]),
            gain(&rows[0])
        );
    }

    #[test]
    fn pessimistic_catches_up_as_penalty_grows() {
        let rows = penalty_data(&opts());
        let ratio = |r: &PenaltyRow| r.pessimistic / r.resume;
        let first = ratio(&rows[0]);
        let last = ratio(&rows[rows.len() - 1]);
        assert!(last < first, "Pess/Res ratio should fall with penalty: {first:.3} -> {last:.3}");
    }

    #[test]
    fn reports_render() {
        let o = RunOptions::smoke();
        for rep in [run_prefetch(&o), run_bpred(&o), run_assoc(&o)] {
            assert_eq!(rep.table.len(), 14);
            assert!(!rep.render(crate::Format::Plain).is_empty());
        }
        assert_eq!(run_penalty(&o).table.len(), PENALTIES.len());
    }
}
