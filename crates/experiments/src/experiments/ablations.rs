//! Ablation studies beyond the paper's tables: prefetch variants,
//! branch-architecture choices, and cache associativity.
//!
//! These quantify the design decisions the paper takes as given (its
//! §2 cites the papers these mechanisms come from) plus the
//! set-associative caches it leaves unexplored.

use specfetch_bpred::{BtbCoupling, DirectionKind, GhrUpdate, PhtTrain};
use specfetch_core::{FetchPolicy, SpecfetchError};
use specfetch_synth::suite::Benchmark;

use crate::experiments::baseline;
use crate::runner::{isolated_map, mean, simulate_benchmark, try_simulate_benchmark};
use crate::{par_map, ExperimentReport, RunOptions, Table};

// ---------------------------------------------------------------------------
// Prefetch variants
// ---------------------------------------------------------------------------

/// Prefetch configurations compared by [`prefetch_data`].
pub const PREFETCH_VARIANTS: [&str; 5] = ["none", "next-line", "target", "both-path", "stream"];

/// ISPI and traffic per prefetch variant for one benchmark (Resume
/// policy, baseline machine).
#[derive(Clone, PartialEq, Debug)]
pub struct PrefetchRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// ISPI per variant, [`PREFETCH_VARIANTS`] order.
    pub ispi: [f64; 5],
    /// Total memory traffic per variant, same order.
    pub traffic: [u64; 5],
}

/// One benchmark's prefetch-variant sweep, with trace failures typed.
fn try_prefetch_row(
    b: &'static Benchmark,
    opts: RunOptions,
) -> Result<PrefetchRow, SpecfetchError> {
    let mut ispi = [0.0; 5];
    let mut traffic = [0u64; 5];
    for (i, &(next, target, stream)) in [
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (false, false, true),
    ]
    .iter()
    .enumerate()
    {
        let mut cfg = baseline(FetchPolicy::Resume);
        cfg.prefetch = next;
        cfg.target_prefetch = target;
        cfg.stream_buffer = stream;
        let r = try_simulate_benchmark(b, cfg, opts)?;
        ispi[i] = r.ispi();
        traffic[i] = r.total_traffic();
    }
    Ok(PrefetchRow { benchmark: b, ispi, traffic })
}

/// Gathers the prefetch-variant sweep.
pub fn prefetch_data(opts: &RunOptions) -> Vec<PrefetchRow> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| {
        try_prefetch_row(b, opts).unwrap_or_else(|e| panic!("sweeping {}: {e}", b.name))
    })
}

/// Renders the prefetch-variant report.
pub fn run_prefetch(opts: &RunOptions) -> ExperimentReport {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let rows = isolated_map(benches.clone(), opts, |b| try_prefetch_row(b, *opts));
    let mut table = Table::new([
        "bench",
        "none",
        "next-line",
        "target",
        "both-path",
        "stream",
        "traffic x (nl/t/both/sb)",
    ]);
    for (b, row) in benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => {
                let base = r.traffic[0].max(1) as f64;
                cells.extend(r.ispi.iter().map(|i| format!("{i:.3}")));
                cells.push(format!(
                    "{:.2}/{:.2}/{:.2}/{:.2}",
                    r.traffic[1] as f64 / base,
                    r.traffic[2] as f64 / base,
                    r.traffic[3] as f64 / base,
                    r.traffic[4] as f64 / base
                ));
            }
            Err(e) => cells.extend((0..6).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok = |i: usize| mean(rows.iter().filter_map(|r| r.as_ref().ok()).map(|r| r.ispi[i]));
    let mut avg = vec!["Average".to_owned()];
    for i in 0..5 {
        avg.push(format!("{:.3}", ok(i)));
    }
    avg.push("-".into());
    table.row(avg);
    ExperimentReport {
        id: "ablation-prefetch",
        title: "Prefetch variants under Resume: none / next-line (paper) / target \
                (Smith & Hsu) / both-path (Pierce & Mudge)"
            .into(),
        table,
        notes: vec!["Pierce & Mudge report next-line provides 70-80% of the combined gain; \
             expect 'both-path' to edge out 'next-line' at extra traffic. The \
             four-entry Jouppi stream buffer covers sequential misses like next-line \
             but restarts on every non-sequential miss — on this shared blocking bus \
             it loses on branchy codes (Jouppi assumed a separate fill path), an \
             amplified case of the paper's bandwidth caution."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Branch-architecture variants
// ---------------------------------------------------------------------------

/// Branch-architecture variants compared by [`bpred_data`].
pub const BPRED_VARIANTS: [&str; 6] =
    ["paper", "coupled-btb", "bimodal", "static-nt", "spec-ghr", "resolve-idx"];

/// ISPI and conditional accuracy per branch-architecture variant.
#[derive(Clone, PartialEq, Debug)]
pub struct BpredRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// ISPI per variant, [`BPRED_VARIANTS`] order.
    pub ispi: [f64; 6],
    /// Conditional-branch prediction accuracy per variant.
    pub accuracy: [f64; 6],
}

/// One benchmark's branch-architecture sweep, with trace failures typed.
fn try_bpred_row(b: &'static Benchmark, opts: RunOptions) -> Result<BpredRow, SpecfetchError> {
    let mut ispi = [0.0; 6];
    let mut accuracy = [0.0; 6];
    for (i, variant) in BPRED_VARIANTS.iter().enumerate() {
        let mut cfg = baseline(FetchPolicy::Resume);
        match *variant {
            "paper" => {}
            "coupled-btb" => cfg.bpred.coupling = BtbCoupling::Coupled,
            "bimodal" => cfg.bpred.direction = DirectionKind::Bimodal,
            "static-nt" => cfg.bpred.direction = DirectionKind::StaticNotTaken,
            "spec-ghr" => cfg.bpred.ghr_update = GhrUpdate::Speculative,
            "resolve-idx" => cfg.bpred.pht_train = PhtTrain::ResolveIndex,
            other => unreachable!("unknown variant {other}"),
        }
        let r = try_simulate_benchmark(b, cfg, opts)?;
        ispi[i] = r.ispi();
        accuracy[i] = r.bpred.cond_accuracy();
    }
    Ok(BpredRow { benchmark: b, ispi, accuracy })
}

/// Gathers the branch-architecture sweep (Resume policy).
pub fn bpred_data(opts: &RunOptions) -> Vec<BpredRow> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| {
        try_bpred_row(b, opts).unwrap_or_else(|e| panic!("sweeping {}: {e}", b.name))
    })
}

/// Renders the branch-architecture report.
pub fn run_bpred(opts: &RunOptions) -> ExperimentReport {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let rows = isolated_map(benches.clone(), opts, |b| try_bpred_row(b, *opts));
    let mut headers = vec!["bench".to_owned()];
    headers.extend(BPRED_VARIANTS.iter().map(|v| format!("{v} (acc%)")));
    let mut table = Table::new(headers);
    for (b, row) in benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => {
                for i in 0..BPRED_VARIANTS.len() {
                    cells.push(format!("{:.3} ({:.1})", r.ispi[i], 100.0 * r.accuracy[i]));
                }
            }
            Err(e) => cells.extend((0..BPRED_VARIANTS.len()).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok_rows = || rows.iter().filter_map(|r| r.as_ref().ok());
    let mut avg = vec!["Average".to_owned()];
    for i in 0..BPRED_VARIANTS.len() {
        avg.push(format!(
            "{:.3} ({:.1})",
            mean(ok_rows().map(|r| r.ispi[i])),
            100.0 * mean(ok_rows().map(|r| r.accuracy[i]))
        ));
    }
    table.row(avg);
    ExperimentReport {
        id: "ablation-bpred",
        title: "Branch-architecture ablations under Resume (decoupled gshare is the \
                paper's choice)"
            .into(),
        table,
        notes: vec!["Expected: coupled BTBs lose accuracy on BTB misses (Calder & Grunwald \
             '94); static not-taken is the floor. Caveat: on these synthetic \
             workloads bimodal can beat gshare-512 — i.i.d.-biased conditionals give \
             the global history little signal while its entropy scatters each branch \
             across the small table (the PHT ISPI nevertheless matches Table 3)."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Cache associativity
// ---------------------------------------------------------------------------

/// Associativities compared by [`assoc_data`].
pub const ASSOCIATIVITIES: [usize; 3] = [1, 2, 4];

/// Miss rate and ISPI per associativity (8K cache, Resume policy).
#[derive(Clone, PartialEq, Debug)]
pub struct AssocRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Correct-path miss rate (percent) per associativity.
    pub miss: [f64; 3],
    /// ISPI per associativity.
    pub ispi: [f64; 3],
}

/// One benchmark's associativity sweep, with trace failures typed.
fn try_assoc_row(b: &'static Benchmark, opts: RunOptions) -> Result<AssocRow, SpecfetchError> {
    let mut miss = [0.0; 3];
    let mut ispi = [0.0; 3];
    for (i, assoc) in ASSOCIATIVITIES.into_iter().enumerate() {
        let mut cfg = baseline(FetchPolicy::Resume);
        cfg.icache.assoc = assoc;
        let r = try_simulate_benchmark(b, cfg, opts)?;
        miss[i] = r.miss_rate_pct();
        ispi[i] = r.ispi();
    }
    Ok(AssocRow { benchmark: b, miss, ispi })
}

/// Gathers the associativity sweep.
pub fn assoc_data(opts: &RunOptions) -> Vec<AssocRow> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| {
        try_assoc_row(b, opts).unwrap_or_else(|e| panic!("sweeping {}: {e}", b.name))
    })
}

/// Renders the associativity report.
pub fn run_assoc(opts: &RunOptions) -> ExperimentReport {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let rows = isolated_map(benches.clone(), opts, |b| try_assoc_row(b, *opts));
    let mut table = Table::new(["bench", "DM miss%/ISPI", "2-way miss%/ISPI", "4-way miss%/ISPI"]);
    for (b, row) in benches.iter().zip(&rows) {
        let mut cells = vec![b.name.to_owned()];
        match row {
            Ok(r) => cells.extend((0..3).map(|i| format!("{:.2}/{:.3}", r.miss[i], r.ispi[i]))),
            Err(e) => cells.extend((0..3).map(|_| e.cell())),
        }
        table.row(cells);
    }
    let ok_rows = || rows.iter().filter_map(|r| r.as_ref().ok());
    let mut avg = vec!["Average".to_owned()];
    for i in 0..3 {
        avg.push(format!(
            "{:.2}/{:.3}",
            mean(ok_rows().map(|r| r.miss[i])),
            mean(ok_rows().map(|r| r.ispi[i]))
        ));
    }
    table.row(avg);
    ExperimentReport {
        id: "ablation-assoc",
        title: "8K I-cache associativity under Resume (the paper models direct-mapped \
                only)"
            .into(),
        table,
        notes: vec!["Associativity removes conflict misses; the residual at 4-way is \
             capacity — how much of each benchmark's 8K miss rate was conflict \
             pressure."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Miss-penalty sweep (the summary's crossover claim)
// ---------------------------------------------------------------------------

/// Miss penalties swept by [`penalty_data`].
pub const PENALTIES: [u64; 5] = [3, 5, 10, 20, 40];

/// Suite-average ISPI of Resume and Pessimistic at one miss penalty.
#[derive(Clone, PartialEq, Debug)]
pub struct PenaltyRow {
    /// Line-fill latency in cycles.
    pub penalty: u64,
    /// Suite-average Resume ISPI.
    pub resume: f64,
    /// Suite-average Pessimistic ISPI.
    pub pessimistic: f64,
    /// Suite-average Resume-with-prefetch ISPI.
    pub resume_pref: f64,
}

/// Sweeps the miss penalty for Resume, Pessimistic, and Resume+prefetch,
/// locating the crossover the paper's summary describes ("when the miss
/// penalty is high, Pessimistic performs as well as Resume on average").
pub fn penalty_data(opts: &RunOptions) -> Vec<PenaltyRow> {
    let opts = *opts;
    let work: Vec<u64> = PENALTIES.to_vec();
    par_map(work, opts.parallel, |penalty| penalty_row(penalty, opts))
}

/// One penalty point: suite averages for the three configurations. Uses
/// the panicking simulator; the isolated report path captures panics per
/// row.
fn penalty_row(penalty: u64, opts: RunOptions) -> PenaltyRow {
    let avg = |cfg_of: &dyn Fn() -> specfetch_core::SimConfig| {
        mean(Benchmark::all().iter().map(|b| {
            let mut cfg = cfg_of();
            cfg.miss_penalty = penalty;
            simulate_benchmark(b, cfg, opts).ispi()
        }))
    };
    PenaltyRow {
        penalty,
        resume: avg(&|| baseline(FetchPolicy::Resume)),
        pessimistic: avg(&|| baseline(FetchPolicy::Pessimistic)),
        resume_pref: avg(&|| {
            let mut c = baseline(FetchPolicy::Resume);
            c.prefetch = true;
            c
        }),
    }
}

/// Renders the penalty-sweep report.
pub fn run_penalty(opts: &RunOptions) -> ExperimentReport {
    let rows = isolated_map(PENALTIES.to_vec(), opts, |penalty| Ok(penalty_row(penalty, *opts)));
    let mut table = Table::new(["penalty", "Resume", "Pessimistic", "Pess/Res", "Resume+Pref"]);
    for (penalty, row) in PENALTIES.into_iter().zip(&rows) {
        let mut cells = vec![penalty.to_string()];
        match row {
            Ok(r) => cells.extend([
                format!("{:.3}", r.resume),
                format!("{:.3}", r.pessimistic),
                format!("{:.2}", r.pessimistic / r.resume.max(1e-9)),
                format!("{:.3}", r.resume_pref),
            ]),
            Err(e) => cells.extend((0..4).map(|_| e.cell())),
        }
        table.row(cells);
    }
    ExperimentReport {
        id: "ablation-penalty",
        title: "Miss-penalty sweep: where the conservative policy catches up (paper \
                summary / §5.2.1)"
            .into(),
        table,
        notes: vec!["Expected shape: Pessimistic/Resume ratio falls toward (and past) 1.0 as \
             the penalty grows; Resume+Pref's advantage over plain Resume shrinks and \
             inverts at high penalties."
            .into()],
    }
}

// ---------------------------------------------------------------------------
// Pipelined miss requests (the paper's §6 future work)
// ---------------------------------------------------------------------------

/// Bus slot counts swept by [`bus_data`].
pub const BUS_SLOTS: [usize; 3] = [1, 2, 4];

/// Suite-average ISPI at the long penalty, with and without next-line
/// prefetching, per bus configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct BusRow {
    /// Transaction slots on the bus.
    pub slots: usize,
    /// Resume, no prefetch.
    pub plain: f64,
    /// Resume with next-line prefetching.
    pub prefetch: f64,
}

/// Tests the paper's §6 hypothesis: does pipelining miss requests rescue
/// next-line prefetching at the 20-cycle penalty (where Figure 4 shows it
/// hurting)?
pub fn bus_data(opts: &RunOptions) -> Vec<BusRow> {
    let opts = *opts;
    par_map(BUS_SLOTS.to_vec(), opts.parallel, |slots| bus_row(slots, opts))
}

/// One bus configuration: suite averages with and without prefetching.
fn bus_row(slots: usize, opts: RunOptions) -> BusRow {
    let avg = |prefetch: bool| {
        mean(Benchmark::all().iter().map(|b| {
            let mut cfg = baseline(FetchPolicy::Resume);
            cfg.miss_penalty = 20;
            cfg.bus_slots = slots;
            cfg.prefetch = prefetch;
            simulate_benchmark(b, cfg, opts).ispi()
        }))
    };
    BusRow { slots, plain: avg(false), prefetch: avg(true) }
}

/// Renders the pipelined-bus report.
pub fn run_bus(opts: &RunOptions) -> ExperimentReport {
    let rows = isolated_map(BUS_SLOTS.to_vec(), opts, |slots| Ok(bus_row(slots, *opts)));
    let mut table = Table::new(["bus slots", "Resume", "Resume+Pref", "prefetch gain%"]);
    for (slots, row) in BUS_SLOTS.into_iter().zip(&rows) {
        let mut cells = vec![slots.to_string()];
        match row {
            Ok(r) => cells.extend([
                format!("{:.3}", r.plain),
                format!("{:.3}", r.prefetch),
                format!("{:.1}", 100.0 * (r.plain - r.prefetch) / r.plain.max(1e-9)),
            ]),
            Err(e) => cells.extend((0..3).map(|_| e.cell())),
        }
        table.row(cells);
    }
    ExperimentReport {
        id: "ablation-bus",
        title: "Pipelined miss requests at the 20-cycle penalty (paper §6 future work)".into(),
        table,
        notes: vec!["Expected shape: with one slot, prefetching at the long penalty is a \
             wash or a loss (Figure 4); extra slots let prefetches overlap demand \
             fills, restoring the prefetch gain."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RunOptions {
        RunOptions::smoke().with_instrs(60_000)
    }

    #[test]
    fn both_path_prefetching_beats_none_on_average() {
        let rows = prefetch_data(&opts());
        let avg = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(avg(3) < avg(0), "both-path {:.3} !< none {:.3}", avg(3), avg(0));
        assert!(avg(1) < avg(0), "next-line {:.3} !< none {:.3}", avg(1), avg(0));
        // Traffic is near-monotone: covering a line by target prefetch can
        // displace a next-line issue or a demand fill, so allow small
        // reductions but no large ones.
        for r in &rows {
            assert!(
                r.traffic[3] as f64 >= 0.95 * r.traffic[1] as f64,
                "{}: both {} vs next-line {}",
                r.benchmark.name,
                r.traffic[3],
                r.traffic[1]
            );
        }
    }

    /// Any dynamic predictor must beat static not-taken. Note: on these
    /// synthetic workloads bimodal can *beat* gshare — many conditionals
    /// are i.i.d.-biased, so the 9-bit global history carries little
    /// signal while still scattering each branch over many of the 512
    /// entries (McFarling's gshare advantage needs low-entropy, correlated
    /// histories or larger tables). The measured PHT ISPI still lands on
    /// the paper's Table 3 values, which is the quantity the reproduction
    /// calibrates.
    #[test]
    fn dynamic_prediction_beats_static() {
        let rows = bpred_data(&opts());
        let acc = |i: usize| mean(rows.iter().map(|r| r.accuracy[i]));
        assert!(acc(0) > acc(3), "gshare {:.3} !> static {:.3}", acc(0), acc(3));
        assert!(acc(2) > acc(3), "bimodal {:.3} !> static {:.3}", acc(2), acc(3));
        let ispi = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(ispi(0) < ispi(3), "paper config must beat static not-taken");
    }

    #[test]
    fn decoupled_beats_coupled() {
        let rows = bpred_data(&opts());
        let ispi = |i: usize| mean(rows.iter().map(|r| r.ispi[i]));
        assert!(
            ispi(0) < ispi(1),
            "decoupled {:.3} should beat coupled {:.3} (Calder & Grunwald)",
            ispi(0),
            ispi(1)
        );
    }

    /// Associativity usually removes conflict misses, but LRU is
    /// *pathological* on near-cyclic sweeps larger than the cache (each
    /// way evicts exactly the line needed furthest in the future), so a
    /// strictly monotone assertion would be wrong — fpppp, a nearly
    /// cyclic sweep, genuinely misses more at 4-way than 2-way. Assert
    /// the average improves and per-benchmark regressions stay modest.
    #[test]
    fn associativity_reduces_misses_on_average() {
        let rows = assoc_data(&opts());
        let avg = |i: usize| mean(rows.iter().map(|r| r.miss[i]));
        assert!(avg(1) <= avg(0) + 0.05, "2-way {:.2} vs DM {:.2}", avg(1), avg(0));
        for r in &rows {
            assert!(
                r.miss[2] <= r.miss[0] * 1.5 + 0.3,
                "{}: 4-way {:.2} wildly above DM {:.2}",
                r.benchmark.name,
                r.miss[2],
                r.miss[0]
            );
        }
    }

    #[test]
    fn pipelined_bus_rescues_long_latency_prefetching() {
        let rows = bus_data(&opts());
        let gain = |r: &BusRow| (r.plain - r.prefetch) / r.plain;
        assert!(
            gain(&rows[2]) > gain(&rows[0]),
            "4-slot prefetch gain {:.3} should exceed 1-slot gain {:.3}",
            gain(&rows[2]),
            gain(&rows[0])
        );
    }

    #[test]
    fn pessimistic_catches_up_as_penalty_grows() {
        let rows = penalty_data(&opts());
        let ratio = |r: &PenaltyRow| r.pessimistic / r.resume;
        let first = ratio(&rows[0]);
        let last = ratio(&rows[rows.len() - 1]);
        assert!(last < first, "Pess/Res ratio should fall with penalty: {first:.3} -> {last:.3}");
    }

    #[test]
    fn reports_render() {
        let o = RunOptions::smoke();
        for rep in [run_prefetch(&o), run_bpred(&o), run_assoc(&o)] {
            assert_eq!(rep.table.len(), 14);
            assert!(!rep.render(crate::Format::Plain).is_empty());
        }
        assert_eq!(run_penalty(&o).table.len(), PENALTIES.len());
    }
}
