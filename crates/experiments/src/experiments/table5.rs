//! Paper Table 5: effect of speculation depth (1, 2, 4 unresolved
//! branches) on every policy's ISPI.

use specfetch_core::{FetchPolicy, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, measured, vs, vs_cell};
use crate::paper::TABLE5;
use crate::runner::{mean_ok, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Scenario};
use crate::{ExperimentReport, RunOptions, Table};

/// The depths the paper sweeps.
pub const DEPTHS: [usize; 3] = [1, 2, 4];

/// ISPI of all five policies for one benchmark at one depth.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Speculation depth (1, 2, or 4).
    pub depth: usize,
    /// ISPI in policy order (Oracle, Optimistic, Resume, Pessimistic,
    /// Decode); each slot is the measurement or its point's failure.
    pub ispi: [Measured<f64>; 5],
}

/// The declarative grid: per benchmark, `depth × policy` in depth-major
/// order (15 points), matching the paper's row layout.
pub(crate) fn scenario() -> Scenario {
    let mut points = Vec::new();
    for depth in DEPTHS {
        for policy in FetchPolicy::ALL {
            let mut cfg = baseline(policy);
            cfg.max_unresolved = depth;
            points.push(ConfigPoint::new(format!("d{depth}/{}", policy.short_name()), cfg));
        }
    }
    Scenario::suite("table5", "Effect of speculation depth on ISPI (paper Table 5)", points)
}

/// Gathers the full sweep: 13 benchmarks × 3 depths × 5 policies.
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let grid = run_scenario(scenario(), opts);
    let mut rows = Vec::new();
    for (bi, &benchmark) in grid.scenario.benches.iter().enumerate() {
        for (di, runs) in grid.bench_cells(bi).chunks_exact(5).enumerate() {
            let ispi = std::array::from_fn(|i| measured(&runs[i], SimResult::ispi));
            rows.push(Row { benchmark, depth: DEPTHS[di], ispi });
        }
    }
    rows
}

fn depth_idx(depth: usize) -> usize {
    match depth {
        1 => 0,
        2 => 1,
        4 => 2,
        d => unreachable!("unexpected depth {d}"),
    }
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table = Table::new([
        "bench",
        "depth",
        "Oracle (paper)",
        "Opt (paper)",
        "Res (paper)",
        "Pess (paper)",
        "Dec (paper)",
    ]);
    // Rows are benchmark-major with one row per depth, in suite order.
    for (i, r) in rows.iter().enumerate() {
        let paper = TABLE5[i / DEPTHS.len()][depth_idx(r.depth)];
        let mut cells = vec![r.benchmark.name.to_owned(), r.depth.to_string()];
        for (m, &published) in r.ispi.iter().zip(paper.iter()) {
            cells.push(vs_cell(m, published));
        }
        table.row(cells);
    }
    // Average row per depth.
    for depth in DEPTHS {
        let paper_avg: [f64; 3] = [1.80, 1.52, 1.41];
        let paper_rows: [[f64; 5]; 3] = [
            [1.80, 1.89, 1.81, 2.14, 2.12],
            [1.52, 1.63, 1.52, 1.86, 1.84],
            [1.41, 1.55, 1.41, 1.75, 1.75],
        ];
        let _ = paper_avg;
        let mut cells = vec!["Average".to_owned(), depth.to_string()];
        for (p, &published) in paper_rows[depth_idx(depth)].iter().enumerate() {
            let m = mean_ok(rows.iter().filter(|r| r.depth == depth).map(|r| &r.ispi[p]));
            cells.push(vs(m, published));
        }
        table.row(cells);
    }
    ExperimentReport {
        id: "table5",
        title: "Effect of speculation depth on ISPI (paper Table 5)".into(),
        table,
        notes: vec!["Expected shape: ISPI falls with depth for every policy (branch_full \
             stalls vanish); Resume ~ Oracle; Optimistic in between; Pessimistic ~ \
             Decode worst at this small penalty."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_speculation_helps_every_policy_on_average() {
        let rows = data(&RunOptions::smoke().with_instrs(60_000));
        for p in 0..5 {
            let at = |d: usize| mean_ok(rows.iter().filter(|r| r.depth == d).map(|r| &r.ispi[p]));
            assert!(
                at(4) < at(1),
                "policy {p}: depth-4 average {:.3} !< depth-1 average {:.3}",
                at(4),
                at(1)
            );
        }
    }

    #[test]
    fn sweep_covers_39_rows() {
        let rows = data(&RunOptions::smoke());
        assert_eq!(rows.len(), 39);
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 42); // 39 + 3 averages
    }
}
