//! Paper Table 7: memory-traffic cost of next-line prefetching.

use specfetch_core::FetchPolicy;
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, vs, vs_cell};
use crate::paper::TABLE7;
use crate::runner::{mean_ok, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Metric, Scenario};
use crate::{ExperimentReport, RunOptions, Table};

/// Traffic ratios for one benchmark: policy-with-prefetch over plain
/// Oracle.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Ratios for Oracle, Resume, Pessimistic (each with prefetching)
    /// relative to Oracle without prefetching. A ratio fails if either
    /// the prefetch point or the shared base point failed.
    pub ratios: [Measured<f64>; 3],
}

/// The declarative grid: plain Oracle (the traffic base) plus the three
/// prefetching policies.
pub(crate) fn scenario() -> Scenario {
    let mut points = vec![ConfigPoint::new("Oracle", baseline(FetchPolicy::Oracle))];
    for policy in [FetchPolicy::Oracle, FetchPolicy::Resume, FetchPolicy::Pessimistic] {
        let mut cfg = baseline(policy);
        cfg.prefetch = true;
        points.push(ConfigPoint::new(format!("{}+Pref", policy.short_name()), cfg));
    }
    Scenario::suite(
        "table7",
        "Memory traffic of prefetching policies vs plain Oracle (paper Table 7)",
        points,
    )
    .with_metric(Metric::Traffic)
}

/// Gathers the traffic ratios.
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let grid = run_scenario(scenario(), opts);
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &benchmark)| {
            let runs = grid.bench_cells(bi);
            // The base point's failure poisons all three ratios; a
            // prefetch point's failure poisons only its own.
            let ratios = std::array::from_fn(|i| match (&runs[0], &runs[i + 1]) {
                (Ok(base), Ok(r)) => {
                    Ok(r.total_traffic() as f64 / base.total_traffic().max(1) as f64)
                }
                (Err(e), _) | (_, Err(e)) => Err(e.clone()),
            });
            Row { benchmark, ratios }
        })
        .collect()
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table =
        Table::new(["bench", "Oracle+Pref (paper)", "Resume+Pref (paper)", "Pess+Pref (paper)"]);
    for (i, r) in rows.iter().enumerate() {
        table.row(vec![
            r.benchmark.name.to_owned(),
            vs_cell(&r.ratios[0], TABLE7[i][0]),
            vs_cell(&r.ratios[1], TABLE7[i][1]),
            vs_cell(&r.ratios[2], TABLE7[i][2]),
        ]);
    }
    let paper_avg = [1.35, 1.56, 1.38];
    table.row(vec![
        "Average".into(),
        vs(mean_ok(rows.iter().map(|r| &r.ratios[0])), paper_avg[0]),
        vs(mean_ok(rows.iter().map(|r| &r.ratios[1])), paper_avg[1]),
        vs(mean_ok(rows.iter().map(|r| &r.ratios[2])), paper_avg[2]),
    ]);
    ExperimentReport {
        id: "table7",
        title: "Memory traffic of prefetching policies vs plain Oracle (paper Table 7)".into(),
        table,
        notes: vec!["Expected shape: prefetching costs 20-80% extra traffic everywhere; \
             Resume+Pref is the most expensive (wrong-path demand fills plus \
             prefetches); Oracle+Pref and Pessimistic+Pref are close."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_always_costs_traffic() {
        for r in data(&RunOptions::smoke().with_instrs(60_000)) {
            for (i, ratio) in r.ratios.iter().enumerate() {
                let ratio = ratio.as_ref().unwrap();
                assert!(
                    *ratio >= 0.99,
                    "{} ratio[{i}] = {ratio:.2} should not be below 1",
                    r.benchmark.name
                );
            }
        }
    }

    #[test]
    fn resume_pref_is_most_expensive_on_average() {
        let rows = data(&RunOptions::smoke().with_instrs(60_000));
        let avg = |i: usize| mean_ok(rows.iter().map(|r| &r.ratios[i]));
        assert!(avg(1) >= avg(0), "Resume {:.2} !>= Oracle {:.2}", avg(1), avg(0));
        assert!(avg(1) >= avg(2), "Resume {:.2} !>= Pess {:.2}", avg(1), avg(2));
    }

    #[test]
    fn report_renders_14_rows() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
    }
}
