//! One module per regenerated paper artifact, plus the ablation studies.

pub mod ablations;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use specfetch_core::{FetchPolicy, SimConfig, SimResult};

use crate::runner::{GridCell, Measured};

/// Baseline config of §5.1 for a given policy: 8K direct-mapped cache,
/// 5-cycle penalty, depth 4, no prefetch.
pub(crate) fn baseline(policy: FetchPolicy) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = policy;
    cfg
}

/// Formats "measured (paper)" cells.
pub(crate) fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:.2} ({paper:.2})")
}

/// Formats "measured (paper)" cells from an isolated measurement —
/// `FAILED(<reason>)` when the backing grid point did not complete.
pub(crate) fn vs_cell(measured: &Measured<f64>, paper: f64) -> String {
    match measured {
        Ok(v) => vs(*v, paper),
        Err(f) => f.cell(),
    }
}

/// Projects a quantity out of one isolated grid cell, propagating the
/// cell's failure (so every column derived from a failed point renders
/// `FAILED(...)`).
pub(crate) fn measured<T>(cell: &GridCell, f: impl FnOnce(&SimResult) -> T) -> Measured<T> {
    match cell {
        Ok(r) => Ok(f(r)),
        Err(e) => Err(e.clone()),
    }
}
