//! One module per regenerated paper artifact, plus the ablation studies.

pub mod ablations;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use specfetch_core::{FetchPolicy, SimConfig};

/// Baseline config of §5.1 for a given policy: 8K direct-mapped cache,
/// 5-cycle penalty, depth 4, no prefetch.
pub(crate) fn baseline(policy: FetchPolicy) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.policy = policy;
    cfg
}

/// Formats "measured (paper)" cells.
pub(crate) fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:.2} ({paper:.2})")
}
