//! Paper Figure 4: next-line prefetching with the long miss penalty.

use crate::experiments::baseline;
use crate::experiments::figure2::LONG_PENALTY;
use crate::experiments::figure3::{bars_of, prefetch_points, prefetch_report, Bar};
use crate::paper::figure_benches;
use crate::scenario::{run_scenario, Scenario};
use crate::{ExperimentReport, RunOptions};

/// The declarative grid: figure benchmarks × `(policy, prefetch?)` at
/// the 20-cycle penalty.
pub(crate) fn scenario() -> Scenario {
    Scenario::suite(
        "figure4",
        "Next-line prefetching, long latency (paper Figure 4)",
        prefetch_points(|policy, prefetch| {
            let mut cfg = baseline(policy);
            cfg.miss_penalty = LONG_PENALTY;
            cfg.prefetch = prefetch;
            cfg
        }),
    )
    .with_benches(figure_benches())
}

/// Gathers Figure 4's bars (20-cycle penalty).
pub fn data(opts: &RunOptions) -> Vec<Bar> {
    bars_of(&run_scenario(scenario(), opts))
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let bars = data(opts);
    prefetch_report(
        "figure4",
        "Next-line prefetching, long latency (paper Figure 4)".into(),
        vec!["Expected shape: with a 20-cycle fill, prefetches monopolise the bus and \
             can hurt — even Oracle can lose performance, and aggressive fetch \
             activity stops paying off."
            .into()],
        &bars,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::mean;
    use specfetch_core::FetchPolicy;

    #[test]
    fn prefetch_gains_shrink_or_invert_at_long_latency() {
        let opts = RunOptions::smoke().with_instrs(100_000);
        let short = super::super::figure3::data(&opts);
        let long = data(&opts);
        let gain = |bars: &[Bar], policy: FetchPolicy| {
            let avg = |pref: bool| {
                mean(
                    bars.iter()
                        .filter(|b| b.policy == policy && b.prefetch == pref)
                        .map(|b| b.result.as_ref().unwrap().ispi()),
                )
            };
            (avg(false) - avg(true)) / avg(false).max(1e-9)
        };
        // Relative prefetch gain at 20 cycles is smaller than at 5 cycles
        // for the conservative policy (the paper's "not recommended").
        let g_short = gain(&short, FetchPolicy::Pessimistic);
        let g_long = gain(&long, FetchPolicy::Pessimistic);
        assert!(
            g_long < g_short,
            "long-latency prefetch gain {g_long:.3} should be below short-latency {g_short:.3}"
        );
    }

    #[test]
    fn bus_component_appears_under_prefetching() {
        let bars = data(&RunOptions::smoke().with_instrs(100_000));
        let bus: u64 =
            bars.iter().filter(|b| b.prefetch).map(|b| b.result.as_ref().unwrap().lost.bus).sum();
        assert!(bus > 0, "prefetching at long latency must cause bus waits");
    }
}
