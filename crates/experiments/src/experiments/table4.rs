//! Paper Table 4: miss classification under Optimistic vs Oracle.

use specfetch_core::{FetchPolicy, MissClass};
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, vs};
use crate::paper::{Table4Row, TABLE4};
use crate::runner::{mean, CellFailure, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Scenario};
use crate::{ExperimentReport, RunOptions, Table};

/// Measured classification for one benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// The shadow-cache classification, or the failure of the run that
    /// was meant to produce it.
    pub class: Measured<MissClass>,
    /// The paper's published row.
    pub paper: Table4Row,
}

/// The declarative grid: one classified Optimistic point over the suite.
pub(crate) fn scenario() -> Scenario {
    let mut cfg = baseline(FetchPolicy::Optimistic);
    cfg.classify = true;
    Scenario::suite(
        "table4",
        "Miss classification: Optimistic vs Oracle (paper Table 4)",
        vec![ConfigPoint::new("Opt+classify", cfg)],
    )
}

/// Gathers measured rows: one classified Optimistic run per benchmark.
/// A run that comes back without its classification (despite
/// `cfg.classify`) is reported as that cell's failure instead of
/// panicking past the grid's isolation layer.
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let grid = run_scenario(scenario(), opts);
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(i, &benchmark)| Row {
            benchmark,
            class: match grid.cell(i, 0) {
                Ok(r) => {
                    r.classification.ok_or_else(|| CellFailure::permanent("classification missing"))
                }
                Err(e) => Err(e.clone()),
            },
            paper: TABLE4[i],
        })
        .collect()
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table = Table::new([
        "bench",
        "BM (paper)",
        "SPo (paper)",
        "SPr (paper)",
        "WP (paper)",
        "TR (paper)",
    ]);
    for r in &rows {
        let col = |f: fn(&MissClass) -> f64, paper: f64| match &r.class {
            Ok(c) => vs(f(c), paper),
            Err(e) => e.cell(),
        };
        table.row(vec![
            r.benchmark.name.to_owned(),
            col(MissClass::both_miss_pct, r.paper.bm),
            col(MissClass::spec_pollute_pct, r.paper.spo),
            col(MissClass::spec_prefetch_pct, r.paper.spr),
            col(MissClass::wrong_path_pct, r.paper.wp),
            col(MissClass::traffic_ratio, r.paper.tr),
        ]);
    }
    let ok =
        |f: fn(&MissClass) -> f64| mean(rows.iter().filter_map(|r| r.class.as_ref().ok()).map(f));
    table.row(vec![
        "Average".into(),
        vs(ok(MissClass::both_miss_pct), 2.87),
        vs(ok(MissClass::spec_pollute_pct), 0.32),
        vs(ok(MissClass::spec_prefetch_pct), 0.83),
        vs(ok(MissClass::wrong_path_pct), 1.87),
        vs(ok(MissClass::traffic_ratio), 1.36),
    ]);
    ExperimentReport {
        id: "table4",
        title: "Miss classification: Optimistic vs Oracle (paper Table 4)".into(),
        table,
        notes: vec!["Expected shape: Spec-Prefetch exceeds Spec-Pollute (wrong-path fills help \
             more than they pollute), and Wrong-Path misses dominate the traffic-ratio \
             increase."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_beats_pollution_on_average() {
        let rows = data(&RunOptions::smoke().with_instrs(80_000));
        let spr = mean(rows.iter().map(|r| r.class.as_ref().unwrap().spec_prefetch_pct()));
        let spo = mean(rows.iter().map(|r| r.class.as_ref().unwrap().spec_pollute_pct()));
        assert!(spr > spo, "SPr {spr:.2} should exceed SPo {spo:.2}");
    }

    #[test]
    fn traffic_ratio_is_at_least_one() {
        for r in data(&RunOptions::smoke()) {
            let class = r.class.as_ref().unwrap();
            assert!(
                class.traffic_ratio() >= 1.0 - 1e-9,
                "{}: TR {:.2}",
                r.benchmark.name,
                class.traffic_ratio()
            );
        }
    }

    #[test]
    fn report_renders() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
        assert_eq!(rep.id, "table4");
    }
}
