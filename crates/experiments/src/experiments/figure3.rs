//! Paper Figure 3: next-line prefetching at the baseline penalty.

use specfetch_core::{FetchPolicy, SimConfig};
use specfetch_synth::suite::Benchmark;

use crate::experiments::baseline;
use crate::paper::figure_benches;
use crate::runner::GridCell;
use crate::scenario::{run_scenario, ConfigPoint, Scenario, ScenarioGrid};
use crate::{ExperimentReport, RunOptions, Table};

/// The three policies the paper's prefetch figures compare.
pub const PREFETCH_POLICIES: [FetchPolicy; 3] =
    [FetchPolicy::Oracle, FetchPolicy::Resume, FetchPolicy::Pessimistic];

/// One bar: `(benchmark, policy, prefetch?)`.
#[derive(Clone, PartialEq, Debug)]
pub struct Bar {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// The policy.
    pub policy: FetchPolicy,
    /// Whether next-line prefetching was on.
    pub prefetch: bool,
    /// The run result, or the failure of this bar's grid point.
    pub result: GridCell,
}

/// One [`ConfigPoint`] per `(policy, prefetch?)` combination (shared
/// with Figure 4, which only changes the miss penalty).
pub(crate) fn prefetch_points(
    cfg_for: impl Fn(FetchPolicy, bool) -> SimConfig,
) -> Vec<ConfigPoint> {
    let mut points = Vec::new();
    for policy in PREFETCH_POLICIES {
        for prefetch in [false, true] {
            let label = if prefetch {
                format!("{}+Pref", policy.short_name())
            } else {
                policy.short_name().to_owned()
            };
            points.push(ConfigPoint::new(label, cfg_for(policy, prefetch)));
        }
    }
    points
}

/// The declarative grid: figure benchmarks × `(policy, prefetch?)`.
pub(crate) fn scenario() -> Scenario {
    Scenario::suite(
        "figure3",
        "Next-line prefetching, baseline penalty (paper Figure 3)",
        prefetch_points(|policy, prefetch| {
            let mut cfg = baseline(policy);
            cfg.prefetch = prefetch;
            cfg
        }),
    )
    .with_benches(figure_benches())
}

/// Flattens an evaluated prefetch grid back into per-bar rows.
pub(crate) fn bars_of(grid: &ScenarioGrid) -> Vec<Bar> {
    let mut bars = Vec::new();
    for (bi, &benchmark) in grid.scenario.benches.iter().enumerate() {
        let mut pi = 0;
        for policy in PREFETCH_POLICIES {
            for prefetch in [false, true] {
                bars.push(Bar { benchmark, policy, prefetch, result: grid.cell(bi, pi).clone() });
                pi += 1;
            }
        }
    }
    bars
}

/// Renders a breakdown table shared by Figures 3 and 4.
pub(crate) fn prefetch_report(
    id: &'static str,
    title: String,
    notes: Vec<String>,
    bars: &[Bar],
) -> ExperimentReport {
    let mut table = Table::new([
        "bench",
        "policy",
        "branch_full",
        "branch",
        "force_resolve",
        "rt_icache",
        "wrong_icache",
        "bus",
        "total ISPI",
    ]);
    for bar in bars {
        let label = if bar.prefetch {
            format!("{}+Pref", bar.policy.short_name())
        } else {
            bar.policy.short_name().to_owned()
        };
        let head = [bar.benchmark.name.to_owned(), label];
        let row = match &bar.result {
            Ok(r) => {
                let c = |slots: u64| format!("{:.3}", r.ispi_component(slots));
                [
                    c(r.lost.branch_full),
                    c(r.lost.branch),
                    c(r.lost.force_resolve),
                    c(r.lost.rt_icache),
                    c(r.lost.wrong_icache),
                    c(r.lost.bus),
                    format!("{:.3}", r.ispi()),
                ]
            }
            Err(e) => std::array::from_fn(|_| e.cell()),
        };
        table.row(head.into_iter().chain(row));
    }
    ExperimentReport { id, title, table, notes }
}

/// Gathers Figure 3's bars (baseline penalty).
pub fn data(opts: &RunOptions) -> Vec<Bar> {
    bars_of(&run_scenario(scenario(), opts))
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let bars = data(opts);
    prefetch_report(
        "figure3",
        "Next-line prefetching, baseline penalty (paper Figure 3)".into(),
        vec!["Expected shape: prefetching improves every policy and narrows the \
             Resume-vs-Pessimistic gap; Resume without prefetching is comparable to \
             Pessimistic with it."
            .into()],
        &bars,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::mean;

    fn opts() -> RunOptions {
        RunOptions::smoke().with_instrs(100_000)
    }

    #[test]
    fn prefetch_reduces_ispi_at_small_penalty() {
        let bars = data(&opts());
        for policy in PREFETCH_POLICIES {
            let avg = |pref: bool| {
                mean(
                    bars.iter()
                        .filter(|b| b.policy == policy && b.prefetch == pref)
                        .map(|b| b.result.as_ref().unwrap().ispi()),
                )
            };
            assert!(
                avg(true) < avg(false),
                "{policy}: prefetch {:.3} !< plain {:.3}",
                avg(true),
                avg(false)
            );
        }
    }

    #[test]
    fn prefetch_narrows_resume_vs_pessimistic() {
        let bars = data(&opts());
        let avg = |policy: FetchPolicy, pref: bool| {
            mean(
                bars.iter()
                    .filter(|b| b.policy == policy && b.prefetch == pref)
                    .map(|b| b.result.as_ref().unwrap().ispi()),
            )
        };
        let gap_plain = avg(FetchPolicy::Pessimistic, false) - avg(FetchPolicy::Resume, false);
        let gap_pref = avg(FetchPolicy::Pessimistic, true) - avg(FetchPolicy::Resume, true);
        assert!(
            gap_pref < gap_plain,
            "prefetch gap {gap_pref:.3} should be below plain gap {gap_plain:.3}"
        );
    }

    #[test]
    fn report_has_30_bars() {
        let rep = run(&opts());
        assert_eq!(rep.table.len(), 30);
    }
}
