//! Paper Figure 2: ISPI breakdown with a long (20-cycle) miss penalty.

use crate::experiments::baseline;
use crate::experiments::figure1::{bars_of, breakdown_report, policy_points, Bar};
use crate::paper::figure_benches;
use crate::scenario::{run_scenario, Scenario};
use crate::{ExperimentReport, RunOptions};

/// The long-latency penalty the paper uses.
pub const LONG_PENALTY: u64 = 20;

/// The declarative grid: figure benchmarks × the five policies at the
/// 20-cycle penalty.
pub(crate) fn scenario() -> Scenario {
    Scenario::suite(
        "figure2",
        "ISPI breakdown, long latency (8K, 20-cycle penalty, depth 4) — paper Figure 2",
        policy_points(|policy| {
            let mut cfg = baseline(policy);
            cfg.miss_penalty = LONG_PENALTY;
            cfg
        }),
    )
    .with_benches(figure_benches())
}

/// Gathers the figure's data at the 20-cycle penalty.
pub fn data(opts: &RunOptions) -> Vec<Bar> {
    bars_of(&run_scenario(scenario(), opts))
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let bars = data(opts);
    breakdown_report(
        "figure2",
        "ISPI breakdown, long latency (8K, 20-cycle penalty, depth 4) — paper Figure 2".into(),
        vec!["Expected shape: with the large penalty, servicing wrong-path misses gets \
             expensive — Pessimistic beats Optimistic for the C/C++ codes and roughly \
             ties Resume on average."
            .into()],
        &bars,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::mean;
    use specfetch_core::FetchPolicy;

    #[test]
    fn long_latency_flips_optimistic_vs_pessimistic_on_average() {
        let bars = data(&RunOptions::smoke().with_instrs(100_000));
        // Average over the branchy (C/C++) figure benchmarks, as the paper
        // qualifies the flip for those codes.
        let avg = |policy: FetchPolicy| {
            mean(
                bars.iter()
                    .filter(|b| b.policy == policy && b.benchmark.name != "doduc")
                    .map(|b| b.result.as_ref().unwrap().ispi()),
            )
        };
        let opt = avg(FetchPolicy::Optimistic);
        let pess = avg(FetchPolicy::Pessimistic);
        assert!(
            pess < opt,
            "at 20-cycle penalty Pessimistic ({pess:.3}) should beat Optimistic ({opt:.3})"
        );
    }

    #[test]
    fn wrong_icache_grows_with_penalty() {
        let small = super::super::figure1::data(&RunOptions::smoke().with_instrs(60_000));
        let large = data(&RunOptions::smoke().with_instrs(60_000));
        let sum = |bars: &[Bar]| -> u64 {
            bars.iter()
                .filter(|b| b.policy == FetchPolicy::Optimistic)
                .map(|b| b.result.as_ref().unwrap().lost.wrong_icache)
                .sum()
        };
        assert!(sum(&large) > sum(&small));
    }
}
