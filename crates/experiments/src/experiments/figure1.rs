//! Paper Figure 1: ISPI penalty breakdown per policy, baseline machine.

use specfetch_core::{FetchPolicy, SimConfig};
use specfetch_synth::suite::Benchmark;

use crate::experiments::baseline;
use crate::paper::figure_benches;
use crate::runner::GridCell;
use crate::scenario::{run_scenario, ConfigPoint, Scenario, ScenarioGrid};
use crate::{ExperimentReport, RunOptions, Table};

/// One bar of the figure: a `(benchmark, policy)` breakdown.
#[derive(Clone, PartialEq, Debug)]
pub struct Bar {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// The policy.
    pub policy: FetchPolicy,
    /// The full run result (components are read from `result.lost`), or
    /// the failure of this bar's grid point.
    pub result: GridCell,
}

/// One [`ConfigPoint`] per paper policy, labelled by short name (shared
/// with Figure 2, which only changes the miss penalty).
pub(crate) fn policy_points(cfg_for: impl Fn(FetchPolicy) -> SimConfig) -> Vec<ConfigPoint> {
    FetchPolicy::ALL
        .into_iter()
        .map(|policy| ConfigPoint::new(policy.short_name(), cfg_for(policy)))
        .collect()
}

/// The declarative grid: figure benchmarks × the five paper policies.
pub(crate) fn scenario() -> Scenario {
    Scenario::suite(
        "figure1",
        "ISPI breakdown, baseline (8K, 5-cycle penalty, depth 4) — paper Figure 1",
        policy_points(baseline),
    )
    .with_benches(figure_benches())
}

/// Flattens an evaluated policy grid back into per-`(bench, policy)`
/// bars, in the figure's row order.
pub(crate) fn bars_of(grid: &ScenarioGrid) -> Vec<Bar> {
    let mut bars = Vec::new();
    for (bi, &benchmark) in grid.scenario.benches.iter().enumerate() {
        for (pi, policy) in FetchPolicy::ALL.into_iter().enumerate() {
            bars.push(Bar { benchmark, policy, result: grid.cell(bi, pi).clone() });
        }
    }
    bars
}

/// Renders a breakdown table shared by Figures 1 and 2.
pub(crate) fn breakdown_report(
    id: &'static str,
    title: String,
    notes: Vec<String>,
    bars: &[Bar],
) -> ExperimentReport {
    let mut table = Table::new([
        "bench",
        "policy",
        "branch_full",
        "branch",
        "force_resolve",
        "rt_icache",
        "wrong_icache",
        "bus",
        "total ISPI",
    ]);
    for bar in bars {
        let head = [bar.benchmark.name.to_owned(), bar.policy.short_name().to_owned()];
        let row = match &bar.result {
            Ok(r) => {
                let c = |slots: u64| format!("{:.3}", r.ispi_component(slots));
                [
                    c(r.lost.branch_full),
                    c(r.lost.branch),
                    c(r.lost.force_resolve),
                    c(r.lost.rt_icache),
                    c(r.lost.wrong_icache),
                    c(r.lost.bus),
                    format!("{:.3}", r.ispi()),
                ]
            }
            Err(e) => std::array::from_fn(|_| e.cell()),
        };
        table.row(head.into_iter().chain(row));
    }
    ExperimentReport { id, title, table, notes }
}

/// Gathers the figure's data at the baseline configuration.
pub fn data(opts: &RunOptions) -> Vec<Bar> {
    bars_of(&run_scenario(scenario(), opts))
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let bars = data(opts);
    breakdown_report(
        "figure1",
        "ISPI breakdown, baseline (8K, 5-cycle penalty, depth 4) — paper Figure 1".into(),
        vec!["Expected shape: Optimistic < Pessimistic; Resume ~ Oracle (best); Decode ~ \
             Pessimistic; bus nonzero only for Resume; force_resolve only for \
             Pessimistic/Decode."
            .into()],
        &bars,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::FIGURE_BENCHMARKS;

    fn opts() -> RunOptions {
        RunOptions::smoke().with_instrs(80_000)
    }

    #[test]
    fn components_respect_policy_structure() {
        for bar in data(&opts()) {
            let l = &bar.result.as_ref().unwrap().lost;
            match bar.policy {
                FetchPolicy::Oracle => {
                    assert_eq!(l.force_resolve, 0);
                    assert_eq!(l.wrong_icache, 0);
                    assert_eq!(l.bus, 0);
                }
                FetchPolicy::Optimistic => {
                    assert_eq!(l.force_resolve, 0);
                    assert_eq!(l.bus, 0);
                }
                FetchPolicy::Resume => {
                    assert_eq!(l.force_resolve, 0);
                    assert_eq!(l.wrong_icache, 0, "{}", bar.benchmark.name);
                }
                FetchPolicy::Pessimistic => {
                    assert_eq!(l.wrong_icache, 0);
                    assert_eq!(l.bus, 0);
                }
                FetchPolicy::Decode => {
                    assert_eq!(l.bus, 0);
                }
                // Dynamic mixes the Resume and Pessimistic mechanisms,
                // so any component may appear (and it is not a figure
                // policy anyway).
                FetchPolicy::Dynamic => {}
            }
        }
    }

    #[test]
    fn resume_beats_pessimistic_at_small_penalty() {
        let bars = data(&opts());
        for name in FIGURE_BENCHMARKS {
            let ispi = |p: FetchPolicy| {
                bars.iter()
                    .find(|b| b.benchmark.name == name && b.policy == p)
                    .map(|b| b.result.as_ref().unwrap().ispi())
                    .expect("bar exists")
            };
            assert!(
                ispi(FetchPolicy::Resume) < ispi(FetchPolicy::Pessimistic),
                "{name}: Resume {:.3} !< Pessimistic {:.3}",
                ispi(FetchPolicy::Resume),
                ispi(FetchPolicy::Pessimistic)
            );
        }
    }

    #[test]
    fn report_has_25_bars() {
        let rep = run(&opts());
        assert_eq!(rep.table.len(), 25);
    }
}
