//! Paper Table 2: benchmark inventory and dynamic branch density.

use specfetch_core::SpecfetchError;
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PathSource, TraceStats};

use crate::runner::{isolated_map, mean};
use crate::{par_map, ExperimentReport, RunOptions, Table};

/// Measured workload characteristics for one benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Dynamic path statistics over the simulated window.
    pub stats: TraceStats,
    /// Static code footprint, kilobytes.
    pub static_kb: u64,
}

/// Characterises one benchmark, reporting workload/trace failures as
/// typed errors instead of panicking.
fn try_row(b: &'static Benchmark, opts: RunOptions) -> Result<Row, SpecfetchError> {
    let workload = |b: &Benchmark| {
        b.workload().map_err(|e| SpecfetchError::Workload {
            bench: b.name.to_owned(),
            detail: e.to_string(),
        })
    };
    let stats = if opts.share_traces {
        let mut src = crate::trace_cache::try_recorded_source(b, opts.instrs_per_benchmark)?;
        TraceStats::from_source(&mut src)
    } else {
        let w = workload(b)?;
        let mut src = w.executor(b.path_seed()).take_instrs(opts.instrs_per_benchmark);
        TraceStats::from_source(&mut src)
    };
    let static_kb = workload(b)?.program().footprint_bytes() / 1024;
    Ok(Row { benchmark: b, stats, static_kb })
}

/// Gathers the measured rows (no timing simulation needed — Table 2 is
/// pure path characterisation).
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| {
        try_row(b, opts).unwrap_or_else(|e| panic!("characterising {}: {e}", b.name))
    })
}

/// Renders the report. Rows run isolated: a benchmark whose workload
/// fails renders `FAILED(...)` in its measured columns while the static
/// columns (language, paper density) and every other row still appear.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let rows = isolated_map(benches.clone(), opts, |b| try_row(b, *opts));
    let mut table =
        Table::new(["bench", "lang", "instrs", "%br", "%br paper", "taken%", "static KB"]);
    for (b, row) in benches.iter().zip(&rows) {
        let paper = format!("{:.1}", b.paper.branch_pct);
        match row {
            Ok(r) => table.row(vec![
                b.name.to_owned(),
                b.lang.to_string(),
                r.stats.instrs.to_string(),
                format!("{:.1}", r.stats.branch_pct()),
                paper,
                format!("{:.0}", 100.0 * r.stats.taken_ratio()),
                r.static_kb.to_string(),
            ]),
            Err(e) => table.row(vec![
                b.name.to_owned(),
                b.lang.to_string(),
                e.cell(),
                e.cell(),
                paper,
                e.cell(),
                e.cell(),
            ]),
        }
    }
    table.row(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        format!(
            "{:.1}",
            mean(rows.iter().filter_map(|r| r.as_ref().ok()).map(|r| r.stats.branch_pct()))
        ),
        format!("{:.1}", mean(benches.iter().map(|b| b.paper.branch_pct))),
        "-".into(),
        "-".into(),
    ]);
    ExperimentReport {
        id: "table2",
        title: "Benchmark inventory (dynamic branch density vs paper Table 2)".into(),
        table,
        notes: vec!["Instruction counts are the simulated window, not the paper's full runs \
             (6M-4.8B); branch density is the calibrated quantity."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_and_plausible_density() {
        let rows = data(&RunOptions::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert_eq!(r.stats.instrs, RunOptions::smoke().instrs_per_benchmark);
            assert!(r.static_kb > 0, "{}: zero footprint", r.benchmark.name);
            let measured = r.stats.branch_pct();
            let paper = r.benchmark.paper.branch_pct;
            assert!(
                (measured - paper).abs() < paper.max(3.0),
                "{}: measured {measured:.1}% vs paper {paper:.1}%",
                r.benchmark.name
            );
        }
    }

    #[test]
    fn report_has_average_row() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
        assert_eq!(rep.table.cell(13, 0), Some("Average"));
    }
}
