//! Paper Table 2: benchmark inventory and dynamic branch density.

use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PathSource, TraceStats};

use crate::runner::mean;
use crate::{par_map, ExperimentReport, RunOptions, Table};

/// Measured workload characteristics for one benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// Dynamic path statistics over the simulated window.
    pub stats: TraceStats,
}

/// Gathers the measured rows (no timing simulation needed — Table 2 is
/// pure path characterisation).
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let opts = *opts;
    par_map(benches, opts.parallel, |b| {
        let stats = if opts.share_traces {
            let mut src = crate::trace_cache::recorded_source(b, opts.instrs_per_benchmark);
            TraceStats::from_source(&mut src)
        } else {
            let w = b.workload().expect("calibrated specs generate");
            let mut src = w.executor(b.path_seed()).take_instrs(opts.instrs_per_benchmark);
            TraceStats::from_source(&mut src)
        };
        Row { benchmark: b, stats }
    })
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table =
        Table::new(["bench", "lang", "instrs", "%br", "%br paper", "taken%", "static KB"]);
    for r in &rows {
        let w = r.benchmark.workload().expect("generates");
        table.row(vec![
            r.benchmark.name.to_owned(),
            r.benchmark.lang.to_string(),
            r.stats.instrs.to_string(),
            format!("{:.1}", r.stats.branch_pct()),
            format!("{:.1}", r.benchmark.paper.branch_pct),
            format!("{:.0}", 100.0 * r.stats.taken_ratio()),
            (w.program().footprint_bytes() / 1024).to_string(),
        ]);
    }
    table.row(vec![
        "Average".into(),
        "-".into(),
        "-".into(),
        format!("{:.1}", mean(rows.iter().map(|r| r.stats.branch_pct()))),
        format!("{:.1}", mean(rows.iter().map(|r| r.benchmark.paper.branch_pct))),
        "-".into(),
        "-".into(),
    ]);
    ExperimentReport {
        id: "table2",
        title: "Benchmark inventory (dynamic branch density vs paper Table 2)".into(),
        table,
        notes: vec!["Instruction counts are the simulated window, not the paper's full runs \
             (6M-4.8B); branch density is the calibrated quantity."
            .into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_and_plausible_density() {
        let rows = data(&RunOptions::smoke());
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert_eq!(r.stats.instrs, RunOptions::smoke().instrs_per_benchmark);
            let measured = r.stats.branch_pct();
            let paper = r.benchmark.paper.branch_pct;
            assert!(
                (measured - paper).abs() < paper.max(3.0),
                "{}: measured {measured:.1}% vs paper {paper:.1}%",
                r.benchmark.name
            );
        }
    }

    #[test]
    fn report_has_average_row() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
        assert_eq!(rep.table.cell(13, 0), Some("Average"));
    }
}
