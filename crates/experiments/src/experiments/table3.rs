//! Paper Table 3: I-cache miss rates and branch-architecture ISPI.

use specfetch_cache::CacheConfig;
use specfetch_core::{FetchPolicy, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, measured, vs, vs_cell};
use crate::runner::{mean_ok, Measured};
use crate::scenario::{run_scenario, ConfigPoint, Metric, Scenario};
use crate::{ExperimentReport, RunOptions, Table};

/// Measured Table 3 quantities for one benchmark. Each field carries the
/// measurement or the failure of the grid point it derives from.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// 8K direct-mapped miss rate, percent.
    pub miss_8k: Measured<f64>,
    /// 32K direct-mapped miss rate, percent.
    pub miss_32k: Measured<f64>,
    /// PHT-mispredict ISPI at depth 1.
    pub pht_b1: Measured<f64>,
    /// PHT-mispredict ISPI at depth 4.
    pub pht_b4: Measured<f64>,
    /// BTB-misfetch ISPI (depth 4).
    pub btb_misfetch: Measured<f64>,
    /// BTB target-mispredict ISPI (depth 4).
    pub btb_mispredict: Measured<f64>,
}

fn pht_ispi(r: &SimResult) -> f64 {
    r.ispi_component(r.pht_mispredict_slots)
}

/// The declarative grid: per benchmark, Oracle runs at (8K, depth 4),
/// (8K, depth 1), and (32K, depth 4). Point order is load-bearing for
/// `--inject` numbering (CI pins `table3:2`).
pub(crate) fn scenario() -> Scenario {
    let mut cfg_d1 = baseline(FetchPolicy::Oracle);
    cfg_d1.max_unresolved = 1;
    let mut cfg_32 = baseline(FetchPolicy::Oracle);
    cfg_32.icache = CacheConfig::paper_32k();
    Scenario::suite(
        "table3",
        "I-cache miss rates and PHT/BTB ISPI (paper Table 3)",
        vec![
            ConfigPoint::new("8K/d4", baseline(FetchPolicy::Oracle)),
            ConfigPoint::new("8K/d1", cfg_d1),
            ConfigPoint::new("32K/d4", cfg_32),
        ],
    )
    .with_metric(Metric::MissPct)
}

/// Gathers the measured rows.
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let grid = run_scenario(scenario(), opts);
    grid.scenario
        .benches
        .iter()
        .enumerate()
        .map(|(bi, &b)| {
            let runs = grid.bench_cells(bi);
            let (d4, d1, k32) = (&runs[0], &runs[1], &runs[2]);
            Row {
                benchmark: b,
                miss_8k: measured(d4, SimResult::miss_rate_pct),
                miss_32k: measured(k32, SimResult::miss_rate_pct),
                pht_b1: measured(d1, pht_ispi),
                pht_b4: measured(d4, pht_ispi),
                btb_misfetch: measured(d4, |r| r.ispi_component(r.btb_misfetch_slots)),
                btb_mispredict: measured(d4, |r| r.ispi_component(r.btb_mispredict_slots)),
            }
        })
        .collect()
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table = Table::new([
        "bench",
        "8K% (paper)",
        "32K% (paper)",
        "PHT B1 (paper)",
        "PHT B4 (paper)",
        "BTB-mf (paper)",
        "BTB-mp (paper)",
    ]);
    for r in &rows {
        let p = &r.benchmark.paper;
        table.row(vec![
            r.benchmark.name.to_owned(),
            vs_cell(&r.miss_8k, p.miss_8k),
            vs_cell(&r.miss_32k, p.miss_32k),
            vs_cell(&r.pht_b1, p.pht_ispi_b1),
            vs_cell(&r.pht_b4, p.pht_ispi_b4),
            vs_cell(&r.btb_misfetch, p.btb_misfetch_ispi),
            vs_cell(&r.btb_mispredict, p.btb_mispredict_ispi),
        ]);
    }
    table.row(vec![
        "Average".into(),
        vs(mean_ok(rows.iter().map(|r| &r.miss_8k)), 3.70),
        vs(mean_ok(rows.iter().map(|r| &r.miss_32k)), 0.97),
        vs(mean_ok(rows.iter().map(|r| &r.pht_b1)), 0.32),
        vs(mean_ok(rows.iter().map(|r| &r.pht_b4)), 0.45),
        vs(mean_ok(rows.iter().map(|r| &r.btb_misfetch)), 0.18),
        vs(mean_ok(rows.iter().map(|r| &r.btb_mispredict)), 0.03),
    ]);
    ExperimentReport {
        id: "table3",
        title: "I-cache miss rates and PHT/BTB ISPI (paper Table 3)".into(),
        table,
        notes: vec![
            "Miss rates are correct-path, per instruction, under Oracle (the paper's \
             workload characterisation)."
                .into(),
            "Expected shape: PHT ISPI grows from depth 1 to depth 4 (stale resolve-time \
             history); BTB mispredict ISPI is near zero (direct targets are static)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's depth effect (PHT ISPI grows with speculation depth)
    /// is present but weaker here than in the paper: it flows from stale
    /// history at predict time, and only the history-correlated fraction
    /// of our synthetic branches is sensitive to it. Assert the suite
    /// average does not *improve* with depth.
    #[test]
    fn pht_does_not_improve_with_depth_on_average() {
        let opts = RunOptions::smoke().with_instrs(60_000);
        let rows = data(&opts);
        let b1 = mean_ok(rows.iter().map(|r| &r.pht_b1));
        let b4 = mean_ok(rows.iter().map(|r| &r.pht_b4));
        assert!(b4 >= b1 - 0.02, "PHT ISPI improved with depth: B1 {b1:.3} -> B4 {b4:.3}");
    }

    #[test]
    fn bigger_cache_misses_less() {
        let opts = RunOptions::smoke().with_instrs(60_000);
        for r in data(&opts) {
            let (m32, m8) = (r.miss_32k.clone().unwrap(), r.miss_8k.clone().unwrap());
            assert!(m32 <= m8 + 1e-9, "{}: 32K {m32:.2}% > 8K {m8:.2}%", r.benchmark.name,);
        }
    }

    #[test]
    fn report_renders_14_rows() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
    }
}
