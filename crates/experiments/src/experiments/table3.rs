//! Paper Table 3: I-cache miss rates and branch-architecture ISPI.

use specfetch_cache::CacheConfig;
use specfetch_core::{FetchPolicy, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::experiments::{baseline, vs};
use crate::runner::{mean, run_grid, GridPoint};
use crate::{ExperimentReport, RunOptions, Table};

/// Measured Table 3 quantities for one benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// 8K direct-mapped miss rate, percent.
    pub miss_8k: f64,
    /// 32K direct-mapped miss rate, percent.
    pub miss_32k: f64,
    /// PHT-mispredict ISPI at depth 1.
    pub pht_b1: f64,
    /// PHT-mispredict ISPI at depth 4.
    pub pht_b4: f64,
    /// BTB-misfetch ISPI (depth 4).
    pub btb_misfetch: f64,
    /// BTB target-mispredict ISPI (depth 4).
    pub btb_mispredict: f64,
}

fn pht_ispi(r: &SimResult) -> f64 {
    r.ispi_component(r.pht_mispredict_slots)
}

/// Gathers the measured rows: per benchmark, Oracle runs at (8K, depth 4),
/// (8K, depth 1), and (32K, depth 4).
pub fn data(opts: &RunOptions) -> Vec<Row> {
    let benches: Vec<&'static Benchmark> = Benchmark::all().iter().collect();
    let mut cfg_d1 = baseline(FetchPolicy::Oracle);
    cfg_d1.max_unresolved = 1;
    let mut cfg_32 = baseline(FetchPolicy::Oracle);
    cfg_32.icache = CacheConfig::paper_32k();
    let mut points = Vec::new();
    for &b in &benches {
        for cfg in [baseline(FetchPolicy::Oracle), cfg_d1, cfg_32] {
            points.push(GridPoint::new(b, cfg));
        }
    }
    let results = run_grid(&points, opts);
    benches
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(&b, runs)| {
            let (d4, d1, k32) = (&runs[0], &runs[1], &runs[2]);
            Row {
                benchmark: b,
                miss_8k: d4.miss_rate_pct(),
                miss_32k: k32.miss_rate_pct(),
                pht_b1: pht_ispi(d1),
                pht_b4: pht_ispi(d4),
                btb_misfetch: d4.ispi_component(d4.btb_misfetch_slots),
                btb_mispredict: d4.ispi_component(d4.btb_mispredict_slots),
            }
        })
        .collect()
}

/// Renders the report.
pub fn run(opts: &RunOptions) -> ExperimentReport {
    let rows = data(opts);
    let mut table = Table::new([
        "bench",
        "8K% (paper)",
        "32K% (paper)",
        "PHT B1 (paper)",
        "PHT B4 (paper)",
        "BTB-mf (paper)",
        "BTB-mp (paper)",
    ]);
    for r in &rows {
        let p = &r.benchmark.paper;
        table.row(vec![
            r.benchmark.name.to_owned(),
            vs(r.miss_8k, p.miss_8k),
            vs(r.miss_32k, p.miss_32k),
            vs(r.pht_b1, p.pht_ispi_b1),
            vs(r.pht_b4, p.pht_ispi_b4),
            vs(r.btb_misfetch, p.btb_misfetch_ispi),
            vs(r.btb_mispredict, p.btb_mispredict_ispi),
        ]);
    }
    table.row(vec![
        "Average".into(),
        vs(mean(rows.iter().map(|r| r.miss_8k)), 3.70),
        vs(mean(rows.iter().map(|r| r.miss_32k)), 0.97),
        vs(mean(rows.iter().map(|r| r.pht_b1)), 0.32),
        vs(mean(rows.iter().map(|r| r.pht_b4)), 0.45),
        vs(mean(rows.iter().map(|r| r.btb_misfetch)), 0.18),
        vs(mean(rows.iter().map(|r| r.btb_mispredict)), 0.03),
    ]);
    ExperimentReport {
        id: "table3",
        title: "I-cache miss rates and PHT/BTB ISPI (paper Table 3)".into(),
        table,
        notes: vec![
            "Miss rates are correct-path, per instruction, under Oracle (the paper's \
             workload characterisation)."
                .into(),
            "Expected shape: PHT ISPI grows from depth 1 to depth 4 (stale resolve-time \
             history); BTB mispredict ISPI is near zero (direct targets are static)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's depth effect (PHT ISPI grows with speculation depth)
    /// is present but weaker here than in the paper: it flows from stale
    /// history at predict time, and only the history-correlated fraction
    /// of our synthetic branches is sensitive to it. Assert the suite
    /// average does not *improve* with depth.
    #[test]
    fn pht_does_not_improve_with_depth_on_average() {
        let opts = RunOptions::smoke().with_instrs(60_000);
        let rows = data(&opts);
        let b1 = mean(rows.iter().map(|r| r.pht_b1));
        let b4 = mean(rows.iter().map(|r| r.pht_b4));
        assert!(b4 >= b1 - 0.02, "PHT ISPI improved with depth: B1 {b1:.3} -> B4 {b4:.3}");
    }

    #[test]
    fn bigger_cache_misses_less() {
        let opts = RunOptions::smoke().with_instrs(60_000);
        for r in data(&opts) {
            assert!(
                r.miss_32k <= r.miss_8k + 1e-9,
                "{}: 32K {:.2}% > 8K {:.2}%",
                r.benchmark.name,
                r.miss_32k,
                r.miss_8k
            );
        }
    }

    #[test]
    fn report_renders_14_rows() {
        let rep = run(&RunOptions::smoke());
        assert_eq!(rep.table.len(), 14);
    }
}
