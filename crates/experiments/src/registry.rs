//! The experiment registry: every canonical experiment id mapped to its
//! report runner and — when its grid is declarative — the [`Scenario`]
//! behind it.
//!
//! The registry is the single source of truth for what `--experiment`
//! accepts: [`crate::run_experiment`] dispatches through it, the id
//! lists ([`crate::EXPERIMENT_IDS`], [`crate::EXTRA_EXPERIMENT_IDS`])
//! are asserted against it, and tooling can introspect an experiment's
//! grid without running it.

use crate::scenario::Scenario;
use crate::{experiments, ExperimentReport, RunOptions};

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct ExperimentEntry {
    /// The canonical id (`--experiment <id>`).
    pub id: &'static str,
    /// One-line summary of what the experiment reproduces.
    pub summary: &'static str,
    /// `true` for a paper artifact (run by `--experiment all`), `false`
    /// for an extra ablation (run by `--experiment extras`).
    pub paper_artifact: bool,
    /// The declarative benchmark × configuration grid the experiment
    /// evaluates, when it has one. `table2` characterises the traces
    /// themselves and is the only experiment without a grid.
    pub scenario: Option<fn() -> Scenario>,
    /// Renders the experiment's full bespoke report.
    pub run: fn(&RunOptions) -> ExperimentReport,
}

/// Every experiment: paper artifacts first, in paper order, then the
/// ablations.
pub const REGISTRY: [ExperimentEntry; 15] = [
    ExperimentEntry {
        id: "table2",
        summary: "workload inventory: instruction counts, % branches",
        paper_artifact: true,
        scenario: None,
        run: experiments::table2::run,
    },
    ExperimentEntry {
        id: "table3",
        summary: "miss rates (8K/32K) + PHT/BTB ISPI at depths 1 and 4",
        paper_artifact: true,
        scenario: Some(experiments::table3::scenario),
        run: experiments::table3::run,
    },
    ExperimentEntry {
        id: "table4",
        summary: "miss classification BM/SPo/SPr/WP + traffic ratio",
        paper_artifact: true,
        scenario: Some(experiments::table4::scenario),
        run: experiments::table4::run,
    },
    ExperimentEntry {
        id: "figure1",
        summary: "ISPI breakdown per policy, baseline (5-cycle penalty)",
        paper_artifact: true,
        scenario: Some(experiments::figure1::scenario),
        run: experiments::figure1::run,
    },
    ExperimentEntry {
        id: "figure2",
        summary: "ISPI breakdown per policy, 20-cycle penalty",
        paper_artifact: true,
        scenario: Some(experiments::figure2::scenario),
        run: experiments::figure2::run,
    },
    ExperimentEntry {
        id: "table5",
        summary: "ISPI x speculation depth (1/2/4) x policy",
        paper_artifact: true,
        scenario: Some(experiments::table5::scenario),
        run: experiments::table5::run,
    },
    ExperimentEntry {
        id: "table6",
        summary: "ISPI per policy with a 32K cache",
        paper_artifact: true,
        scenario: Some(experiments::table6::scenario),
        run: experiments::table6::run,
    },
    ExperimentEntry {
        id: "figure3",
        summary: "next-line prefetching at the baseline penalty",
        paper_artifact: true,
        scenario: Some(experiments::figure3::scenario),
        run: experiments::figure3::run,
    },
    ExperimentEntry {
        id: "figure4",
        summary: "next-line prefetching at the 20-cycle penalty",
        paper_artifact: true,
        scenario: Some(experiments::figure4::scenario),
        run: experiments::figure4::run,
    },
    ExperimentEntry {
        id: "table7",
        summary: "memory-traffic ratios with prefetching",
        paper_artifact: true,
        scenario: Some(experiments::table7::scenario),
        run: experiments::table7::run,
    },
    ExperimentEntry {
        id: "ablation-prefetch",
        summary: "prefetch variants under Resume: next-line/target/both-path/stream",
        paper_artifact: false,
        scenario: Some(experiments::ablations::prefetch_scenario),
        run: experiments::ablations::run_prefetch,
    },
    ExperimentEntry {
        id: "ablation-bpred",
        summary: "branch-architecture ablations under Resume",
        paper_artifact: false,
        scenario: Some(experiments::ablations::bpred_scenario),
        run: experiments::ablations::run_bpred,
    },
    ExperimentEntry {
        id: "ablation-assoc",
        summary: "8K I-cache associativity under Resume",
        paper_artifact: false,
        scenario: Some(experiments::ablations::assoc_scenario),
        run: experiments::ablations::run_assoc,
    },
    ExperimentEntry {
        id: "ablation-penalty",
        summary: "miss-penalty sweep: where Pessimistic catches Resume",
        paper_artifact: false,
        scenario: Some(experiments::ablations::penalty_scenario),
        run: experiments::ablations::run_penalty,
    },
    ExperimentEntry {
        id: "ablation-bus",
        summary: "pipelined miss requests at the 20-cycle penalty",
        paper_artifact: false,
        scenario: Some(experiments::ablations::bus_scenario),
        run: experiments::ablations::run_bus,
    },
];

/// Looks up one experiment by id.
pub fn find(id: &str) -> Option<&'static ExperimentEntry> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// The machine-readable registry listing: a JSON array with one object
/// per experiment — id, summary, whether it is a paper artifact, and
/// the declarative grid axes (benchmarks, config-point labels, metric)
/// or `null` for the one bespoke experiment without a grid.
///
/// This is the single listing both `--list --json` and the service's
/// `GET /experiments` serve, so the two can never drift.
pub fn render_listing_json() -> String {
    use crate::codec::json_escape;
    let mut out = String::from("[\n");
    for (i, e) in REGISTRY.iter().enumerate() {
        let grid = match e.scenario {
            None => "null".to_owned(),
            Some(scenario) => {
                let s = scenario();
                let benches: Vec<String> =
                    s.benches.iter().map(|b| format!("\"{}\"", json_escape(b.name))).collect();
                let points: Vec<String> =
                    s.points.iter().map(|p| format!("\"{}\"", json_escape(&p.label))).collect();
                format!(
                    "{{\"benches\":[{}],\"points\":[{}],\"metric\":\"{}\"}}",
                    benches.join(","),
                    points.join(","),
                    json_escape(s.metric.name())
                )
            }
        };
        out.push_str(&format!(
            "  {{\"id\":\"{}\",\"summary\":\"{}\",\"paper_artifact\":{},\"grid\":{}}}{}\n",
            json_escape(e.id),
            json_escape(e.summary),
            e.paper_artifact,
            grid,
            if i + 1 < REGISTRY.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        for (i, e) in REGISTRY.iter().enumerate() {
            assert!(REGISTRY[i + 1..].iter().all(|o| o.id != e.id), "duplicate id {}", e.id);
        }
    }

    #[test]
    fn the_json_listing_covers_the_whole_registry() {
        let listing = render_listing_json();
        assert!(listing.starts_with("[\n"), "{listing}");
        assert!(listing.ends_with(']'), "{listing}");
        for e in &REGISTRY {
            assert!(listing.contains(&format!("\"id\":\"{}\"", e.id)), "missing {}", e.id);
        }
        // table2 is the one gridless experiment; everything else lists axes.
        assert!(listing.contains("\"id\":\"table2\",\"summary\":\"workload inventory"));
        assert!(listing
            .lines()
            .any(|l| l.contains("\"id\":\"table2\"") && l.contains("\"grid\":null")));
        assert!(listing
            .lines()
            .any(|l| l.contains("\"id\":\"table5\"") && l.contains("\"benches\":[")));
        assert_eq!(listing.matches("\"id\":").count(), REGISTRY.len());
    }

    #[test]
    fn every_scenario_id_matches_its_registry_id_and_shape() {
        for e in &REGISTRY {
            if let Some(scenario) = e.scenario {
                let s = scenario();
                assert_eq!(s.id, e.id);
                assert!(!s.points.is_empty(), "{}: empty grid", e.id);
                assert!(!s.benches.is_empty(), "{}: no benchmarks", e.id);
                for p in &s.points {
                    p.cfg.validate().unwrap_or_else(|err| {
                        panic!("{}: point {:?} invalid: {err}", e.id, p.label)
                    });
                }
            }
        }
    }
}
