//! Declarative scenarios: a benchmark set crossed with a labelled
//! configuration grid, evaluated by one generic pipeline.
//!
//! Every reproduction artifact used to hand-roll the same shape — build
//! `GridPoint`s benchmark-major, run them isolated, re-chunk the cells
//! per benchmark, render. A [`Scenario`] names that shape once:
//!
//! - **axes** — which benchmarks (rows) × which [`ConfigPoint`]s
//!   (columns, each a labelled [`SimConfig`]);
//! - **projection** — the [`Metric`] read out of each cell;
//! - **comparison** — optional per-cell paper baselines rendered as
//!   `measured (paper)`.
//!
//! [`run_scenario`] evaluates the grid through the exact machinery the
//! paper tables use — [`crate::try_run_grid`] with its per-point fault
//! isolation, the process-wide trace cache, and the result memo — so a
//! user-defined sweep (`specfetch-repro --sweep ...`) shares caches with
//! (and is exactly as crash-tolerant as) the canonical experiments. The
//! paper experiments themselves declare their grids as scenarios in the
//! [`crate::registry`] and keep only their bespoke rendering.

use specfetch_core::{SimConfig, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::runner::{mean_ok, try_run_grid, GridCell, GridPoint, Measured};
use crate::{ExperimentReport, RunOptions, Table};

/// One labelled column of a scenario grid: a complete front-end
/// configuration plus the label it renders under.
#[derive(Clone, PartialEq, Debug)]
pub struct ConfigPoint {
    /// Column label (e.g. `"Res/8K/p20"`).
    pub label: String,
    /// The configuration simulated for this column.
    pub cfg: SimConfig,
}

impl ConfigPoint {
    /// A labelled configuration point.
    pub fn new(label: impl Into<String>, cfg: SimConfig) -> Self {
        ConfigPoint { label: label.into(), cfg }
    }
}

/// The quantity a scenario projects out of each cell's [`SimResult`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Metric {
    /// Issue slots lost per correct-path instruction (the paper's primary
    /// metric).
    #[default]
    Ispi,
    /// Correct-path I-cache miss rate, percent.
    MissPct,
    /// Total bus transactions (demand + prefetch, both paths).
    Traffic,
    /// Simulated cycles.
    Cycles,
    /// Instructions per cycle over the correct path.
    Ipc,
}

impl Metric {
    /// Every metric a sweep can project, with its spec name.
    pub const ALL: [(&'static str, Metric); 5] = [
        ("ispi", Metric::Ispi),
        ("miss", Metric::MissPct),
        ("traffic", Metric::Traffic),
        ("cycles", Metric::Cycles),
        ("ipc", Metric::Ipc),
    ];

    /// Parses a spec name (`ispi`, `miss`, `traffic`, `cycles`, `ipc`).
    pub fn parse(s: &str) -> Option<Metric> {
        Metric::ALL.iter().find(|(name, _)| *name == s).map(|&(_, m)| m)
    }

    /// The spec name.
    pub fn name(&self) -> &'static str {
        Metric::ALL.iter().find(|(_, m)| m == self).map(|&(name, _)| name).unwrap_or("ispi")
    }

    /// Projects the metric out of one result.
    pub fn project(&self, r: &SimResult) -> f64 {
        match self {
            Metric::Ispi => r.ispi(),
            Metric::MissPct => r.miss_rate_pct(),
            Metric::Traffic => r.total_traffic() as f64,
            Metric::Cycles => r.cycles as f64,
            Metric::Ipc => {
                if r.cycles == 0 {
                    0.0
                } else {
                    r.correct_instrs as f64 / r.cycles as f64
                }
            }
        }
    }

    /// Formats a projected value for a table cell.
    pub fn format(&self, v: f64) -> String {
        match self {
            Metric::Ispi | Metric::Ipc => format!("{v:.3}"),
            Metric::MissPct => format!("{v:.2}"),
            Metric::Traffic | Metric::Cycles => format!("{v:.0}"),
        }
    }
}

/// A declarative experiment: benchmarks × configuration points, a metric
/// projection, and optional paper baselines.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Identifier (report id; `"sweep"` for user-defined grids).
    pub id: String,
    /// Human title rendered above the table.
    pub title: String,
    /// Footnotes rendered below the table.
    pub notes: Vec<String>,
    /// The row axis: which benchmarks to replay.
    pub benches: Vec<&'static Benchmark>,
    /// The column axis: which configurations to replay each benchmark
    /// under.
    pub points: Vec<ConfigPoint>,
    /// The projection rendered per cell.
    pub metric: Metric,
    /// Optional comparison baselines, `benches.len() × points.len()`
    /// row-major — rendered as `measured (paper)` when present.
    pub paper: Option<Vec<f64>>,
}

impl Scenario {
    /// A scenario over the full calibrated suite.
    pub fn suite(
        id: impl Into<String>,
        title: impl Into<String>,
        points: Vec<ConfigPoint>,
    ) -> Self {
        Scenario {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            benches: Benchmark::all().iter().collect(),
            points,
            metric: Metric::Ispi,
            paper: None,
        }
    }

    /// Restricts the row axis to the named benchmarks (names must be
    /// resolvable; unknown names are skipped by the resolver used at the
    /// call site, so validate beforehand).
    pub fn with_benches(mut self, benches: Vec<&'static Benchmark>) -> Self {
        self.benches = benches;
        self
    }

    /// Sets the projected metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Attaches paper baselines (row-major, one per cell).
    pub fn with_paper(mut self, paper: Vec<f64>) -> Self {
        debug_assert_eq!(paper.len(), self.benches.len() * self.points.len());
        self.paper = Some(paper);
        self
    }

    /// Attaches a footnote.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The benchmark-major grid this scenario evaluates, in the exact
    /// order [`run_scenario`] numbers fault-injection points.
    pub fn grid_points(&self) -> Vec<GridPoint> {
        let mut points = Vec::with_capacity(self.benches.len() * self.points.len());
        for &b in &self.benches {
            for p in &self.points {
                points.push(GridPoint::new(b, p.cfg));
            }
        }
        points
    }
}

/// The evaluated cells of a scenario, benchmark-major.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioGrid {
    /// The scenario that produced the grid.
    pub scenario: Scenario,
    cells: Vec<GridCell>,
}

impl ScenarioGrid {
    /// The cell for `(bench index, point index)`.
    pub fn cell(&self, bench: usize, point: usize) -> &GridCell {
        &self.cells[bench * self.scenario.points.len() + point]
    }

    /// All of one benchmark's cells, in point order.
    pub fn bench_cells(&self, bench: usize) -> &[GridCell] {
        let w = self.scenario.points.len();
        &self.cells[bench * w..(bench + 1) * w]
    }

    /// Every cell, benchmark-major (the `try_run_grid` order).
    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    /// One point's metric projection for one benchmark.
    pub fn value(&self, bench: usize, point: usize) -> Measured<f64> {
        self.cell(bench, point)
            .as_ref()
            .map(|r| self.scenario.metric.project(r))
            .map_err(Clone::clone)
    }

    /// Renders the generic scenario report: one row per benchmark, one
    /// metric column per configuration point, plus a column-mean
    /// `Average` row (failed cells excluded from the mean).
    pub fn render(&self) -> ExperimentReport {
        let s = &self.scenario;
        let mut headers = vec!["bench".to_owned()];
        for p in &s.points {
            headers.push(match &s.paper {
                Some(_) => format!("{} (paper)", p.label),
                None => p.label.clone(),
            });
        }
        let mut table = Table::new(headers);
        let mut columns: Vec<Vec<Measured<f64>>> = vec![Vec::new(); s.points.len()];
        for (bi, b) in s.benches.iter().enumerate() {
            let mut row = vec![b.name.to_owned()];
            for (pi, _) in s.points.iter().enumerate() {
                let v = self.value(bi, pi);
                row.push(match (&v, &s.paper) {
                    (Ok(m), Some(paper)) => format!(
                        "{} ({})",
                        s.metric.format(*m),
                        s.metric.format(paper[bi * s.points.len() + pi])
                    ),
                    (Ok(m), None) => s.metric.format(*m),
                    (Err(f), _) => f.cell(),
                });
                columns[pi].push(v);
            }
            table.row(row);
        }
        if s.benches.len() > 1 {
            let mut avg = vec!["Average".to_owned()];
            for col in &columns {
                avg.push(s.metric.format(mean_ok(col.iter())));
            }
            table.row(avg);
        }
        ExperimentReport { id: "sweep", title: s.title.clone(), table, notes: s.notes.clone() }
    }
}

/// Evaluates a scenario through the shared pipeline: the benchmark-major
/// grid goes through [`try_run_grid`] — per-point `catch_unwind`
/// isolation, deterministic `--inject` point numbering, the process-wide
/// trace cache, and the `(benchmark, window, config)` result memo — and
/// the cells come back attached to the scenario for projection or
/// bespoke rendering.
pub fn run_scenario(scenario: Scenario, opts: &RunOptions) -> ScenarioGrid {
    let cells = try_run_grid(&scenario.grid_points(), opts);
    ScenarioGrid { scenario, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::FetchPolicy;

    fn two_policy_scenario() -> Scenario {
        let points = [FetchPolicy::Resume, FetchPolicy::Pessimistic]
            .into_iter()
            .map(|p| {
                let mut cfg = SimConfig::paper_baseline();
                cfg.policy = p;
                ConfigPoint::new(p.short_name(), cfg)
            })
            .collect();
        let benches = vec![Benchmark::by_name("li").unwrap(), Benchmark::by_name("gcc").unwrap()];
        Scenario::suite("sweep", "two policies", points).with_benches(benches)
    }

    #[test]
    fn grid_matches_manual_construction() {
        let s = two_policy_scenario();
        let opts = RunOptions::smoke().with_instrs(6_000);
        let grid = run_scenario(s.clone(), &opts);
        let manual = try_run_grid(&s.grid_points(), &opts);
        assert_eq!(grid.cells(), &manual[..]);
        // Cell addressing is bench-major.
        assert_eq!(grid.cell(1, 1), &manual[3]);
        assert_eq!(grid.bench_cells(1), &manual[2..4]);
    }

    #[test]
    fn render_shapes_rows_and_average() {
        let grid = run_scenario(two_policy_scenario(), &RunOptions::smoke().with_instrs(6_000));
        let rep = grid.render();
        assert_eq!(rep.table.len(), 3, "2 benches + Average");
        assert_eq!(rep.table.cell(0, 0), Some("li"));
        assert_eq!(rep.table.cell(2, 0), Some("Average"));
        assert_eq!(rep.table.failed_cells(), 0);
    }

    #[test]
    fn paper_columns_render_comparisons() {
        let s = two_policy_scenario().with_paper(vec![1.0, 2.0, 3.0, 4.0]);
        let grid = run_scenario(s, &RunOptions::smoke().with_instrs(6_000));
        let rep = grid.render();
        let cell = rep.table.cell(0, 1).unwrap();
        assert!(cell.contains("(1.000)"), "cell {cell:?} should carry the paper value");
    }

    #[test]
    fn metric_projection_and_names_round_trip() {
        for (name, m) in Metric::ALL {
            assert_eq!(Metric::parse(name), Some(m));
            assert_eq!(m.name(), name);
        }
        assert_eq!(Metric::parse("nope"), None);
    }

    #[test]
    fn dynamic_policy_runs_through_the_shared_pipeline() {
        // The acceptance-criterion path: a non-paper configuration (the
        // Dynamic gate) through run_scenario with caches and isolation.
        let mut cfg = SimConfig::paper_baseline();
        cfg.policy = FetchPolicy::Dynamic;
        let s = Scenario::suite("sweep", "dynamic", vec![ConfigPoint::new("Dyn", cfg)])
            .with_benches(vec![Benchmark::by_name("li").unwrap()]);
        let grid = run_scenario(s, &RunOptions::smoke().with_instrs(10_000));
        let r = grid.cell(0, 0).as_ref().unwrap();
        assert_eq!(r.policy, FetchPolicy::Dynamic);
        assert_eq!(r.correct_instrs, 10_000);
    }
}
