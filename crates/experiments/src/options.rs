//! Experiment run options.

/// Knobs shared by every experiment run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunOptions {
    /// Dynamic instructions simulated per benchmark per configuration.
    /// The paper ran 6M–4.8B per program; the default here (2M) keeps a
    /// full reproduction of all tables within minutes while leaving the
    /// relative results stable.
    pub instrs_per_benchmark: u64,
    /// Run the 13 benchmarks on worker threads.
    pub parallel: bool,
    /// Serve every run from the process-wide record-once / replay-many
    /// trace cache (see [`crate::trace_cache`]) instead of re-running the
    /// behavioural interpreter per configuration. The output is identical
    /// either way; `false` exists for equivalence tests and for measuring
    /// the speedup itself.
    pub share_traces: bool,
    /// Replay through the pre-decoded [`specfetch_trace::PredictedTrace`]
    /// overlay (built once per shared trace) and memoise finished
    /// `SimResult`s per `(benchmark, window, config)` so duplicate grid
    /// points across experiments are simulated once. Requires
    /// `share_traces` (the overlay is built over the shared recording);
    /// output is byte-identical either way — `false` exists for
    /// equivalence tests and for measuring the speedup itself.
    pub predict_cache: bool,
    /// Run each benchmark's grid points as one config-lockstep batch: a
    /// single pass over the shared overlay advances every configuration's
    /// lane together, decoding each fetch window once and fanning it out
    /// (see [`specfetch_core::run_lockstep`] and DESIGN §5h). Requires the
    /// overlay path (`share_traces && predict_cache`); output is
    /// byte-identical either way — `false` exists for equivalence tests
    /// and for measuring the speedup itself.
    pub lockstep: bool,
    /// Smallest instruction window worth pre-decoding: below this the
    /// overlay (and therefore lockstep) is skipped and runs replay the
    /// shared recording directly. Building the `PredictedTrace` costs a
    /// full decode pass, which BENCH_3 showed is a net loss on small
    /// windows (table4 @60k: 0.119s with the overlay vs 0.046s without);
    /// output is byte-identical on both sides of the threshold. `0`
    /// (the test default) always builds the overlay.
    pub overlay_min_instrs: u64,
    /// Look up / persist finished results in the on-disk result store
    /// (when one is configured via [`crate::result_store::set_dir`]).
    /// `false` (`--no-result-store`) recomputes everything and writes
    /// nothing, byte-identically.
    pub result_store: bool,
    /// Shard grid execution across this many `specfetch-repro --worker`
    /// child processes (see [`crate::worker`]); `0` simulates in-process.
    /// Output is byte-identical at any worker count.
    pub workers: usize,
    /// Print one `[row] ...` line to **stderr** per finished grid point,
    /// as it finishes — stdout (and therefore the golden output) is
    /// unchanged.
    pub stream: bool,
    /// How many times a *transient* grid-point failure (worker death,
    /// deadline/heartbeat timeout, injected `err`) is retried before the
    /// cell renders `FAILED(...)`. `0` (the default) fails immediately,
    /// preserving pre-supervision behaviour.
    pub retries: u32,
    /// Per-point deadline in seconds; `0` (the default) disables the
    /// deadline. Under `--workers` a whole group gets `deadline ×
    /// points` before the child is killed; in-process only cooperative
    /// waits (the injected `hang`) observe it.
    pub point_timeout_secs: u64,
    /// How long the parent tolerates silence from a worker child before
    /// declaring it hung and killing it. Children heartbeat every
    /// ~100ms, so the 5s default only fires on genuinely wedged
    /// processes.
    pub heartbeat_ms: u64,
    /// Base delay for the seeded exponential backoff between retry
    /// passes (`delay = backoff_ms << (attempt-1)`, plus deterministic
    /// jitter).
    pub backoff_ms: u64,
    /// Recompute points whose terminal failure is negatively cached in
    /// the result store / journal instead of replaying the `FAILED`
    /// cell.
    pub retry_failed: bool,
    /// The job this run executes under. Job `0` is the CLI's ambient
    /// job; the service controller assigns each submitted job its own
    /// id so journals, cancellation, and progress snapshots stay
    /// per-job (see [`crate::store`] and [`crate::supervise`]).
    pub job: u64,
}

impl RunOptions {
    /// The default reproduction budget.
    pub fn new() -> Self {
        RunOptions {
            instrs_per_benchmark: 2_000_000,
            parallel: true,
            share_traces: true,
            predict_cache: true,
            lockstep: true,
            overlay_min_instrs: 200_000,
            result_store: true,
            workers: 0,
            stream: false,
            retries: 0,
            point_timeout_secs: 0,
            heartbeat_ms: 5_000,
            backoff_ms: 100,
            retry_failed: false,
            job: 0,
        }
    }

    /// A budget for unit tests and smoke checks. The overlay threshold is
    /// `0` here so the overlay/lockstep machinery stays exercised at test
    /// window sizes.
    pub fn smoke() -> Self {
        RunOptions {
            instrs_per_benchmark: 40_000,
            parallel: true,
            share_traces: true,
            predict_cache: true,
            lockstep: true,
            overlay_min_instrs: 0,
            result_store: true,
            workers: 0,
            stream: false,
            retries: 0,
            point_timeout_secs: 0,
            heartbeat_ms: 5_000,
            backoff_ms: 100,
            retry_failed: false,
            job: 0,
        }
    }

    /// Overrides the per-benchmark instruction budget.
    pub fn with_instrs(mut self, instrs: u64) -> Self {
        self.instrs_per_benchmark = instrs;
        self
    }

    /// Enables or disables the shared-trace cache.
    pub fn with_share_traces(mut self, share: bool) -> Self {
        self.share_traces = share;
        self
    }

    /// Enables or disables the predicted-trace overlay and the result
    /// memo.
    pub fn with_predict_cache(mut self, predict: bool) -> Self {
        self.predict_cache = predict;
        self
    }

    /// Enables or disables config-lockstep batched simulation.
    pub fn with_lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = lockstep;
        self
    }

    /// Overrides the smallest window worth pre-decoding into an overlay.
    pub fn with_overlay_min(mut self, instrs: u64) -> Self {
        self.overlay_min_instrs = instrs;
        self
    }

    /// Enables or disables the on-disk result store.
    pub fn with_result_store(mut self, store: bool) -> Self {
        self.result_store = store;
        self
    }

    /// Sets the number of worker child processes (`0` = in-process).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables per-row streaming to stderr.
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the transient-failure retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-point deadline in seconds (`0` = no deadline).
    pub fn with_point_timeout(mut self, secs: u64) -> Self {
        self.point_timeout_secs = secs;
        self
    }

    /// Sets the worker heartbeat window in milliseconds.
    pub fn with_heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms;
        self
    }

    /// Sets the base retry backoff in milliseconds.
    pub fn with_backoff_ms(mut self, ms: u64) -> Self {
        self.backoff_ms = ms;
        self
    }

    /// Opts back into recomputing negatively-cached terminal failures.
    pub fn with_retry_failed(mut self, retry: bool) -> Self {
        self.retry_failed = retry;
        self
    }

    /// Sets the job id this run executes under (`0` = the CLI's ambient
    /// job).
    pub fn with_job(mut self, job: u64) -> Self {
        self.job = job;
        self
    }

    /// Whether finished results may be served from / filled into the
    /// process-wide memo and the on-disk store. Results are identical on
    /// every replay path, but the memo rides the same opt-outs as the
    /// overlay so `--no-predict-cache` stays a true "recompute
    /// everything" mode.
    pub(crate) fn use_memo(&self) -> bool {
        self.share_traces && self.predict_cache
    }

    /// Whether runs should go through the overlay fast path: both caches
    /// enabled and a window big enough that the decode pass pays for
    /// itself.
    pub(crate) fn use_overlay(&self) -> bool {
        self.use_memo() && self.instrs_per_benchmark >= self.overlay_min_instrs
    }

    /// Whether grids should run through the config-lockstep batch
    /// executor (needs the overlay the lanes share).
    pub(crate) fn use_lockstep(&self) -> bool {
        self.lockstep && self.use_overlay()
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        assert_eq!(RunOptions::default(), RunOptions::new());
        assert_eq!(RunOptions::new().with_instrs(5).instrs_per_benchmark, 5);
        assert!(RunOptions::smoke().instrs_per_benchmark < RunOptions::new().instrs_per_benchmark);
        assert!(RunOptions::new().share_traces, "sharing is the default");
        assert!(!RunOptions::new().with_share_traces(false).share_traces);
        assert!(RunOptions::new().predict_cache, "overlay replay is the default");
        assert!(!RunOptions::new().with_predict_cache(false).predict_cache);
        assert!(RunOptions::new().lockstep, "lockstep batching is the default");
        assert!(!RunOptions::new().with_lockstep(false).lockstep);
        assert!(RunOptions::new().result_store, "a configured store is used by default");
        assert!(!RunOptions::new().with_result_store(false).result_store);
        assert_eq!(RunOptions::new().workers, 0, "in-process execution is the default");
        assert_eq!(RunOptions::new().with_workers(3).workers, 3);
        assert!(!RunOptions::new().stream, "streaming is opt-in");
        assert!(RunOptions::new().with_stream(true).stream);
        assert_eq!(RunOptions::new().with_overlay_min(7).overlay_min_instrs, 7);
        assert_eq!(RunOptions::new().retries, 0, "no retries by default");
        assert_eq!(RunOptions::new().with_retries(3).retries, 3);
        assert_eq!(RunOptions::new().point_timeout_secs, 0, "no deadline by default");
        assert_eq!(RunOptions::new().with_point_timeout(30).point_timeout_secs, 30);
        assert_eq!(RunOptions::new().heartbeat_ms, 5_000);
        assert_eq!(RunOptions::new().with_heartbeat_ms(250).heartbeat_ms, 250);
        assert_eq!(RunOptions::new().with_backoff_ms(5).backoff_ms, 5);
        assert!(!RunOptions::new().retry_failed, "negative cache is honoured by default");
        assert!(RunOptions::new().with_retry_failed(true).retry_failed);
        assert_eq!(RunOptions::new().job, 0, "the CLI runs as the ambient job");
        assert_eq!(RunOptions::new().with_job(7).job, 7);
    }

    #[test]
    fn overlay_requires_both_caches() {
        assert!(RunOptions::new().use_overlay());
        assert!(!RunOptions::new().with_predict_cache(false).use_overlay());
        assert!(!RunOptions::new().with_share_traces(false).use_overlay());
    }

    #[test]
    fn overlay_respects_the_size_threshold() {
        let opts = RunOptions::new(); // 2M window, 200k threshold
        assert!(opts.use_overlay());
        assert!(!opts.with_instrs(60_000).use_overlay(), "small windows skip the overlay");
        assert!(opts.with_instrs(60_000).use_memo(), "...but still memoise results");
        assert!(opts.with_instrs(60_000).with_overlay_min(0).use_overlay());
        assert!(
            RunOptions::smoke().use_overlay(),
            "smoke options must keep the overlay path under test"
        );
    }

    #[test]
    fn lockstep_requires_the_overlay() {
        assert!(RunOptions::new().use_lockstep());
        assert!(!RunOptions::new().with_lockstep(false).use_lockstep());
        assert!(!RunOptions::new().with_predict_cache(false).use_lockstep());
        assert!(!RunOptions::new().with_share_traces(false).use_lockstep());
        assert!(!RunOptions::new().with_instrs(60_000).use_lockstep());
    }
}
