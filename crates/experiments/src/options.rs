//! Experiment run options.

/// Knobs shared by every experiment run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunOptions {
    /// Dynamic instructions simulated per benchmark per configuration.
    /// The paper ran 6M–4.8B per program; the default here (2M) keeps a
    /// full reproduction of all tables within minutes while leaving the
    /// relative results stable.
    pub instrs_per_benchmark: u64,
    /// Run the 13 benchmarks on worker threads.
    pub parallel: bool,
    /// Serve every run from the process-wide record-once / replay-many
    /// trace cache (see [`crate::trace_cache`]) instead of re-running the
    /// behavioural interpreter per configuration. The output is identical
    /// either way; `false` exists for equivalence tests and for measuring
    /// the speedup itself.
    pub share_traces: bool,
}

impl RunOptions {
    /// The default reproduction budget.
    pub fn new() -> Self {
        RunOptions { instrs_per_benchmark: 2_000_000, parallel: true, share_traces: true }
    }

    /// A budget for unit tests and smoke checks.
    pub fn smoke() -> Self {
        RunOptions { instrs_per_benchmark: 40_000, parallel: true, share_traces: true }
    }

    /// Overrides the per-benchmark instruction budget.
    pub fn with_instrs(mut self, instrs: u64) -> Self {
        self.instrs_per_benchmark = instrs;
        self
    }

    /// Enables or disables the shared-trace cache.
    pub fn with_share_traces(mut self, share: bool) -> Self {
        self.share_traces = share;
        self
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        assert_eq!(RunOptions::default(), RunOptions::new());
        assert_eq!(RunOptions::new().with_instrs(5).instrs_per_benchmark, 5);
        assert!(RunOptions::smoke().instrs_per_benchmark < RunOptions::new().instrs_per_benchmark);
        assert!(RunOptions::new().share_traces, "sharing is the default");
        assert!(!RunOptions::new().with_share_traces(false).share_traces);
    }
}
