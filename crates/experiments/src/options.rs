//! Experiment run options.

/// Knobs shared by every experiment run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunOptions {
    /// Dynamic instructions simulated per benchmark per configuration.
    /// The paper ran 6M–4.8B per program; the default here (2M) keeps a
    /// full reproduction of all tables within minutes while leaving the
    /// relative results stable.
    pub instrs_per_benchmark: u64,
    /// Run the 13 benchmarks on worker threads.
    pub parallel: bool,
    /// Serve every run from the process-wide record-once / replay-many
    /// trace cache (see [`crate::trace_cache`]) instead of re-running the
    /// behavioural interpreter per configuration. The output is identical
    /// either way; `false` exists for equivalence tests and for measuring
    /// the speedup itself.
    pub share_traces: bool,
    /// Replay through the pre-decoded [`specfetch_trace::PredictedTrace`]
    /// overlay (built once per shared trace) and memoise finished
    /// `SimResult`s per `(benchmark, window, config)` so duplicate grid
    /// points across experiments are simulated once. Requires
    /// `share_traces` (the overlay is built over the shared recording);
    /// output is byte-identical either way — `false` exists for
    /// equivalence tests and for measuring the speedup itself.
    pub predict_cache: bool,
    /// Run each benchmark's grid points as one config-lockstep batch: a
    /// single pass over the shared overlay advances every configuration's
    /// lane together, decoding each fetch window once and fanning it out
    /// (see [`specfetch_core::run_lockstep`] and DESIGN §5h). Requires the
    /// overlay path (`share_traces && predict_cache`); output is
    /// byte-identical either way — `false` exists for equivalence tests
    /// and for measuring the speedup itself.
    pub lockstep: bool,
}

impl RunOptions {
    /// The default reproduction budget.
    pub fn new() -> Self {
        RunOptions {
            instrs_per_benchmark: 2_000_000,
            parallel: true,
            share_traces: true,
            predict_cache: true,
            lockstep: true,
        }
    }

    /// A budget for unit tests and smoke checks.
    pub fn smoke() -> Self {
        RunOptions {
            instrs_per_benchmark: 40_000,
            parallel: true,
            share_traces: true,
            predict_cache: true,
            lockstep: true,
        }
    }

    /// Overrides the per-benchmark instruction budget.
    pub fn with_instrs(mut self, instrs: u64) -> Self {
        self.instrs_per_benchmark = instrs;
        self
    }

    /// Enables or disables the shared-trace cache.
    pub fn with_share_traces(mut self, share: bool) -> Self {
        self.share_traces = share;
        self
    }

    /// Enables or disables the predicted-trace overlay and the result
    /// memo.
    pub fn with_predict_cache(mut self, predict: bool) -> Self {
        self.predict_cache = predict;
        self
    }

    /// Enables or disables config-lockstep batched simulation.
    pub fn with_lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = lockstep;
        self
    }

    /// Whether runs should go through the overlay + memo fast path
    /// (both caches enabled).
    pub(crate) fn use_overlay(&self) -> bool {
        self.share_traces && self.predict_cache
    }

    /// Whether grids should run through the config-lockstep batch
    /// executor (needs the overlay the lanes share).
    pub(crate) fn use_lockstep(&self) -> bool {
        self.lockstep && self.use_overlay()
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        assert_eq!(RunOptions::default(), RunOptions::new());
        assert_eq!(RunOptions::new().with_instrs(5).instrs_per_benchmark, 5);
        assert!(RunOptions::smoke().instrs_per_benchmark < RunOptions::new().instrs_per_benchmark);
        assert!(RunOptions::new().share_traces, "sharing is the default");
        assert!(!RunOptions::new().with_share_traces(false).share_traces);
        assert!(RunOptions::new().predict_cache, "overlay replay is the default");
        assert!(!RunOptions::new().with_predict_cache(false).predict_cache);
        assert!(RunOptions::new().lockstep, "lockstep batching is the default");
        assert!(!RunOptions::new().with_lockstep(false).lockstep);
    }

    #[test]
    fn overlay_requires_both_caches() {
        assert!(RunOptions::new().use_overlay());
        assert!(!RunOptions::new().with_predict_cache(false).use_overlay());
        assert!(!RunOptions::new().with_share_traces(false).use_overlay());
    }

    #[test]
    fn lockstep_requires_the_overlay() {
        assert!(RunOptions::new().use_lockstep());
        assert!(!RunOptions::new().with_lockstep(false).use_lockstep());
        assert!(!RunOptions::new().with_predict_cache(false).use_lockstep());
        assert!(!RunOptions::new().with_share_traces(false).use_lockstep());
    }
}
