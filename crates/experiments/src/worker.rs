//! Sharded multi-process grid execution: `--workers N`.
//!
//! One simulation process is single-core-bound on the hot per-branch /
//! per-access work (DESIGN §5h), so the next multiplier is scale-out.
//! The parent keeps the whole pipeline it already has — input-order
//! fault numbering, static preflight, memo and result-store resolution —
//! and ships only the *unresolved, config-deduplicated* points of each
//! benchmark group to a pool of `specfetch-repro --worker` child
//! processes over a JSON-lines pipe protocol:
//!
//! ```text
//! parent → child   {"kind":"group","bench":"li","instrs":2000000,"points":2}
//!                  {"kind":"point","idx":0,"abort":0,"cfg":"v=1 policy=Res ..."}
//!                  {"kind":"point","idx":1,"abort":0,"cfg":"v=1 policy=Pess ..."}
//! child → parent   {"kind":"cell","idx":0,"ok":1,"result":"policy=Res instrs=..."}
//!                  {"kind":"cell","idx":1,"ok":0,"reason":"..."}
//!                  {"kind":"done"}
//! ```
//!
//! Configs cross the pipe in the canonical encoding of
//! `specfetch_core::canon` and results in the [`crate::codec`] line
//! format — both strict, versioned, and byte-exact (every measurement is
//! an integer), so a sharded run is **byte-identical** to an in-process
//! run. The work unit is the benchmark *group*, which preserves
//! config-lockstep batching inside each child and gives `--stream` a
//! natural row granularity.
//!
//! Children are spawned once (process-wide pool, first grid that asks)
//! with the parent's own cache flags, `--trace-dir`, and `--result-dir`,
//! so all processes share one trace cache and one result store. Faults:
//! the parent fires `panic`/`err`/`slow` guards itself before dispatch
//! (identical numbering and rendering to the in-process path) and
//! forwards `abort` to the child that will run the point — the child
//! dies mid-group, the parent renders that group's in-flight points as
//! `FAILED(worker ...)` cells, respawns the worker, and sibling workers
//! drain the rest of the queue. A pool that cannot start at all (the
//! executable cannot re-spawn itself) falls back to in-process execution
//! with a warning.

use std::io::{BufRead, BufReader, Write};
use std::panic::{self, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Mutex, OnceLock};

use specfetch_core::{SimConfig, SimResult};
use specfetch_synth::suite::Benchmark;

use crate::codec::{decode_result, encode_result, json_escape, json_string_field, json_u64_field};
use crate::fault::{self, FaultAction};
use crate::runner::{resolve_stored, stream_cells, CellFailure, GridCell, GridPoint};
use crate::RunOptions;

/// One group of unresolved points bound for a child process.
struct Job {
    bench: &'static Benchmark,
    instrs: u64,
    /// Deduplicated configs to simulate, with their abort-fault flags.
    cfgs: Vec<(SimConfig, bool)>,
    /// Position of this group in the calling grid.
    group: usize,
    reply: mpsc::Sender<(usize, Vec<Result<SimResult, CellFailure>>)>,
}

struct WorkerPool {
    jobs: mpsc::Sender<Job>,
}

static POOL: OnceLock<Option<WorkerPool>> = OnceLock::new();

/// The argv a child worker is spawned with: `--worker` plus the parent's
/// cache/store configuration, so parent and children agree on every
/// replay knob. `--instrs` travels per group in the protocol instead.
fn child_args(opts: &RunOptions) -> Vec<String> {
    let mut a = vec!["--worker".to_owned()];
    if !opts.parallel {
        a.push("--sequential".to_owned());
    }
    if !opts.share_traces {
        a.push("--no-trace-cache".to_owned());
    }
    if !opts.predict_cache {
        a.push("--no-predict-cache".to_owned());
    }
    if !opts.lockstep {
        a.push("--no-lockstep".to_owned());
    }
    if !opts.result_store {
        a.push("--no-result-store".to_owned());
    }
    a.push("--overlay-min".to_owned());
    a.push(opts.overlay_min_instrs.to_string());
    if let Some(d) = crate::disk_cache::dir() {
        a.push("--trace-dir".to_owned());
        a.push(d.display().to_string());
    }
    if let Some(d) = crate::result_store::dir() {
        a.push("--result-dir".to_owned());
        a.push(d.display().to_string());
    }
    a
}

fn spawn_child(args: &[String]) -> std::io::Result<(Child, BufReader<std::process::ChildStdout>)> {
    let exe = std::env::current_exe()?;
    let mut child =
        Command::new(exe).args(args).stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker has no stdout")
    })?;
    Ok((child, BufReader::new(stdout)))
}

/// Runs one job on `child`, filling `out` (pre-initialised to
/// worker-death failures) as cell lines arrive. `Ok(())` means the child
/// completed the group; `Err` means it died mid-group and must be
/// replaced.
fn drive_child(
    child: &mut Child,
    reader: &mut BufReader<std::process::ChildStdout>,
    job: &Job,
    out: &mut [Result<SimResult, CellFailure>],
) -> std::io::Result<()> {
    let proto = |detail: String| std::io::Error::new(std::io::ErrorKind::InvalidData, detail);
    let stdin = child.stdin.as_mut().ok_or_else(|| proto("worker stdin closed".to_owned()))?;
    let mut msg = format!(
        "{{\"kind\":\"group\",\"bench\":\"{}\",\"instrs\":{},\"points\":{}}}\n",
        job.bench.name,
        job.instrs,
        job.cfgs.len()
    );
    for (i, (cfg, abort)) in job.cfgs.iter().enumerate() {
        msg.push_str(&format!(
            "{{\"kind\":\"point\",\"idx\":{i},\"abort\":{},\"cfg\":\"{}\"}}\n",
            u8::from(*abort),
            json_escape(&cfg.canonical_string())
        ));
    }
    stdin.write_all(msg.as_bytes())?;
    stdin.flush()?;

    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(proto("no reply before EOF".to_owned()));
        }
        match json_string_field(&line, "kind").as_deref() {
            Some("done") => return Ok(()),
            Some("cell") => {
                let idx = json_u64_field(&line, "idx")
                    .ok_or_else(|| proto(format!("cell without idx: {line:?}")))?
                    as usize;
                if idx >= out.len() {
                    return Err(proto(format!("cell idx {idx} out of range")));
                }
                out[idx] = match json_u64_field(&line, "ok") {
                    Some(1) => {
                        let enc = json_string_field(&line, "result")
                            .ok_or_else(|| proto(format!("ok cell without result: {line:?}")))?;
                        decode_result(&enc).map_err(|e| CellFailure {
                            reason: format!("worker returned an undecodable result: {e}"),
                        })
                    }
                    Some(0) => Err(CellFailure {
                        reason: json_string_field(&line, "reason")
                            .unwrap_or_else(|| "worker reported an unnamed failure".to_owned()),
                    }),
                    _ => return Err(proto(format!("cell without ok flag: {line:?}"))),
                };
            }
            _ => return Err(proto(format!("unexpected worker message {line:?}"))),
        }
    }
}

/// One pool worker thread: owns one child process, pulls jobs from the
/// shared queue, and replaces its child whenever it dies (each death
/// costs exactly the in-flight group's unfinished points).
fn worker_thread(args: Vec<String>, rx: &Mutex<mpsc::Receiver<Job>>) {
    let mut slot = spawn_child(&args).ok();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else { return };
        let mut out: Vec<Result<SimResult, CellFailure>> = job
            .cfgs
            .iter()
            .map(|_| Err(CellFailure { reason: "worker died before this point".to_owned() }))
            .collect();
        if slot.is_none() {
            slot = spawn_child(&args).ok();
        }
        match &mut slot {
            None => {
                for cell in &mut out {
                    *cell =
                        Err(CellFailure { reason: "could not spawn worker process".to_owned() });
                }
            }
            Some((child, reader)) => {
                if let Err(e) = drive_child(child, reader, &job, &mut out) {
                    for cell in &mut out {
                        if let Err(f) = cell {
                            if f.reason == "worker died before this point" {
                                f.reason = format!("worker exited: {e}");
                            }
                        }
                    }
                    let _ = child.kill();
                    let _ = child.wait();
                    slot = None;
                }
            }
        }
        let _ = job.reply.send((job.group, out));
    }
}

/// Starts the process-wide pool on first use; `None` if no child could
/// be spawned at all (the caller falls back to in-process execution).
fn pool(opts: &RunOptions) -> Option<&'static WorkerPool> {
    POOL.get_or_init(|| {
        let args = child_args(opts);
        // Prove the executable can re-spawn itself before committing.
        match spawn_child(&args) {
            Ok((mut probe, _)) => {
                // The probe child sees EOF on stdin and exits cleanly.
                drop(probe.stdin.take());
                let _ = probe.wait();
            }
            Err(e) => {
                eprintln!(
                    "specfetch: warning: cannot spawn worker processes ({e}); \
                     running the grid in-process"
                );
                return None;
            }
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx: &'static Mutex<mpsc::Receiver<Job>> = Box::leak(Box::new(Mutex::new(rx)));
        for _ in 0..opts.workers.max(1) {
            let args = args.clone();
            std::thread::spawn(move || worker_thread(args, rx));
        }
        Some(WorkerPool { jobs: tx })
    })
    .as_ref()
}

/// Runs a grid by sharding its benchmark groups across the worker pool.
/// Returns `None` when the pool is unavailable, in which case the caller
/// runs the grid in-process. Cells come back in input order and are
/// byte-identical to the in-process path.
pub(crate) fn try_run_grid_sharded(
    points: &[GridPoint],
    base: u64,
    opts: &RunOptions,
) -> Option<Vec<GridCell>> {
    let pool = pool(opts)?;
    let mut groups: Vec<(&'static Benchmark, Vec<usize>)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        match groups.iter_mut().find(|(b, _)| std::ptr::eq(*b, p.benchmark)) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((p.benchmark, vec![i])),
        }
    }

    let instrs = opts.instrs_per_benchmark;
    let mut out: Vec<Option<GridCell>> = (0..points.len()).map(|_| None).collect();
    let (reply_tx, reply_rx) = mpsc::channel();
    // Per dispatched group: the point indices and configs awaiting reply.
    let mut dispatched: Vec<Option<(Vec<usize>, Vec<SimConfig>)>> = Vec::new();

    for (b, idxs) in groups {
        // Parent-side pre-filter, identical to the in-process path: fire
        // the fault guard (abort is routed to the child instead) and the
        // static preflight per point, then resolve memo/store hits.
        let mut early: Vec<(usize, Option<GridCell>)> = Vec::new();
        let mut aborts: Vec<usize> = Vec::new();
        for &i in &idxs {
            let fidx = base + i as u64;
            if fault::peek(fidx) == Some(FaultAction::Abort) {
                aborts.push(i);
                early.push((i, None));
                continue;
            }
            let pre = panic::catch_unwind(AssertUnwindSafe(|| {
                fault::guard(fidx)?;
                crate::analysis::preflight(b)
            }));
            let cell = match pre {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(Err(CellFailure::from_error(&e))),
                Err(payload) => Some(Err(CellFailure {
                    reason: crate::parallel::panic_message(payload.as_ref()),
                })),
            };
            early.push((i, cell));
        }

        // Deduplicate configs among surviving points; resolve memo/store
        // hits locally (a disk hit back-fills the memo, so duplicates of
        // a resolved config hit RAM on their own lookup below).
        let mut cfgs: Vec<(SimConfig, bool)> = Vec::new();
        for (i, cell) in &mut early {
            if cell.is_some() {
                continue;
            }
            let cfg = points[*i].cfg;
            let abort = aborts.contains(i);
            match cfgs.iter_mut().find(|(c, _)| *c == cfg) {
                Some((_, flagged)) => *flagged |= abort,
                None => {
                    if !abort {
                        if let Some(r) = resolve_stored(b, instrs, cfg, opts) {
                            *cell = Some(Ok(r));
                            continue;
                        }
                    }
                    cfgs.push((cfg, abort));
                }
            }
        }

        // Locally decided cells render (and stream) now; the rest wait.
        let decided: Vec<(usize, GridCell)> =
            early.iter().filter_map(|(i, c)| c.clone().map(|c| (*i, c))).collect();
        stream_cells(points, &decided, opts);
        for (i, c) in decided {
            out[i] = Some(c);
        }

        let group_id = dispatched.len();
        if cfgs.is_empty() {
            dispatched.push(None);
            continue;
        }
        let waiting: Vec<usize> =
            early.iter().filter(|(_, c)| c.is_none()).map(|(i, _)| *i).collect();
        let cfg_list: Vec<SimConfig> = cfgs.iter().map(|(c, _)| *c).collect();
        dispatched.push(Some((waiting, cfg_list)));
        let job = Job { bench: b, instrs, cfgs, group: group_id, reply: reply_tx.clone() };
        if pool.jobs.send(job).is_err() {
            // Pool wedged: fail this group's waiting points.
            if let Some((waiting, _)) = dispatched[group_id].take() {
                for i in waiting {
                    out[i] = Some(Err(CellFailure {
                        reason: "worker pool is not accepting jobs".to_owned(),
                    }));
                }
            }
        }
    }
    drop(reply_tx);

    let mut awaiting = dispatched.iter().filter(|d| d.is_some()).count();
    while awaiting > 0 {
        let Ok((group_id, results)) = reply_rx.recv() else { break };
        awaiting -= 1;
        let Some((waiting, cfg_list)) = dispatched.get_mut(group_id).and_then(Option::take) else {
            continue;
        };
        let b = points[waiting.first().copied().unwrap_or(0)].benchmark;
        // Merge child results into the parent memo (and render cells).
        for (cfg, res) in cfg_list.iter().zip(&results) {
            if let Ok(r) = res {
                crate::trace_cache::store_result(b, instrs, *cfg, r.clone());
            }
        }
        let mut cells: Vec<(usize, GridCell)> = Vec::new();
        for i in waiting {
            let cfg = points[i].cfg;
            let cell = match cfg_list.iter().position(|c| *c == cfg) {
                Some(k) => results[k].clone(),
                None => Err(CellFailure { reason: "grid point was never simulated".to_owned() }),
            };
            cells.push((i, cell));
        }
        stream_cells(points, &cells, opts);
        for (i, c) in cells {
            out[i] = Some(c);
        }
    }
    // Any group whose reply never arrived (pool death) fails its points.
    for slot in dispatched.into_iter().flatten() {
        let (waiting, _) = slot;
        for i in waiting {
            out[i] = Some(Err(CellFailure { reason: "worker pool shut down mid-grid".to_owned() }));
        }
    }

    Some(
        out.into_iter()
            .map(|c| {
                c.unwrap_or_else(|| {
                    Err(CellFailure { reason: "grid point was never simulated".to_owned() })
                })
            })
            .collect(),
    )
}

/// The `--worker` child loop: serve group requests from stdin until EOF.
/// Runs each group through the normal in-process grid (lockstep batching,
/// memo, result store — no fault plan is installed in children, so the
/// only injected behaviour is the forwarded `abort` flag).
pub fn child_loop(opts: RunOptions) -> std::process::ExitCode {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut stdout = std::io::stdout().lock();
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return std::process::ExitCode::SUCCESS,
            Ok(_) => {}
            Err(e) => {
                eprintln!("specfetch worker: stdin error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let fail = |detail: String| {
            eprintln!("specfetch worker: protocol error: {detail}");
            std::process::ExitCode::FAILURE
        };
        if json_string_field(&line, "kind").as_deref() != Some("group") {
            return fail(format!("expected a group message, got {line:?}"));
        }
        let Some(bench_name) = json_string_field(&line, "bench") else {
            return fail(format!("group without bench: {line:?}"));
        };
        let Some(bench) = Benchmark::by_name(&bench_name) else {
            return fail(format!("unknown benchmark {bench_name:?}"));
        };
        let Some(instrs) = json_u64_field(&line, "instrs") else {
            return fail(format!("group without instrs: {line:?}"));
        };
        let Some(n) = json_u64_field(&line, "points") else {
            return fail(format!("group without points: {line:?}"));
        };

        let mut cfgs: Vec<SimConfig> = Vec::with_capacity(n as usize);
        let mut abort_requested = false;
        for _ in 0..n {
            line.clear();
            match input.read_line(&mut line) {
                Ok(0) => return fail("EOF inside a group".to_owned()),
                Ok(_) => {}
                Err(e) => return fail(format!("stdin error: {e}")),
            }
            if json_string_field(&line, "kind").as_deref() != Some("point") {
                return fail(format!("expected a point message, got {line:?}"));
            }
            let Some(canon) = json_string_field(&line, "cfg") else {
                return fail(format!("point without cfg: {line:?}"));
            };
            let cfg = match SimConfig::from_canonical_string(&canon) {
                Ok(c) => c,
                Err(e) => return fail(format!("bad canonical config: {e}")),
            };
            abort_requested |= json_u64_field(&line, "abort") == Some(1);
            cfgs.push(cfg);
        }
        if abort_requested {
            // Forwarded `abort` fault: die exactly as a crashing worker
            // would, mid-group, without replying.
            fault::abort_process();
        }

        let grid: Vec<GridPoint> = cfgs.iter().map(|&c| GridPoint::new(bench, c)).collect();
        let gopts = opts.with_instrs(instrs).with_workers(0).with_stream(false);
        let cells = crate::runner::try_run_grid(&grid, &gopts);
        let mut reply = String::new();
        for (i, cell) in cells.iter().enumerate() {
            match cell {
                Ok(r) => reply.push_str(&format!(
                    "{{\"kind\":\"cell\",\"idx\":{i},\"ok\":1,\"result\":\"{}\"}}\n",
                    json_escape(&encode_result(r))
                )),
                Err(f) => reply.push_str(&format!(
                    "{{\"kind\":\"cell\",\"idx\":{i},\"ok\":0,\"reason\":\"{}\"}}\n",
                    json_escape(&f.reason)
                )),
            }
        }
        reply.push_str("{\"kind\":\"done\"}\n");
        if stdout.write_all(reply.as_bytes()).and_then(|()| stdout.flush()).is_err() {
            // Parent went away; nothing left to serve.
            return std::process::ExitCode::SUCCESS;
        }
    }
}
