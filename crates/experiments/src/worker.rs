//! Sharded multi-process grid execution: `--workers N`.
//!
//! One simulation process is single-core-bound on the hot per-branch /
//! per-access work (DESIGN §5h), so the next multiplier is scale-out.
//! The parent keeps the whole pipeline it already has — input-order
//! fault numbering, static preflight, memo and result-store resolution —
//! and ships only the *unresolved, config-deduplicated* points of each
//! benchmark group to a pool of `specfetch-repro --worker` child
//! processes over a JSON-lines pipe protocol (version
//! [`PROTO_VERSION`]):
//!
//! ```text
//! parent → child   {"kind":"hello","proto":2}
//! child → parent   {"kind":"hello","proto":2}
//! parent → child   {"kind":"group","bench":"li","instrs":2000000,"points":2}
//!                  {"kind":"point","idx":0,"fault":"none","cfg":"v=1 policy=Res ..."}
//!                  {"kind":"point","idx":1,"fault":"none","cfg":"v=1 policy=Pess ..."}
//! child → parent   {"kind":"hb"}                      (every ~100ms, always)
//!                  {"kind":"cell","idx":0,"ok":1,"result":"policy=Res instrs=..."}
//!                  {"kind":"cell","idx":1,"ok":0,"fail":"terminal","reason":"..."}
//!                  {"kind":"done"}
//! ```
//!
//! A failed cell carries its retry class (`fail`: `terminal` |
//! `transient` | `interrupted`) so the parent treats a deterministic
//! failure inside a worker — a real panic, an analysis error — exactly
//! like the in-process path would: terminal, never retried. Anything
//! unrecognised stays transient, which is also what genuine
//! worker-death fills (no cell at all) resolve to.
//!
//! The **hello handshake** runs once per child: a version mismatch is a
//! typed [`SpecfetchError::WorkerProtocol`] on either side, never
//! garbled JSON-lines. Configs cross the pipe in the canonical encoding
//! of `specfetch_core::canon` and results in the [`crate::codec`] line
//! format — both strict, versioned, and byte-exact, so a sharded run is
//! **byte-identical** to an in-process run.
//!
//! **Supervision** (DESIGN §5j): children heartbeat every ~100ms; the
//! parent drains each child's pipe on a reader thread and declares the
//! child hung when the heartbeat window (`--heartbeat-ms`) passes in
//! silence or the group exceeds its deadline (`--point-timeout` × group
//! size). A hung child is killed and replaced; its unfinished points
//! fail *transiently* (`timeout after Ns` / `worker hung`), which the
//! runner's `--retries` loop re-dispatches.
//!
//! Faults: the parent fires `panic`/`err`/`slow` guards itself before
//! dispatch (identical numbering and rendering to the in-process path)
//! and forwards process faults — `abort`, `hang`, `exitcode=<n>` — to
//! the child that will run the point: the child dies or freezes
//! mid-group, the parent recovers as above, and sibling workers drain
//! the rest of the queue. A pool that cannot start at all (the
//! executable cannot re-spawn itself) falls back to in-process
//! execution with a warning.

use std::io::{BufRead, BufReader, Write};
use std::panic::{self, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use specfetch_core::{SimConfig, SimResult, SpecfetchError};
use specfetch_synth::suite::Benchmark;
use specfetch_verify::{worker_step, DeadReason, Step, WorkerEvent, WorkerState};

use crate::codec::{decode_result, encode_result, json_escape, json_string_field, json_u64_field};
use crate::fault::{self, FaultAction};
use crate::runner::{stream_cells, CellFailure, FailKind, GridCell, GridPoint};
use crate::store::resolve_stored;
use crate::{supervise, RunOptions};

/// Version of the parent↔worker JSON-lines protocol. Bumped by the
/// supervision layer (v2: hello handshake, heartbeats, per-point fault
/// forwarding replaced the v1 `abort` flag).
pub const PROTO_VERSION: u64 = 2;

/// How often a worker child emits a heartbeat line. The CLI rejects
/// `--heartbeat-ms` windows below twice this interval — a window shorter
/// than the beat would declare every healthy child hung.
pub const HEARTBEAT_INTERVAL_MS: u64 = 100;

/// How long the parent waits for a child's hello before giving up on it.
const HANDSHAKE_TIMEOUT_MS: u64 = 10_000;

/// How often the parent's supervision loop re-checks deadlines while
/// waiting for child output.
const SUPERVISE_POLL_MS: u64 = 25;

/// One group of unresolved points bound for a child process.
struct Job {
    bench: &'static Benchmark,
    instrs: u64,
    /// Deduplicated configs to simulate, each with its forwarded
    /// process fault (if any).
    cfgs: Vec<(SimConfig, Option<FaultAction>)>,
    /// Position of this group in the calling grid.
    group: usize,
    /// The per-point deadline (0 = none); the whole group gets
    /// `point_timeout_secs × cfgs.len()` before the child is killed.
    point_timeout_secs: u64,
    /// Heartbeat silence tolerated before the child is declared hung.
    heartbeat_ms: u64,
    reply: mpsc::Sender<(usize, Vec<Result<SimResult, CellFailure>>)>,
}

struct WorkerPool {
    jobs: mpsc::Sender<Job>,
}

/// One live child: the process handle plus the reader thread's line
/// channel (disconnect = child stdout closed = child gone).
struct Slot {
    child: Child,
    lines: mpsc::Receiver<String>,
}

static POOL: OnceLock<Option<WorkerPool>> = OnceLock::new();

/// Validates one hello line against [`PROTO_VERSION`].
///
/// # Errors
///
/// [`SpecfetchError::WorkerProtocol`] when the line is not a hello or
/// carries a different version — the typed error both sides of the pipe
/// report instead of attempting to parse an incompatible stream.
pub fn validate_hello(line: &str) -> Result<(), SpecfetchError> {
    if json_string_field(line, "kind").as_deref() != Some("hello") {
        return Err(SpecfetchError::WorkerProtocol {
            detail: format!("expected a hello message, got {:?}", line.trim_end()),
        });
    }
    match json_u64_field(line, "proto") {
        Some(v) if v == PROTO_VERSION => Ok(()),
        Some(v) => Err(SpecfetchError::WorkerProtocol {
            detail: format!("peer speaks protocol v{v}, this build speaks v{PROTO_VERSION}"),
        }),
        None => Err(SpecfetchError::WorkerProtocol {
            detail: "hello message carries no proto version".to_owned(),
        }),
    }
}

/// The hello line either side opens with.
fn hello_line() -> String {
    format!("{{\"kind\":\"hello\",\"proto\":{PROTO_VERSION}}}\n")
}

/// The `fail` field a failed cell carries on the wire.
fn fail_wire(kind: FailKind) -> &'static str {
    match kind {
        FailKind::Terminal => "terminal",
        FailKind::Transient => "transient",
        FailKind::Interrupted => "interrupted",
    }
}

/// Maps a failed cell's wire class back to the parent-side failure, so a
/// deterministic failure inside a worker is terminal here too (never
/// retried), matching the in-process path. Anything unrecognised stays
/// transient — the class genuine worker deaths (no cell at all) fill
/// with.
fn cell_failure_from_wire(fail: Option<&str>, reason: String) -> CellFailure {
    match fail {
        Some("terminal") => CellFailure::permanent(reason),
        Some("interrupted") => CellFailure::interrupted(),
        _ => CellFailure::transient(reason),
    }
}

/// The argv a child worker is spawned with: `--worker` plus the parent's
/// cache/store configuration, so parent and children agree on every
/// replay knob. `--instrs` travels per group in the protocol instead;
/// supervision knobs stay in the parent.
fn child_args(opts: &RunOptions) -> Vec<String> {
    let mut a = vec!["--worker".to_owned()];
    if !opts.parallel {
        a.push("--sequential".to_owned());
    }
    if !opts.share_traces {
        a.push("--no-trace-cache".to_owned());
    }
    if !opts.predict_cache {
        a.push("--no-predict-cache".to_owned());
    }
    if !opts.lockstep {
        a.push("--no-lockstep".to_owned());
    }
    if !opts.result_store {
        a.push("--no-result-store".to_owned());
    }
    // Without this, a child would replay a negative-cache entry the
    // parent deliberately skipped.
    if opts.retry_failed {
        a.push("--retry-failed".to_owned());
    }
    a.push("--overlay-min".to_owned());
    a.push(opts.overlay_min_instrs.to_string());
    if let Some(d) = crate::disk_cache::dir() {
        a.push("--trace-dir".to_owned());
        a.push(d.display().to_string());
    }
    if let Some(d) = crate::result_store::dir() {
        a.push("--result-dir".to_owned());
        a.push(d.display().to_string());
    }
    a
}

/// Spawns one worker child, wires its stdout to a reader thread, and
/// completes the hello handshake. A child that answers with the wrong
/// protocol version (or nothing at all) is killed and reported.
fn spawn_child(args: &[String]) -> std::io::Result<Slot> {
    let exe = std::env::current_exe()?;
    let mut child =
        Command::new(exe).args(args).stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
    let stdout = child.stdout.take().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "worker has no stdout")
    })?;
    let (tx, lines) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if tx.send(line.clone()).is_err() {
                        return;
                    }
                }
            }
        }
    });
    let mut slot = Slot { child, lines };
    if let Err(e) = handshake(&mut slot) {
        let _ = slot.child.kill();
        let _ = slot.child.wait();
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
    }
    Ok(slot)
}

fn handshake(slot: &mut Slot) -> Result<(), SpecfetchError> {
    let proto_io = |detail: String| SpecfetchError::WorkerProtocol { detail };
    let stdin = slot
        .child
        .stdin
        .as_mut()
        .ok_or_else(|| proto_io("worker stdin closed before handshake".to_owned()))?;
    stdin
        .write_all(hello_line().as_bytes())
        .and_then(|()| stdin.flush())
        .map_err(|e| proto_io(format!("could not send hello: {e}")))?;
    // Classify the observation into a protocol event and let the model's
    // transition decide whether the child is usable: only
    // AwaitingHello -> HelloOk -> Idle proceeds, everything else is
    // Dead(Handshake).
    let mut verdict = Ok(());
    let event = match slot.lines.recv_timeout(Duration::from_millis(HANDSHAKE_TIMEOUT_MS)) {
        Ok(line) => match validate_hello(&line) {
            Ok(()) => WorkerEvent::HelloOk,
            Err(e) => {
                verdict = Err(e);
                WorkerEvent::HelloBad
            }
        },
        Err(_) => {
            verdict = Err(proto_io("no hello from worker before timeout/EOF".to_owned()));
            WorkerEvent::Silence
        }
    };
    match worker_step(&WorkerState::AwaitingHello, &event) {
        Step::Next(WorkerState::Idle) => Ok(()),
        _ => verdict.and(Err(proto_io("handshake failed".to_owned()))),
    }
}

/// Why [`drive_child`] gave up on a child mid-group.
enum DriveFailure {
    /// The group exceeded its `--point-timeout` budget.
    Deadline(u64),
    /// The heartbeat window elapsed in silence.
    Hung(u64),
    /// The pipe broke or the protocol desynchronised.
    Dead(String),
}

/// Runs one job on `slot`'s child, filling `out` (pre-initialised to
/// worker-death failures) as cell lines arrive. `Ok(())` means the child
/// completed the group; `Err` means it must be killed and replaced.
fn drive_child(
    slot: &mut Slot,
    job: &Job,
    out: &mut [Result<SimResult, CellFailure>],
) -> Result<(), DriveFailure> {
    let dead = DriveFailure::Dead;
    let stdin = slot.child.stdin.as_mut().ok_or_else(|| dead("worker stdin closed".to_owned()))?;
    let mut msg = format!(
        "{{\"kind\":\"group\",\"bench\":\"{}\",\"instrs\":{},\"points\":{}}}\n",
        job.bench.name,
        job.instrs,
        job.cfgs.len()
    );
    for (i, (cfg, fault)) in job.cfgs.iter().enumerate() {
        let wire = fault.map_or_else(|| "none".to_owned(), FaultAction::wire_name);
        msg.push_str(&format!(
            "{{\"kind\":\"point\",\"idx\":{i},\"fault\":\"{wire}\",\"cfg\":\"{}\"}}\n",
            json_escape(&cfg.canonical_string())
        ));
    }
    stdin
        .write_all(msg.as_bytes())
        .and_then(|()| stdin.flush())
        .map_err(|e| dead(e.to_string()))?;

    let deadline = (job.point_timeout_secs > 0)
        .then(|| Duration::from_secs(job.point_timeout_secs * job.cfgs.len() as u64));
    supervise_replies(&slot.lines, deadline, job.heartbeat_ms, job.point_timeout_secs, out)
}

/// Classifies one line from a child into a protocol [`WorkerEvent`],
/// filling `out` for cell replies. `seen` tracks already-filled indices
/// (a duplicate re-writes the slot, the model absorbs it); `detail`
/// carries the human-readable description of anything that will kill
/// the child.
fn classify_line(
    line: &str,
    seen: &mut [bool],
    out: &mut [Result<SimResult, CellFailure>],
    detail: &mut String,
) -> WorkerEvent {
    match json_string_field(line, "kind").as_deref() {
        Some("hb") => WorkerEvent::Heartbeat,
        Some("done") => WorkerEvent::Done,
        Some("cell") => {
            let Some(idx) = json_u64_field(line, "idx") else {
                *detail = format!("cell without idx: {line:?}");
                return WorkerEvent::Garbage;
            };
            let idx = idx as usize;
            if idx >= out.len() {
                *detail = format!("cell idx {idx} out of range");
                return WorkerEvent::Cell { in_range: false, duplicate: false };
            }
            let cell = match json_u64_field(line, "ok") {
                Some(1) => {
                    let Some(enc) = json_string_field(line, "result") else {
                        *detail = format!("ok cell without result: {line:?}");
                        return WorkerEvent::Garbage;
                    };
                    decode_result(&enc).map_err(|e| {
                        CellFailure::permanent(format!(
                            "worker returned an undecodable result: {e}"
                        ))
                    })
                }
                Some(0) => {
                    let reason = json_string_field(line, "reason")
                        .unwrap_or_else(|| "worker reported an unnamed failure".to_owned());
                    Err(cell_failure_from_wire(json_string_field(line, "fail").as_deref(), reason))
                }
                _ => {
                    *detail = format!("cell without ok flag: {line:?}");
                    return WorkerEvent::Garbage;
                }
            };
            out[idx] = cell;
            let duplicate = std::mem::replace(&mut seen[idx], true);
            WorkerEvent::Cell { in_range: true, duplicate }
        }
        _ => {
            *detail = format!("unexpected worker message {line:?}");
            WorkerEvent::Garbage
        }
    }
}

/// The supervision loop for one in-flight group, dispatching every
/// observation (child lines, deadline and silence timers, EOF) through
/// the model's [`worker_step`] — the checked protocol machine IS this
/// loop's control flow. Separated from [`drive_child`] so tests can
/// drive it with a hand-made channel.
///
/// Ordering matters here (regression: missed-wakeup): lines already
/// queued by the reader thread are drained *before* the deadline and
/// silence timers are consulted, so a healthy child whose final cells
/// and `done` raced a timer edge is never declared hung or over
/// deadline. Timers are only evaluated when the queue is momentarily
/// empty — which also keeps a heartbeat-spamming child from starving
/// the deadline, since the queue drains far faster than it fills.
fn supervise_replies(
    lines: &mpsc::Receiver<String>,
    deadline: Option<Duration>,
    heartbeat_ms: u64,
    point_timeout_secs: u64,
    out: &mut [Result<SimResult, CellFailure>],
) -> Result<(), DriveFailure> {
    let started = Instant::now();
    let mut last_heard = Instant::now();
    let mut state = WorkerState::Working { expected: out.len() as u32, filled: 0 };
    let mut seen = vec![false; out.len()];
    let mut detail = String::new();
    loop {
        let event = match lines.try_recv() {
            Ok(line) => {
                last_heard = Instant::now();
                classify_line(&line, &mut seen, out, &mut detail)
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                detail = "no reply before EOF".to_owned();
                WorkerEvent::Eof
            }
            Err(mpsc::TryRecvError::Empty) => {
                if deadline.is_some_and(|d| started.elapsed() >= d) {
                    WorkerEvent::Deadline
                } else if last_heard.elapsed() >= Duration::from_millis(heartbeat_ms) {
                    WorkerEvent::Silence
                } else {
                    match lines.recv_timeout(Duration::from_millis(SUPERVISE_POLL_MS)) {
                        Ok(line) => {
                            last_heard = Instant::now();
                            classify_line(&line, &mut seen, out, &mut detail)
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            detail = "no reply before EOF".to_owned();
                            WorkerEvent::Eof
                        }
                    }
                }
            }
        };
        state = match worker_step(&state, &event) {
            Step::Next(next) => next,
            Step::Stay => state,
            // The machine is total over its declared events; an
            // undeclared observation is by definition a protocol
            // violation.
            Step::Unhandled => WorkerState::Dead(DeadReason::Protocol),
        };
        match state {
            WorkerState::Complete { .. } => return Ok(()),
            WorkerState::Dead(DeadReason::DeadlineExceeded) => {
                return Err(DriveFailure::Deadline(point_timeout_secs));
            }
            WorkerState::Dead(DeadReason::Hung) => return Err(DriveFailure::Hung(heartbeat_ms)),
            WorkerState::Dead(_) => return Err(DriveFailure::Dead(std::mem::take(&mut detail))),
            _ => {}
        }
    }
}

const PENDING_REASON: &str = "worker died before this point";

/// One pool worker thread: owns one child process, pulls jobs from the
/// shared queue, and replaces its child whenever it dies or hangs (each
/// replacement costs exactly the in-flight group's unfinished points —
/// transiently, so the runner's retry loop can re-dispatch them).
fn worker_thread(args: Vec<String>, rx: &Mutex<mpsc::Receiver<Job>>) {
    let mut slot = spawn_child(&args).ok();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else { return };
        let mut out: Vec<Result<SimResult, CellFailure>> =
            job.cfgs.iter().map(|_| Err(CellFailure::transient(PENDING_REASON))).collect();
        if slot.is_none() {
            slot = spawn_child(&args).ok();
        }
        match &mut slot {
            None => {
                for cell in &mut out {
                    *cell = Err(CellFailure::transient("could not spawn worker process"));
                }
            }
            Some(s) => {
                if let Err(e) = drive_child(s, &job, &mut out) {
                    let fill = match e {
                        DriveFailure::Deadline(secs) => {
                            CellFailure::from_error(&SpecfetchError::Timeout { seconds: secs })
                        }
                        DriveFailure::Hung(ms) => {
                            CellFailure::transient(format!("worker hung (no heartbeat for {ms}ms)"))
                        }
                        DriveFailure::Dead(detail) => {
                            CellFailure::transient(format!("worker exited: {detail}"))
                        }
                    };
                    for cell in &mut out {
                        if let Err(f) = cell {
                            if f.reason == PENDING_REASON {
                                *f = fill.clone();
                            }
                        }
                    }
                    if let Some(mut s) = slot.take() {
                        let _ = s.child.kill();
                        let _ = s.child.wait();
                    }
                }
            }
        }
        let _ = job.reply.send((job.group, out));
    }
}

/// Starts the process-wide pool on first use; `None` if no child could
/// be spawned at all (the caller falls back to in-process execution).
fn pool(opts: &RunOptions) -> Option<&'static WorkerPool> {
    POOL.get_or_init(|| {
        let args = child_args(opts);
        // Prove the executable can re-spawn itself (and speaks our
        // protocol) before committing.
        match spawn_child(&args) {
            Ok(mut probe) => {
                // The probe child sees EOF on stdin and exits cleanly.
                drop(probe.child.stdin.take());
                let _ = probe.child.wait();
            }
            Err(e) => {
                eprintln!(
                    "specfetch: warning: cannot spawn worker processes ({e}); \
                     running the grid in-process"
                );
                return None;
            }
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx: &'static Mutex<mpsc::Receiver<Job>> = Box::leak(Box::new(Mutex::new(rx)));
        for _ in 0..opts.workers.max(1) {
            let args = args.clone();
            std::thread::spawn(move || worker_thread(args, rx));
        }
        Some(WorkerPool { jobs: tx })
    })
    .as_ref()
}

/// Runs one attempt over the `idxs` subset of a grid by sharding its
/// benchmark groups across the worker pool. Returns `None` when the
/// pool is unavailable, in which case the caller runs the pass
/// in-process. Cells come back keyed by their grid index and are
/// byte-identical to the in-process path.
pub(crate) fn try_run_grid_sharded(
    points: &[GridPoint],
    idxs: &[usize],
    base: u64,
    attempt: u32,
    opts: &RunOptions,
) -> Option<Vec<(usize, GridCell)>> {
    let pool = pool(opts)?;
    let mut groups: Vec<(&'static Benchmark, Vec<usize>)> = Vec::new();
    for &i in idxs {
        let p = &points[i];
        match groups.iter_mut().find(|(b, _)| std::ptr::eq(*b, p.benchmark)) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((p.benchmark, vec![i])),
        }
    }

    let instrs = opts.instrs_per_benchmark;
    let mut out: Vec<Option<GridCell>> = (0..points.len()).map(|_| None).collect();
    let (reply_tx, reply_rx) = mpsc::channel();
    // Per dispatched group: the point indices and configs awaiting reply.
    let mut dispatched: Vec<Option<(Vec<usize>, Vec<SimConfig>)>> = Vec::new();

    for (b, idxs) in groups {
        // Shutdown drain: groups not yet dispatched are interrupted, not
        // simulated; in-flight groups below finish normally.
        if supervise::job_shutdown_requested(opts.job) {
            for i in idxs {
                out[i] = Some(Err(CellFailure::interrupted()));
            }
            dispatched.push(None);
            continue;
        }
        // Parent-side pre-filter, identical to the in-process path: fire
        // the fault guard (process faults are routed to the child
        // instead) and the static preflight per point, then resolve
        // memo/store hits.
        let mut early: Vec<(usize, Option<GridCell>)> = Vec::new();
        let mut routed: Vec<(usize, FaultAction)> = Vec::new();
        for &i in &idxs {
            let fidx = base + i as u64;
            if let Some(action) = fault::peek(fidx, attempt).filter(|a| a.is_process_fault()) {
                routed.push((i, action));
                early.push((i, None));
                continue;
            }
            let pre = panic::catch_unwind(AssertUnwindSafe(|| {
                fault::guard(fidx, attempt, opts.point_timeout_secs)?;
                crate::analysis::preflight(b)
            }));
            let cell = match pre {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(Err(CellFailure::from_error(&e))),
                Err(payload) => Some(Err(CellFailure::permanent(crate::parallel::panic_message(
                    payload.as_ref(),
                )))),
            };
            early.push((i, cell));
        }

        // Deduplicate configs among surviving points; resolve memo/store
        // hits locally (a disk hit back-fills the memo, so duplicates of
        // a resolved config hit RAM on their own lookup below).
        let mut cfgs: Vec<(SimConfig, Option<FaultAction>)> = Vec::new();
        for (i, cell) in &mut early {
            if cell.is_some() {
                continue;
            }
            let cfg = points[*i].cfg;
            let fault = routed.iter().find(|(j, _)| j == i).map(|(_, a)| *a);
            match cfgs.iter_mut().find(|(c, _)| *c == cfg) {
                Some((_, flagged)) => *flagged = flagged.or(fault),
                None => {
                    if fault.is_none() {
                        if let Some(resolved) = resolve_stored(b, instrs, cfg, opts) {
                            *cell = Some(resolved);
                            continue;
                        }
                    }
                    cfgs.push((cfg, fault));
                }
            }
        }

        // Locally decided cells render (and stream) now; the rest wait.
        let decided: Vec<(usize, GridCell)> =
            early.iter().filter_map(|(i, c)| c.clone().map(|c| (*i, c))).collect();
        stream_cells(points, &decided, opts);
        for (i, c) in decided {
            out[i] = Some(c);
        }

        let group_id = dispatched.len();
        if cfgs.is_empty() {
            dispatched.push(None);
            continue;
        }
        let waiting: Vec<usize> =
            early.iter().filter(|(_, c)| c.is_none()).map(|(i, _)| *i).collect();
        let cfg_list: Vec<SimConfig> = cfgs.iter().map(|(c, _)| *c).collect();
        dispatched.push(Some((waiting, cfg_list)));
        let job = Job {
            bench: b,
            instrs,
            cfgs,
            group: group_id,
            point_timeout_secs: opts.point_timeout_secs,
            heartbeat_ms: opts.heartbeat_ms,
            reply: reply_tx.clone(),
        };
        if pool.jobs.send(job).is_err() {
            // Pool wedged: fail this group's waiting points.
            if let Some((waiting, _)) = dispatched[group_id].take() {
                for i in waiting {
                    out[i] = Some(Err(CellFailure::permanent("worker pool is not accepting jobs")));
                }
            }
        }
    }
    drop(reply_tx);

    let mut awaiting = dispatched.iter().filter(|d| d.is_some()).count();
    while awaiting > 0 {
        let Ok((group_id, results)) = reply_rx.recv() else { break };
        awaiting -= 1;
        let Some((waiting, cfg_list)) = dispatched.get_mut(group_id).and_then(Option::take) else {
            continue;
        };
        let b = points[waiting.first().copied().unwrap_or(0)].benchmark;
        // Merge child results into the parent memo (and render cells).
        for (cfg, res) in cfg_list.iter().zip(&results) {
            if let Ok(r) = res {
                crate::trace_cache::store_result(b, instrs, *cfg, r.clone());
            }
        }
        let mut cells: Vec<(usize, GridCell)> = Vec::new();
        for i in waiting {
            let cfg = points[i].cfg;
            let cell = match cfg_list.iter().position(|c| *c == cfg) {
                Some(k) => results[k].clone(),
                None => Err(CellFailure::permanent("grid point was never simulated")),
            };
            cells.push((i, cell));
        }
        stream_cells(points, &cells, opts);
        for (i, c) in cells {
            out[i] = Some(c);
        }
    }
    // Any group whose reply never arrived (pool death) fails its points.
    for slot in dispatched.into_iter().flatten() {
        let (waiting, _) = slot;
        for i in waiting {
            out[i] = Some(Err(CellFailure::permanent("worker pool shut down mid-grid")));
        }
    }

    Some(
        idxs.iter()
            .map(|&i| {
                let cell = out[i].take().unwrap_or_else(|| {
                    Err(CellFailure::permanent("grid point was never simulated"))
                });
                (i, cell)
            })
            .collect(),
    )
}

/// Set when a forwarded `hang` fault freezes this worker: the heartbeat
/// thread stops beating so the parent's heartbeat window can fire.
static FROZEN: AtomicBool = AtomicBool::new(false);

/// Writes one line to stdout under the global stdout lock (the serving
/// loop and the heartbeat thread interleave whole lines, never bytes).
fn emit(line: &str) -> std::io::Result<()> {
    let mut so = std::io::stdout().lock();
    so.write_all(line.as_bytes())?;
    so.flush()
}

/// The `--worker` child loop: handshake, then serve group requests from
/// stdin until EOF, heartbeating every ~100ms throughout. Runs each
/// group through the normal in-process grid (lockstep batching, memo,
/// result store — no fault plan is installed in children, so the only
/// injected behaviour is the forwarded per-point fault).
pub fn child_loop(opts: RunOptions) -> std::process::ExitCode {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    let mut line = String::new();

    let fail = |detail: String| {
        eprintln!("specfetch worker: protocol error: {detail}");
        std::process::ExitCode::FAILURE
    };

    // Handshake first: the parent's hello must arrive (and match) before
    // anything else crosses either pipe. EOF here is the pool's spawn
    // probe — exit cleanly.
    match input.read_line(&mut line) {
        Ok(0) => return std::process::ExitCode::SUCCESS,
        Ok(_) => {}
        Err(e) => return fail(format!("stdin error: {e}")),
    }
    if let Err(e) = validate_hello(&line) {
        eprintln!("specfetch worker: {e}");
        return std::process::ExitCode::FAILURE;
    }
    if emit(&hello_line()).is_err() {
        return std::process::ExitCode::SUCCESS;
    }
    // Liveness: heartbeat until frozen or the parent goes away.
    std::thread::spawn(|| loop {
        std::thread::sleep(Duration::from_millis(HEARTBEAT_INTERVAL_MS));
        if FROZEN.load(Ordering::SeqCst) || emit("{\"kind\":\"hb\"}\n").is_err() {
            return;
        }
    });

    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return std::process::ExitCode::SUCCESS,
            Ok(_) => {}
            Err(e) => {
                eprintln!("specfetch worker: stdin error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        if json_string_field(&line, "kind").as_deref() != Some("group") {
            return fail(format!("expected a group message, got {line:?}"));
        }
        let Some(bench_name) = json_string_field(&line, "bench") else {
            return fail(format!("group without bench: {line:?}"));
        };
        let Some(bench) = Benchmark::by_name(&bench_name) else {
            return fail(format!("unknown benchmark {bench_name:?}"));
        };
        let Some(instrs) = json_u64_field(&line, "instrs") else {
            return fail(format!("group without instrs: {line:?}"));
        };
        let Some(n) = json_u64_field(&line, "points") else {
            return fail(format!("group without points: {line:?}"));
        };

        let mut cfgs: Vec<SimConfig> = Vec::with_capacity(n as usize);
        let mut forwarded: Option<FaultAction> = None;
        for _ in 0..n {
            line.clear();
            match input.read_line(&mut line) {
                Ok(0) => return fail("EOF inside a group".to_owned()),
                Ok(_) => {}
                Err(e) => return fail(format!("stdin error: {e}")),
            }
            if json_string_field(&line, "kind").as_deref() != Some("point") {
                return fail(format!("expected a point message, got {line:?}"));
            }
            let Some(canon) = json_string_field(&line, "cfg") else {
                return fail(format!("point without cfg: {line:?}"));
            };
            let cfg = match SimConfig::from_canonical_string(&canon) {
                Ok(c) => c,
                Err(e) => return fail(format!("bad canonical config: {e}")),
            };
            if let Some(wire) = json_string_field(&line, "fault") {
                if wire != "none" {
                    match FaultAction::parse_wire(&wire) {
                        Some(a) => forwarded = forwarded.or(Some(a)),
                        None => return fail(format!("unknown forwarded fault {wire:?}")),
                    }
                }
            }
            cfgs.push(cfg);
        }
        match forwarded {
            // Forwarded process faults fire mid-group, without replying:
            // die hard, die clean, or freeze (heartbeats stop, and the
            // parent's liveness window does the killing).
            Some(FaultAction::Abort) => fault::abort_process(),
            Some(FaultAction::Exit(code)) => crate::fault::exit_process(code),
            Some(FaultAction::Hang) => {
                FROZEN.store(true, Ordering::SeqCst);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            _ => {}
        }

        let grid: Vec<GridPoint> = cfgs.iter().map(|&c| GridPoint::new(bench, c)).collect();
        let gopts = opts.with_instrs(instrs).with_workers(0).with_stream(false).with_retries(0);
        let cells = crate::runner::try_run_grid(&grid, &gopts);
        let mut reply = String::new();
        for (i, cell) in cells.iter().enumerate() {
            match cell {
                Ok(r) => reply.push_str(&format!(
                    "{{\"kind\":\"cell\",\"idx\":{i},\"ok\":1,\"result\":\"{}\"}}\n",
                    json_escape(&encode_result(r))
                )),
                Err(f) => reply.push_str(&format!(
                    "{{\"kind\":\"cell\",\"idx\":{i},\"ok\":0,\"fail\":\"{}\",\"reason\":\"{}\"}}\n",
                    fail_wire(f.kind),
                    json_escape(&f.reason)
                )),
            }
        }
        reply.push_str("{\"kind\":\"done\"}\n");
        if emit(&reply).is_err() {
            // Parent went away; nothing left to serve.
            return std::process::ExitCode::SUCCESS;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_line_validates_against_itself() {
        assert!(validate_hello(&hello_line()).is_ok());
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let e = validate_hello("{\"kind\":\"hello\",\"proto\":1}\n").unwrap_err();
        assert!(matches!(&e, SpecfetchError::WorkerProtocol { detail } if detail.contains("v1")));
        let e = validate_hello("{\"kind\":\"hello\"}\n").unwrap_err();
        assert!(matches!(e, SpecfetchError::WorkerProtocol { .. }));
    }

    #[test]
    fn fail_classes_round_trip_the_wire() {
        for kind in [FailKind::Terminal, FailKind::Transient, FailKind::Interrupted] {
            let back = cell_failure_from_wire(Some(fail_wire(kind)), "x".to_owned());
            assert_eq!(back.kind, kind, "{kind:?} must survive the pipe");
        }
        let legacy = cell_failure_from_wire(None, "x".to_owned());
        assert_eq!(legacy.kind, FailKind::Transient, "an unclassified cell stays retryable");
    }

    #[test]
    fn non_hello_first_message_is_a_typed_error() {
        let e = validate_hello("{\"kind\":\"group\",\"bench\":\"li\"}\n").unwrap_err();
        assert!(
            matches!(&e, SpecfetchError::WorkerProtocol { detail } if detail.contains("hello"))
        );
    }

    fn pending_out(n: usize) -> Vec<Result<SimResult, CellFailure>> {
        (0..n).map(|_| Err(CellFailure::transient(PENDING_REASON))).collect()
    }

    /// Regression (model invariant: a Working child with its replies
    /// already delivered must reach Complete, not Dead). The old loop
    /// consulted the deadline and silence timers *before* draining the
    /// channel, so a healthy child whose final cell and `done` were
    /// already queued — racing a timer edge or the reader thread's
    /// disconnect — was declared hung/over-deadline and its finished
    /// work thrown away. Queued lines must win over timers.
    #[test]
    fn queued_replies_beat_an_expired_timer_and_a_disconnect() {
        let (tx, rx) = mpsc::channel::<String>();
        tx.send(
            "{\"kind\":\"cell\",\"idx\":0,\"ok\":0,\"fail\":\"terminal\",\"reason\":\"boom\"}\n"
                .to_owned(),
        )
        .unwrap();
        tx.send("{\"kind\":\"done\"}\n".to_owned()).unwrap();
        drop(tx); // reader thread gone: the disconnect races the replies
        let mut out = pending_out(1);
        // Both timers are already expired when supervision starts.
        let r = supervise_replies(&rx, Some(Duration::ZERO), 0, 30, &mut out);
        assert!(r.is_ok(), "queued done must complete the group");
        let f = out[0].as_ref().unwrap_err();
        assert_eq!(f.reason, "boom", "the queued cell must be applied");
        assert_eq!(f.kind, FailKind::Terminal);
    }

    #[test]
    fn silence_past_the_heartbeat_window_is_hung() {
        let (tx, rx) = mpsc::channel::<String>();
        let mut out = pending_out(1);
        let r = supervise_replies(&rx, None, 1, 30, &mut out);
        assert!(matches!(r, Err(DriveFailure::Hung(1))));
        drop(tx);
        assert!(matches!(&out[0], Err(f) if f.reason == PENDING_REASON), "slot left transient");
    }

    #[test]
    fn eof_with_nothing_queued_is_dead() {
        let (tx, rx) = mpsc::channel::<String>();
        drop(tx);
        let mut out = pending_out(2);
        let r = supervise_replies(&rx, None, 5_000, 30, &mut out);
        assert!(matches!(r, Err(DriveFailure::Dead(d)) if d == "no reply before EOF"));
    }

    #[test]
    fn protocol_violations_kill_the_child_with_a_detail() {
        for (line, needle) in [
            ("{\"kind\":\"mystery\"}\n", "unexpected worker message"),
            ("{\"kind\":\"cell\",\"ok\":1}\n", "cell without idx"),
            ("{\"kind\":\"cell\",\"idx\":9,\"ok\":1}\n", "out of range"),
            ("{\"kind\":\"cell\",\"idx\":0,\"ok\":1}\n", "ok cell without result"),
            ("{\"kind\":\"cell\",\"idx\":0}\n", "cell without ok flag"),
        ] {
            let (tx, rx) = mpsc::channel::<String>();
            tx.send(line.to_owned()).unwrap();
            let mut out = pending_out(1);
            let r = supervise_replies(&rx, None, 5_000, 30, &mut out);
            match r {
                Err(DriveFailure::Dead(d)) => assert!(d.contains(needle), "{line:?}: {d}"),
                _ => panic!("{line:?} must kill the child"),
            }
            drop(tx);
        }
    }

    /// A duplicate cell index re-writes the slot (last write wins) and
    /// the group still completes — the model absorbs duplicates.
    #[test]
    fn duplicate_cells_are_absorbed() {
        let (tx, rx) = mpsc::channel::<String>();
        for reason in ["first", "second"] {
            tx.send(format!(
                "{{\"kind\":\"cell\",\"idx\":0,\"ok\":0,\"fail\":\"terminal\",\"reason\":\"{reason}\"}}\n"
            ))
            .unwrap();
        }
        tx.send("{\"kind\":\"done\"}\n".to_owned()).unwrap();
        let mut out = pending_out(1);
        let r = supervise_replies(&rx, None, 5_000, 30, &mut out);
        assert!(r.is_ok());
        assert!(matches!(&out[0], Err(f) if f.reason == "second"));
        drop(tx);
    }
}
