//! Self-healing on-disk cache of benchmark recordings.
//!
//! Recording a multi-million-instruction window from the synthetic model
//! is the most expensive cold step of a run; `--trace-dir <dir>` persists
//! each recording as a checksummed `.sftb` file
//! (`<dir>/<bench>-<instrs>.sftb`) so later processes replay it straight
//! from disk.
//!
//! A cache must never be able to wedge the run it accelerates. Every load
//! is verified end to end — SFTB magic, format version, FNV-1a footer
//! checksum, and the replayed instruction count — and any failure
//! **self-heals**: the bad file is quarantined (renamed to
//! `*.quarantined` for post-mortems), a warning goes to stderr, and the
//! recording is regenerated from the synthetic model and rewritten. A
//! corrupt or truncated cache file therefore costs one warning and one
//! re-record, never a failed grid cell.
//!
//! Failure to *write* the cache (read-only directory, disk full) is also
//! only a warning: persistence is an optimisation, and the in-memory
//! recording is already in hand.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use specfetch_core::SpecfetchError;
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{read_trace_binary, write_trace_binary, RecordedTrace, Trace};

use crate::trace_cache::record_fresh;

static DIR: OnceLock<PathBuf> = OnceLock::new();

/// Enables the on-disk cache, rooted at `dir` (created on first store).
/// Called once by the CLI (`--trace-dir`) before any experiment runs.
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] if a cache directory is already
/// configured.
pub fn set_dir(dir: PathBuf) -> Result<(), SpecfetchError> {
    DIR.set(dir).map_err(|d| SpecfetchError::InvalidSpec {
        detail: format!("trace cache directory already set to {}", d.display()),
    })
}

/// The configured cache root, if `--trace-dir` was given (worker child
/// processes are spawned with the same root so they share the cache).
pub fn dir() -> Option<&'static Path> {
    DIR.get().map(PathBuf::as_path)
}

fn cache_path(dir: &Path, bench: &str, instrs: u64) -> PathBuf {
    dir.join(format!("{bench}-{instrs}.sftb"))
}

/// The recording of `bench` capped at `instrs`: from the on-disk cache
/// when configured and intact, regenerated (and re-persisted) otherwise.
pub(crate) fn load_or_record(
    bench: &Benchmark,
    instrs: u64,
) -> Result<Arc<RecordedTrace>, SpecfetchError> {
    let Some(dir) = DIR.get() else { return record_fresh(bench, instrs) };
    load_or_record_in(dir, bench, instrs)
}

/// [`load_or_record`] with an explicit root, so tests drive the disk
/// paths without touching the process-wide configuration.
fn load_or_record_in(
    dir: &Path,
    bench: &Benchmark,
    instrs: u64,
) -> Result<Arc<RecordedTrace>, SpecfetchError> {
    let path = cache_path(dir, bench.name, instrs);
    if path.exists() {
        match load(&path, instrs) {
            Ok(rec) => return Ok(rec),
            Err(e) => quarantine(&path, &e.to_string()),
        }
    }
    let rec = record_fresh(bench, instrs)?;
    if let Err(e) = store(&path, &rec) {
        eprintln!(
            "specfetch: warning: could not persist trace cache {}: {e} (continuing uncached)",
            path.display()
        );
    }
    Ok(rec)
}

/// Reads and fully verifies one cache file. Any structural problem —
/// unreadable file, bad header, checksum mismatch, or a replay shorter
/// than the window it claims to cover — is a [`SpecfetchError::CorruptTrace`].
fn load(path: &Path, instrs: u64) -> Result<Arc<RecordedTrace>, SpecfetchError> {
    let file = File::open(path).map_err(|source| SpecfetchError::Io {
        context: format!("opening trace cache {}", path.display()),
        source,
    })?;
    let trace = read_trace_binary(BufReader::new(file)).map_err(|e| {
        SpecfetchError::CorruptTrace { path: path.to_path_buf(), detail: e.to_string() }
    })?;
    let mut source = trace.into_source();
    let rec = RecordedTrace::record(&mut source, instrs);
    if rec.len() as u64 != instrs {
        return Err(SpecfetchError::CorruptTrace {
            path: path.to_path_buf(),
            detail: format!("replays {} instructions, expected {instrs}", rec.len()),
        });
    }
    Ok(Arc::new(rec))
}

/// Persists a recording as a checksummed SFTB file.
fn store(path: &Path, rec: &Arc<RecordedTrace>) -> Result<(), SpecfetchError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|source| SpecfetchError::Io {
            context: format!("creating trace cache directory {}", parent.display()),
            source,
        })?;
    }
    let trace = Trace::record(&mut RecordedTrace::source(rec), u64::MAX);
    let file = File::create(path).map_err(|source| SpecfetchError::Io {
        context: format!("creating trace cache {}", path.display()),
        source,
    })?;
    let mut w = BufWriter::new(file);
    write_trace_binary(&trace, &mut w).map_err(|e| SpecfetchError::CorruptTrace {
        path: path.to_path_buf(),
        detail: format!("while writing: {e}"),
    })
}

/// Moves a bad cache file out of the way (to `<file>.quarantined`) so the
/// caller can regenerate, keeping the corpse for post-mortems.
fn quarantine(path: &Path, detail: &str) {
    let parked = {
        let mut os = path.as_os_str().to_owned();
        os.push(".quarantined");
        PathBuf::from(os)
    };
    let outcome = match std::fs::rename(path, &parked) {
        Ok(()) => format!("quarantined to {}", parked.display()),
        // Rename can fail across filesystems or on permissions; removal
        // is enough to unblock regeneration.
        Err(_) => match std::fs::remove_file(path) {
            Ok(()) => "removed".to_owned(),
            Err(e) => format!("could not be moved aside ({e})"),
        },
    };
    eprintln!(
        "specfetch: warning: trace cache {} failed verification ({detail}); {outcome}; \
         regenerating from the synthetic model",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_trace::PathSource;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique per-test scratch directory under the system temp dir
    /// (std-only; no tempfile crate).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("specfetch-disk-cache-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_same_stream(a: &Arc<RecordedTrace>, b: &Arc<RecordedTrace>) {
        let mut x = RecordedTrace::source(a);
        let mut y = RecordedTrace::source(b);
        loop {
            let (i, j) = (x.next_instr(), y.next_instr());
            assert_eq!(i, j);
            if i.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cold_miss_records_and_persists() {
        let dir = scratch("cold");
        let b = Benchmark::by_name("li").unwrap();
        let rec = load_or_record_in(&dir, b, 2_000).unwrap();
        assert_eq!(rec.len(), 2_000);
        assert!(cache_path(&dir, "li", 2_000).exists(), "cold miss must write the cache file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_hit_replays_the_persisted_file() {
        let dir = scratch("warm");
        let b = Benchmark::by_name("tex").unwrap();
        let first = load_or_record_in(&dir, b, 1_500).unwrap();
        let again = load_or_record_in(&dir, b, 1_500).unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "second call must come from disk, not memory");
        assert_same_stream(&first, &again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_quarantined_and_regenerated() {
        let dir = scratch("trunc");
        let b = Benchmark::by_name("groff").unwrap();
        let first = load_or_record_in(&dir, b, 1_000).unwrap();

        let path = cache_path(&dir, "groff", 1_000);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let healed = load_or_record_in(&dir, b, 1_000).unwrap();
        assert_same_stream(&first, &healed);
        let parked = {
            let mut os = path.as_os_str().to_owned();
            os.push(".quarantined");
            PathBuf::from(os)
        };
        assert!(parked.exists(), "the bad file must be kept for post-mortems");
        assert_eq!(
            std::fs::read(&parked).unwrap().len(),
            bytes.len() / 2,
            "quarantine preserves the corrupt bytes"
        );
        assert!(path.exists(), "regeneration must rewrite the cache file");
        let rewritten = load(&path, 1_000).unwrap();
        assert_same_stream(&first, &rewritten);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_is_caught_by_the_checksum_and_healed() {
        let dir = scratch("flip");
        let b = Benchmark::by_name("idl").unwrap();
        let first = load_or_record_in(&dir, b, 1_200).unwrap();

        let path = cache_path(&dir, "idl", 1_200);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = load(&path, 1_200).unwrap_err();
        assert!(
            matches!(err, SpecfetchError::CorruptTrace { .. }),
            "flipped byte must surface as corruption, got: {err}"
        );

        let healed = load_or_record_in(&dir, b, 1_200).unwrap();
        assert_same_stream(&first, &healed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_window_length_is_corruption() {
        let dir = scratch("len");
        let b = Benchmark::by_name("cfront").unwrap();
        load_or_record_in(&dir, b, 800).unwrap();

        // A file valid for an 800-instruction window, presented as 900:
        // structurally perfect, but it cannot cover the claimed window.
        let short = cache_path(&dir, "cfront", 800);
        let long = cache_path(&dir, "cfront", 900);
        std::fs::copy(&short, &long).unwrap();
        let err = load(&long, 900).unwrap_err();
        assert!(
            matches!(&err, SpecfetchError::CorruptTrace { detail, .. } if detail.contains("expected 900")),
            "length mismatch must surface as corruption, got: {err}"
        );

        // And the composite path heals it into a correct 900 recording.
        let healed = load_or_record_in(&dir, b, 900).unwrap();
        assert_eq!(healed.len(), 900);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unpersistable_cache_still_returns_the_recording() {
        // A file where the directory should be: create_dir_all fails, the
        // store is skipped with a warning, and the recording still comes
        // back usable.
        let dir = scratch("rofs");
        let blocking = dir.join("blocked");
        std::fs::write(&blocking, b"not a directory").unwrap();
        let b = Benchmark::by_name("ditroff").unwrap();
        let rec = load_or_record_in(&blocking.join("sub"), b, 600).unwrap();
        assert_eq!(rec.len(), 600);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
