//! Process-wide record-once / replay-many caches of benchmark recordings,
//! their pre-decoded overlays, and finished results.
//!
//! The full reproduction is a cross-product of configurations over the
//! same 13 correct paths: every cell of every table replays the identical
//! instruction stream under a different front-end. Three layers keep that
//! cross-product cheap:
//!
//! 1. [`shared_trace`] interprets each calibrated workload **once per
//!    (benchmark, instruction window)** and hands every subsequent run a
//!    [`RecordedSource`] over the shared [`RecordedTrace`] — an `Arc` bump
//!    instead of a fresh behavioural interpretation.
//! 2. [`predicted_trace`] builds the [`PredictedTrace`] overlay — decoded
//!    instruction classes, sequential-run lengths, static targets, and the
//!    resolve-order outcome stream — **once per recording**, so no
//!    configuration ever re-decodes the path (the engine's batched fetch
//!    fast path also keys off it).
//! 3. [`memoized_result`] caches the finished [`SimResult`] per
//!    `(benchmark, window, config)`. The experiment grid revisits many
//!    identical points (every table re-runs the Oracle/Resume baselines);
//!    the engine is deterministic, so the second visit is a clone.
//!
//! Concurrency: each map is guarded by one mutex held only for key
//! lookup; each entry is a [`OnceLock`], so parallel workers that race on
//! a cold entry block on the single computation instead of duplicating
//! it.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

use specfetch_core::{SimConfig, SimResult};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PredictedSource, PredictedTrace, RecordedSource, RecordedTrace};

type Key = (&'static str, u64);
type Cell<T> = Arc<OnceLock<T>>;
type Map<K, T> = Mutex<HashMap<K, Cell<T>>>;

/// Fetches (creating if absent) the once-cell for `key`, then fills it
/// with `compute` — run at most once per key process-wide.
fn get_or_init<K: Eq + Hash + Clone, T: Clone>(
    map: &Map<K, T>,
    key: K,
    compute: impl FnOnce() -> T,
) -> T {
    let cell = {
        let mut map = map.lock().expect("no code panics while holding the cache lock");
        Arc::clone(map.entry(key).or_default())
    };
    cell.get_or_init(compute).clone()
}

fn trace_map() -> &'static Map<Key, Arc<RecordedTrace>> {
    static CACHE: OnceLock<Map<Key, Arc<RecordedTrace>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn predicted_map() -> &'static Map<Key, Arc<PredictedTrace>> {
    static CACHE: OnceLock<Map<Key, Arc<PredictedTrace>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn result_map() -> &'static Map<(Key, SimConfig), SimResult> {
    static CACHE: OnceLock<Map<(Key, SimConfig), SimResult>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared recording of `bench`'s correct path, capped at `instrs`
/// instructions — recorded on first request, replayed from memory after.
pub fn shared_trace(bench: &Benchmark, instrs: u64) -> Arc<RecordedTrace> {
    get_or_init(trace_map(), (bench.name, instrs), || {
        let workload = bench.workload().expect("calibrated specs always generate");
        let mut live = workload.executor(bench.path_seed());
        Arc::new(RecordedTrace::record(&mut live, instrs))
    })
}

/// A fresh replay cursor over [`shared_trace`]'s recording.
pub fn recorded_source(bench: &Benchmark, instrs: u64) -> RecordedSource {
    RecordedTrace::source(&shared_trace(bench, instrs))
}

/// The shared pre-decoded overlay over [`shared_trace`]'s recording —
/// built on first request, an `Arc` bump after.
pub fn predicted_trace(bench: &Benchmark, instrs: u64) -> Arc<PredictedTrace> {
    get_or_init(predicted_map(), (bench.name, instrs), || {
        Arc::new(PredictedTrace::build(&shared_trace(bench, instrs)))
    })
}

/// A fresh replay cursor over [`predicted_trace`]'s overlay.
pub fn predicted_source(bench: &Benchmark, instrs: u64) -> PredictedSource {
    PredictedTrace::source(&predicted_trace(bench, instrs))
}

/// The finished result of simulating `bench` for `instrs` instructions
/// under `cfg` — computed by `run` at most once process-wide (the engine
/// is deterministic, so every revisit of the same grid point is a clone).
pub fn memoized_result(
    bench: &Benchmark,
    instrs: u64,
    cfg: SimConfig,
    run: impl FnOnce() -> SimResult,
) -> SimResult {
    get_or_init(result_map(), ((bench.name, instrs), cfg), run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::Simulator;
    use specfetch_trace::PathSource;

    #[test]
    fn same_window_is_recorded_once() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_234);
        let c = shared_trace(b, 1_234);
        assert!(Arc::ptr_eq(&a, &c), "second request must reuse the recording");
        assert_eq!(a.len(), 1_234);
    }

    #[test]
    fn windows_are_distinct_entries() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_111);
        let c = shared_trace(b, 2_222);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 2_222);
    }

    #[test]
    fn replay_matches_the_live_interpreter() {
        let b = Benchmark::by_name("tex").unwrap();
        let w = b.workload().unwrap();
        let mut live = w.executor(b.path_seed()).take_instrs(5_000);
        let mut replay = recorded_source(b, 5_000);
        loop {
            let (x, y) = (live.next_instr(), replay.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn concurrent_cold_requests_converge() {
        let b = Benchmark::by_name("groff").unwrap();
        let traces = crate::par_map(vec![(); 8], true, |()| shared_trace(b, 3_000));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }

    #[test]
    fn overlay_is_built_once_over_the_shared_recording() {
        let b = Benchmark::by_name("cfront").unwrap();
        let a = predicted_trace(b, 2_345);
        let c = predicted_trace(b, 2_345);
        assert!(Arc::ptr_eq(&a, &c), "second request must reuse the overlay");
        assert!(Arc::ptr_eq(a.base(), &shared_trace(b, 2_345)), "overlay wraps the shared trace");
        assert_eq!(a.len(), 2_345);
    }

    #[test]
    fn predicted_replay_matches_the_recorded_replay() {
        let b = Benchmark::by_name("ditroff").unwrap();
        let mut rec = recorded_source(b, 4_000);
        let mut pre = predicted_source(b, 4_000);
        loop {
            let (x, y) = (rec.next_instr(), pre.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn memo_runs_once_per_grid_point() {
        let b = Benchmark::by_name("idl").unwrap();
        let cfg = SimConfig::paper_baseline();
        let mut runs = 0;
        let a = memoized_result(b, 6_000, cfg, || {
            runs += 1;
            Simulator::new(cfg).run(predicted_source(b, 6_000))
        });
        let c = memoized_result(b, 6_000, cfg, || unreachable!("memo hit must not re-run"));
        assert_eq!(runs, 1);
        assert_eq!(a, c);

        // A different config is a different point.
        let mut cfg2 = cfg;
        cfg2.miss_penalty += 1;
        let d = memoized_result(b, 6_000, cfg2, || {
            Simulator::new(cfg2).run(predicted_source(b, 6_000))
        });
        assert_ne!(a.cycles, d.cycles, "longer penalty must cost cycles");
    }
}
