//! Process-wide record-once / replay-many caches of benchmark recordings,
//! their pre-decoded overlays, and finished results.
//!
//! The full reproduction is a cross-product of configurations over the
//! same 13 correct paths: every cell of every table replays the identical
//! instruction stream under a different front-end. Three layers keep that
//! cross-product cheap:
//!
//! 1. [`shared_trace`] interprets each calibrated workload **once per
//!    (benchmark, instruction window)** and hands every subsequent run a
//!    [`RecordedSource`] over the shared [`RecordedTrace`] — an `Arc` bump
//!    instead of a fresh behavioural interpretation.
//! 2. [`predicted_trace`] builds the [`PredictedTrace`] overlay — decoded
//!    instruction classes, sequential-run lengths, static targets, and the
//!    resolve-order outcome stream — **once per recording**, so no
//!    configuration ever re-decodes the path (the engine's batched fetch
//!    fast path also keys off it).
//! 3. [`memoized_result`] caches the finished [`SimResult`] per
//!    `(benchmark, window, config)`. The experiment grid revisits many
//!    identical points (every table re-runs the Oracle/Resume baselines);
//!    the engine is deterministic, so the second visit is a clone.
//!
//! Concurrency: each map is guarded by one mutex held only for key
//! lookup; each entry is a [`OnceLock`], so parallel workers that race on
//! a cold entry block on the single computation instead of duplicating
//! it.
//!
//! Failure: grid points are allowed to panic (see
//! [`try_par_map`](crate::try_par_map)), so the caches must outlive a
//! panicking neighbour. [`lock_recovering`] clears mutex poisoning and
//! evicts entries whose initialisation was in flight when the panic hit;
//! the `try_*` variants report trace and workload failures as
//! [`SpecfetchError`] values instead of unwinding, and never cache an
//! error — the next request retries.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use specfetch_core::{SimConfig, SimResult, SpecfetchError};
use specfetch_synth::suite::Benchmark;
use specfetch_trace::{PredictedSource, PredictedTrace, RecordedSource, RecordedTrace};

type Key = (&'static str, u64);
type Cell<T> = Arc<OnceLock<T>>;
type Map<K, T> = Mutex<HashMap<K, Cell<T>>>;

/// Locks a cache map, recovering if a previous holder panicked.
///
/// The guard is held only for key lookup, so poisoning requires a panic
/// inside that critical section — which no current code path does — but
/// the experiment runner's contract is that one panicking grid point
/// costs one cell, so the caches must not amplify an unexpected panic
/// into a process-wide wedge. Recovery clears the poison flag and evicts
/// entries whose [`OnceLock`] is still unset: their initialisation may
/// have been unwound mid-flight, and eviction makes the next request
/// rebuild them from scratch.
fn lock_recovering<K: Eq + Hash, T>(map: &Map<K, T>) -> MutexGuard<'_, HashMap<K, Cell<T>>> {
    match map.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            map.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.retain(|_, cell| cell.get().is_some());
            guard
        }
    }
}

/// Fetches (creating if absent) the once-cell for `key`, then fills it
/// with `compute` — run at most once per key process-wide.
fn get_or_init<K: Eq + Hash + Clone, T: Clone>(
    map: &Map<K, T>,
    key: K,
    compute: impl FnOnce() -> T,
) -> T {
    let cell = {
        let mut map = lock_recovering(map);
        Arc::clone(map.entry(key).or_default())
    };
    cell.get_or_init(compute).clone()
}

/// Fallible twin of [`get_or_init`]: an `Err` from `compute` is returned
/// to the caller but **not** cached, so the next request retries.
///
/// The value is computed before the cell is filled; if two threads race
/// on a cold key, the loser's duplicate is discarded by
/// [`OnceLock::get_or_init`] and both return the winner's value, so all
/// callers still converge on one shared entry.
fn try_get_or_init<K: Eq + Hash + Clone, T: Clone>(
    map: &Map<K, T>,
    key: K,
    compute: impl FnOnce() -> Result<T, SpecfetchError>,
) -> Result<T, SpecfetchError> {
    let cell = {
        let mut map = lock_recovering(map);
        Arc::clone(map.entry(key).or_default())
    };
    if let Some(v) = cell.get() {
        return Ok(v.clone());
    }
    let v = compute()?;
    Ok(cell.get_or_init(|| v).clone())
}

fn trace_map() -> &'static Map<Key, Arc<RecordedTrace>> {
    static CACHE: OnceLock<Map<Key, Arc<RecordedTrace>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn predicted_map() -> &'static Map<Key, Arc<PredictedTrace>> {
    static CACHE: OnceLock<Map<Key, Arc<PredictedTrace>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn result_map() -> &'static Map<(Key, SimConfig), SimResult> {
    static CACHE: OnceLock<Map<(Key, SimConfig), SimResult>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Records `bench`'s correct path from the calibrated synthetic model —
/// the ground-truth producer both the in-memory cache and the on-disk
/// cache ([`crate::disk_cache`]) regenerate from.
pub(crate) fn record_fresh(
    bench: &Benchmark,
    instrs: u64,
) -> Result<Arc<RecordedTrace>, SpecfetchError> {
    let workload = bench.workload().map_err(|e| SpecfetchError::Workload {
        bench: bench.name.to_owned(),
        detail: e.to_string(),
    })?;
    let mut live = workload.executor(bench.path_seed());
    Ok(Arc::new(RecordedTrace::record(&mut live, instrs)))
}

/// The shared recording of `bench`'s correct path, capped at `instrs`
/// instructions — loaded from the on-disk cache (if one is configured)
/// or recorded on first request, replayed from memory after.
///
/// # Errors
///
/// Returns [`SpecfetchError::Workload`] if the calibrated spec fails to
/// generate (on-disk cache corruption self-heals and is not an error).
pub fn try_shared_trace(
    bench: &Benchmark,
    instrs: u64,
) -> Result<Arc<RecordedTrace>, SpecfetchError> {
    try_get_or_init(trace_map(), (bench.name, instrs), || {
        crate::disk_cache::load_or_record(bench, instrs)
    })
}

/// Infallible convenience over [`try_shared_trace`].
///
/// # Panics
///
/// Panics if the recording cannot be produced (calibrated specs always
/// generate; a panic here is captured per grid point by the runner).
pub fn shared_trace(bench: &Benchmark, instrs: u64) -> Arc<RecordedTrace> {
    try_shared_trace(bench, instrs)
        .unwrap_or_else(|e| panic!("recording {}/{instrs}: {e}", bench.name))
}

/// A fresh replay cursor over [`shared_trace`]'s recording.
///
/// # Errors
///
/// Propagates [`try_shared_trace`]'s errors.
pub fn try_recorded_source(
    bench: &Benchmark,
    instrs: u64,
) -> Result<RecordedSource, SpecfetchError> {
    Ok(RecordedTrace::source(&try_shared_trace(bench, instrs)?))
}

/// Infallible convenience over [`try_recorded_source`]; panics like
/// [`shared_trace`].
pub fn recorded_source(bench: &Benchmark, instrs: u64) -> RecordedSource {
    RecordedTrace::source(&shared_trace(bench, instrs))
}

/// The shared pre-decoded overlay over [`shared_trace`]'s recording —
/// built on first request, an `Arc` bump after.
///
/// # Errors
///
/// Propagates [`try_shared_trace`]'s errors.
pub fn try_predicted_trace(
    bench: &Benchmark,
    instrs: u64,
) -> Result<Arc<PredictedTrace>, SpecfetchError> {
    try_get_or_init(predicted_map(), (bench.name, instrs), || {
        Ok(Arc::new(PredictedTrace::build(&try_shared_trace(bench, instrs)?)))
    })
}

/// Infallible convenience over [`try_predicted_trace`]; panics like
/// [`shared_trace`].
pub fn predicted_trace(bench: &Benchmark, instrs: u64) -> Arc<PredictedTrace> {
    try_predicted_trace(bench, instrs)
        .unwrap_or_else(|e| panic!("overlay for {}/{instrs}: {e}", bench.name))
}

/// A fresh replay cursor over [`predicted_trace`]'s overlay.
///
/// # Errors
///
/// Propagates [`try_shared_trace`]'s errors.
pub fn try_predicted_source(
    bench: &Benchmark,
    instrs: u64,
) -> Result<PredictedSource, SpecfetchError> {
    Ok(PredictedTrace::source(&try_predicted_trace(bench, instrs)?))
}

/// Infallible convenience over [`try_predicted_source`]; panics like
/// [`shared_trace`].
pub fn predicted_source(bench: &Benchmark, instrs: u64) -> PredictedSource {
    PredictedTrace::source(&predicted_trace(bench, instrs))
}

/// The finished result of simulating `bench` for `instrs` instructions
/// under `cfg` — computed by `run` at most once process-wide (the engine
/// is deterministic, so every revisit of the same grid point is a clone).
///
/// `run` must be infallible: acquire the replay source *before* calling
/// this (via [`try_predicted_source`] / [`try_recorded_source`]) so
/// trace failures propagate as errors instead of panicking inside the
/// memo cell.
pub fn memoized_result(
    bench: &Benchmark,
    instrs: u64,
    cfg: SimConfig,
    run: impl FnOnce() -> SimResult,
) -> SimResult {
    get_or_init(result_map(), ((bench.name, instrs), cfg), run)
}

/// Peeks the result memo without computing: `Some` iff the grid point has
/// already finished process-wide. The lockstep scheduler uses this to
/// skip memo-hit configurations before assembling a batch.
pub(crate) fn cached_result(bench: &Benchmark, instrs: u64, cfg: SimConfig) -> Option<SimResult> {
    let map = lock_recovering(result_map());
    map.get(&((bench.name, instrs), cfg)).and_then(|cell| cell.get().cloned())
}

/// Stores a finished result into the memo (the lockstep batch computes
/// results outside [`memoized_result`]'s closure). If another thread
/// finished the same point first, the engine's determinism makes both
/// values equal and the existing entry wins.
pub(crate) fn store_result(bench: &Benchmark, instrs: u64, cfg: SimConfig, result: SimResult) {
    get_or_init(result_map(), ((bench.name, instrs), cfg), move || result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::Simulator;
    use specfetch_trace::PathSource;

    #[test]
    fn same_window_is_recorded_once() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_234);
        let c = shared_trace(b, 1_234);
        assert!(Arc::ptr_eq(&a, &c), "second request must reuse the recording");
        assert_eq!(a.len(), 1_234);
    }

    #[test]
    fn windows_are_distinct_entries() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_111);
        let c = shared_trace(b, 2_222);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 2_222);
    }

    #[test]
    fn fallible_and_infallible_paths_share_one_entry() {
        let b = Benchmark::by_name("gcc").unwrap();
        let a = try_shared_trace(b, 1_357).unwrap();
        let c = shared_trace(b, 1_357);
        assert!(Arc::ptr_eq(&a, &c));
        let p = try_predicted_trace(b, 1_357).unwrap();
        assert!(Arc::ptr_eq(&p, &predicted_trace(b, 1_357)));
    }

    #[test]
    fn replay_matches_the_live_interpreter() {
        let b = Benchmark::by_name("tex").unwrap();
        let w = b.workload().unwrap();
        let mut live = w.executor(b.path_seed()).take_instrs(5_000);
        let mut replay = recorded_source(b, 5_000);
        loop {
            let (x, y) = (live.next_instr(), replay.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn concurrent_cold_requests_converge() {
        let b = Benchmark::by_name("groff").unwrap();
        let traces = crate::par_map(vec![(); 8], true, |()| shared_trace(b, 3_000));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }

    #[test]
    fn overlay_is_built_once_over_the_shared_recording() {
        let b = Benchmark::by_name("cfront").unwrap();
        let a = predicted_trace(b, 2_345);
        let c = predicted_trace(b, 2_345);
        assert!(Arc::ptr_eq(&a, &c), "second request must reuse the overlay");
        assert!(Arc::ptr_eq(a.base(), &shared_trace(b, 2_345)), "overlay wraps the shared trace");
        assert_eq!(a.len(), 2_345);
    }

    #[test]
    fn predicted_replay_matches_the_recorded_replay() {
        let b = Benchmark::by_name("ditroff").unwrap();
        let mut rec = recorded_source(b, 4_000);
        let mut pre = predicted_source(b, 4_000);
        loop {
            let (x, y) = (rec.next_instr(), pre.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn memo_runs_once_per_grid_point() {
        let b = Benchmark::by_name("idl").unwrap();
        let cfg = SimConfig::paper_baseline();
        let mut runs = 0;
        let a = memoized_result(b, 6_000, cfg, || {
            runs += 1;
            Simulator::new(cfg).run(predicted_source(b, 6_000))
        });
        let c = memoized_result(b, 6_000, cfg, || unreachable!("memo hit must not re-run"));
        assert_eq!(runs, 1);
        assert_eq!(a, c);

        // A different config is a different point.
        let mut cfg2 = cfg;
        cfg2.miss_penalty += 1;
        let d = memoized_result(b, 6_000, cfg2, || {
            Simulator::new(cfg2).run(predicted_source(b, 6_000))
        });
        assert_ne!(a.cycles, d.cycles, "longer penalty must cost cycles");
    }

    #[test]
    fn poisoned_lock_recovers_and_evicts_inflight_cells() {
        let map: Map<&'static str, u32> = Mutex::new(HashMap::new());

        // One finished entry, one whose initialisation is "in flight"
        // (cell present but unset) when the poisoning panic hits.
        {
            let mut g = map.lock().unwrap();
            let done: Cell<u32> = Arc::default();
            done.set(7).unwrap();
            g.insert("done", done);
            g.insert("inflight", Arc::default());
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = map.lock().unwrap();
            panic!("poison the cache lock");
        }));
        assert!(map.is_poisoned(), "the panic above must have poisoned the lock");

        let g = lock_recovering(&map);
        assert_eq!(
            g.get("done").and_then(|c| c.get().copied()),
            Some(7),
            "finished entries survive"
        );
        assert!(!g.contains_key("inflight"), "in-flight entries are evicted for rebuild");
        drop(g);
        assert!(!map.is_poisoned(), "recovery clears the poison flag");

        // The evicted key rebuilds cleanly on the next request.
        assert_eq!(get_or_init(&map, "inflight", || 42), 42);
        assert_eq!(get_or_init(&map, "done", || unreachable!("cached")), 7);
    }

    #[test]
    fn errors_are_not_cached_and_later_success_is() {
        let map: Map<&'static str, u32> = Mutex::new(HashMap::new());
        let e = try_get_or_init(&map, "k", || Err(SpecfetchError::Injected { action: "err" }))
            .unwrap_err();
        assert!(matches!(e, SpecfetchError::Injected { .. }));

        // The failure did not wedge the cell: the retry computes, and the
        // third call is a cache hit.
        assert_eq!(try_get_or_init(&map, "k", || Ok(9)).unwrap(), 9);
        assert_eq!(try_get_or_init(&map, "k", || unreachable!("cached")).unwrap(), 9);
    }
}
