//! Process-wide record-once / replay-many cache of benchmark recordings.
//!
//! The full reproduction is a cross-product of configurations over the
//! same 13 correct paths: every cell of every table replays the identical
//! instruction stream under a different front-end. This cache interprets
//! each calibrated workload **once per (benchmark, instruction window)**
//! and hands every subsequent run a [`RecordedSource`] over the shared
//! [`RecordedTrace`] — an `Arc` bump instead of a fresh behavioural
//! interpretation, with the static [`Program`](specfetch_isa::Program)
//! image shared all the way into the engine.
//!
//! Concurrency: the map is guarded by one mutex held only for key lookup;
//! each entry is a [`OnceLock`], so parallel workers that race on a cold
//! benchmark block on the single recording instead of duplicating it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use specfetch_synth::suite::Benchmark;
use specfetch_trace::{RecordedSource, RecordedTrace};

type Key = (&'static str, u64);
type Cell = Arc<OnceLock<Arc<RecordedTrace>>>;

fn cache() -> &'static Mutex<HashMap<Key, Cell>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Cell>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared recording of `bench`'s correct path, capped at `instrs`
/// instructions — recorded on first request, replayed from memory after.
pub fn shared_trace(bench: &Benchmark, instrs: u64) -> Arc<RecordedTrace> {
    let cell = {
        let mut map = cache().lock().expect("no code panics while holding the cache lock");
        Arc::clone(map.entry((bench.name, instrs)).or_default())
    };
    Arc::clone(cell.get_or_init(|| {
        let workload = bench.workload().expect("calibrated specs always generate");
        let mut live = workload.executor(bench.path_seed());
        Arc::new(RecordedTrace::record(&mut live, instrs))
    }))
}

/// A fresh replay cursor over [`shared_trace`]'s recording.
pub fn recorded_source(bench: &Benchmark, instrs: u64) -> RecordedSource {
    RecordedTrace::source(&shared_trace(bench, instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_trace::PathSource;

    #[test]
    fn same_window_is_recorded_once() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_234);
        let c = shared_trace(b, 1_234);
        assert!(Arc::ptr_eq(&a, &c), "second request must reuse the recording");
        assert_eq!(a.len(), 1_234);
    }

    #[test]
    fn windows_are_distinct_entries() {
        let b = Benchmark::by_name("li").unwrap();
        let a = shared_trace(b, 1_111);
        let c = shared_trace(b, 2_222);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 2_222);
    }

    #[test]
    fn replay_matches_the_live_interpreter() {
        let b = Benchmark::by_name("tex").unwrap();
        let w = b.workload().unwrap();
        let mut live = w.executor(b.path_seed()).take_instrs(5_000);
        let mut replay = recorded_source(b, 5_000);
        loop {
            let (x, y) = (live.next_instr(), replay.next_instr());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn concurrent_cold_requests_converge() {
        let b = Benchmark::by_name("groff").unwrap();
        let traces = crate::par_map(vec![(); 8], true, |()| shared_trace(b, 3_000));
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }
}
