//! Wire and store encodings shared by the on-disk result store and the
//! multi-process worker protocol — zero-dependency, deterministic, and
//! strict in both directions.
//!
//! Two layers:
//!
//! - [`encode_result`]/[`decode_result`] render a full [`SimResult`] as
//!   one space-separated `key=value` line (every value an integer or a
//!   policy token — no quoting needed). The field walk destructures the
//!   struct exhaustively, so adding a measurement field is a compile
//!   error here until the codec learns it; decoding requires every field
//!   exactly once, so a truncated or stale line can never half-fill a
//!   result.
//! - [`json_escape`]/[`json_string_field`]/[`json_u64_field`] are the
//!   minimal flat-JSON helpers the worker protocol's one-object-per-line
//!   pipe format needs (arbitrary panic messages cross the pipe, so
//!   strings are properly escaped both ways).

use specfetch_bpred::BpredStats;
use specfetch_cache::CacheStats;
use specfetch_core::{FetchPolicy, IspiBreakdown, MissClass, SimResult, SpecfetchError};

fn bad(detail: String) -> SpecfetchError {
    SpecfetchError::InvalidSpec { detail }
}

/// Renders a [`SimResult`] as one deterministic `key=value` line.
pub fn encode_result(r: &SimResult) -> String {
    // Exhaustive destructuring: a new field anywhere below fails to
    // compile until both directions of the codec handle it.
    let SimResult {
        policy,
        correct_instrs,
        cycles,
        issue_width,
        lost: IspiBreakdown { branch_full, branch, force_resolve, rt_icache, wrong_icache, bus },
        pht_mispredict_slots,
        btb_misfetch_slots,
        btb_mispredict_slots,
        misfetches,
        mispredicts,
        target_mispredicts,
        cache_correct,
        cache_wrong,
        bpred:
            BpredStats {
                cond_resolved,
                cond_mispredicted,
                btb_lookups,
                btb_hits,
                returns_resolved,
                returns_mispredicted,
                indirects_resolved,
                indirects_mispredicted,
            },
        traffic_demand_correct,
        traffic_demand_wrong,
        traffic_prefetch,
        traffic_target_prefetch,
        classification,
        prefetches_issued,
        prefetch_hits,
    } = r;
    let cache = |tag: &str, s: &CacheStats| {
        format!("{tag}.acc={} {tag}.miss={} {tag}.fill={}", s.accesses, s.misses, s.fills)
    };
    let mut out = format!(
        "policy={} instrs={correct_instrs} cycles={cycles} width={issue_width} \
         lost.bfull={branch_full} lost.branch={branch} lost.fres={force_resolve} \
         lost.rti={rt_icache} lost.wi={wrong_icache} lost.bus={bus} \
         pht.slots={pht_mispredict_slots} btbmf.slots={btb_misfetch_slots} \
         btbmp.slots={btb_mispredict_slots} misfetches={misfetches} \
         mispredicts={mispredicts} tgt.mispredicts={target_mispredicts} \
         {} {} \
         bp.cres={cond_resolved} bp.cmis={cond_mispredicted} bp.blook={btb_lookups} \
         bp.bhit={btb_hits} bp.rres={returns_resolved} bp.rmis={returns_mispredicted} \
         bp.ires={indirects_resolved} bp.imis={indirects_mispredicted} \
         tr.dc={traffic_demand_correct} tr.dw={traffic_demand_wrong} \
         tr.pf={traffic_prefetch} tr.tpf={traffic_target_prefetch} \
         pf.issued={prefetches_issued} pf.hits={prefetch_hits}",
        policy.short_name(),
        cache("cc", cache_correct),
        cache("cw", cache_wrong),
    );
    match classification {
        None => out.push_str(" class=0"),
        Some(MissClass {
            both_miss,
            spec_pollute,
            spec_prefetch,
            wrong_path,
            correct_accesses,
        }) => {
            out.push_str(&format!(
                " class=1 cl.bm={both_miss} cl.spo={spec_pollute} cl.spr={spec_prefetch} \
                 cl.wp={wrong_path} cl.acc={correct_accesses}"
            ));
        }
    }
    out
}

/// Parses an [`encode_result`] line back into a [`SimResult`].
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] for any malformed term, unknown or
/// duplicate key, or a line missing any field of the result.
pub fn decode_result(s: &str) -> Result<SimResult, SpecfetchError> {
    let mut policy: Option<FetchPolicy> = None;
    let mut ints: Vec<(&str, u64)> = Vec::with_capacity(40);
    let mut classify_present: Option<bool> = None;
    for term in s.split_ascii_whitespace() {
        let (key, value) = term
            .split_once('=')
            .ok_or_else(|| bad(format!("bad result term {term:?} (expected key=value)")))?;
        match key {
            "policy" => {
                if policy.is_some() {
                    return Err(bad("duplicate result key \"policy\"".to_owned()));
                }
                policy = Some(
                    FetchPolicy::parse(value)
                        .ok_or_else(|| bad(format!("unknown policy {value:?}")))?,
                );
            }
            "class" => {
                if classify_present.is_some() {
                    return Err(bad("duplicate result key \"class\"".to_owned()));
                }
                classify_present = Some(match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(bad(format!("bad class flag {other:?}"))),
                });
            }
            _ => {
                if ints.iter().any(|&(k, _)| k == key) {
                    return Err(bad(format!("duplicate result key {key:?}")));
                }
                let v = value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("bad integer {value:?} for key {key:?}")))?;
                ints.push((key, v));
            }
        }
    }
    let mut taken = 0usize;
    let mut take = |key: &str| -> Result<u64, SpecfetchError> {
        match ints.iter().find(|&&(k, _)| k == key) {
            Some(&(_, v)) => {
                taken += 1;
                Ok(v)
            }
            None => Err(bad(format!("result line is missing key {key:?}"))),
        }
    };
    let classification = match classify_present {
        None => return Err(bad("result line is missing key \"class\"".to_owned())),
        Some(false) => None,
        Some(true) => Some(MissClass {
            both_miss: take("cl.bm")?,
            spec_pollute: take("cl.spo")?,
            spec_prefetch: take("cl.spr")?,
            wrong_path: take("cl.wp")?,
            correct_accesses: take("cl.acc")?,
        }),
    };
    let result = SimResult {
        policy: policy.ok_or_else(|| bad("result line is missing key \"policy\"".to_owned()))?,
        correct_instrs: take("instrs")?,
        cycles: take("cycles")?,
        issue_width: take("width")? as u32,
        lost: IspiBreakdown {
            branch_full: take("lost.bfull")?,
            branch: take("lost.branch")?,
            force_resolve: take("lost.fres")?,
            rt_icache: take("lost.rti")?,
            wrong_icache: take("lost.wi")?,
            bus: take("lost.bus")?,
        },
        pht_mispredict_slots: take("pht.slots")?,
        btb_misfetch_slots: take("btbmf.slots")?,
        btb_mispredict_slots: take("btbmp.slots")?,
        misfetches: take("misfetches")?,
        mispredicts: take("mispredicts")?,
        target_mispredicts: take("tgt.mispredicts")?,
        cache_correct: CacheStats {
            accesses: take("cc.acc")?,
            misses: take("cc.miss")?,
            fills: take("cc.fill")?,
        },
        cache_wrong: CacheStats {
            accesses: take("cw.acc")?,
            misses: take("cw.miss")?,
            fills: take("cw.fill")?,
        },
        bpred: BpredStats {
            cond_resolved: take("bp.cres")?,
            cond_mispredicted: take("bp.cmis")?,
            btb_lookups: take("bp.blook")?,
            btb_hits: take("bp.bhit")?,
            returns_resolved: take("bp.rres")?,
            returns_mispredicted: take("bp.rmis")?,
            indirects_resolved: take("bp.ires")?,
            indirects_mispredicted: take("bp.imis")?,
        },
        traffic_demand_correct: take("tr.dc")?,
        traffic_demand_wrong: take("tr.dw")?,
        traffic_prefetch: take("tr.pf")?,
        traffic_target_prefetch: take("tr.tpf")?,
        classification,
        prefetches_issued: take("pf.issued")?,
        prefetch_hits: take("pf.hits")?,
    };
    // Strictness both ways: no unknown integer keys either.
    if taken != ints.len() {
        let unknown: Vec<&str> = ints
            .iter()
            .map(|&(k, _)| k)
            .filter(|k| {
                // Re-run the known-key check cheaply: a key is unknown if
                // a decode of just that key would fail. The classification
                // keys are known only when class=1 consumed them.
                !KNOWN_INT_KEYS.contains(k) || (classification.is_none() && k.starts_with("cl."))
            })
            .collect();
        return Err(bad(format!("result line has unknown keys {unknown:?}")));
    }
    Ok(result)
}

/// Every integer key [`decode_result`] understands (the classification
/// keys are consumed only when `class=1`).
const KNOWN_INT_KEYS: [&str; 38] = [
    "instrs",
    "cycles",
    "width",
    "lost.bfull",
    "lost.branch",
    "lost.fres",
    "lost.rti",
    "lost.wi",
    "lost.bus",
    "pht.slots",
    "btbmf.slots",
    "btbmp.slots",
    "misfetches",
    "mispredicts",
    "tgt.mispredicts",
    "cc.acc",
    "cc.miss",
    "cc.fill",
    "cw.acc",
    "cw.miss",
    "cw.fill",
    "bp.cres",
    "bp.cmis",
    "bp.blook",
    "bp.bhit",
    "bp.rres",
    "bp.rmis",
    "bp.ires",
    "bp.imis",
    "tr.dc",
    "tr.dw",
    "tr.pf",
    "tr.tpf",
    "pf.issued",
    "pf.hits",
    "cl.bm",
    "cl.spo",
    "cl.spr",
];

/// Escapes a string for embedding in a JSON double-quoted literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extracts string field `key` from one flat JSON object line, handling
/// escapes. Only speaks the protocol's own one-object-per-line format.
pub fn json_string_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    // Find the closing quote, skipping escaped characters.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    json_unescape(&rest[..end?])
}

/// Extracts unsigned-integer field `key` from one flat JSON object line.
pub fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest.find([',', '}', ' ']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::{SimConfig, Simulator};
    use specfetch_synth::suite::Benchmark;
    use specfetch_trace::PathSource;

    fn real_result(classify: bool) -> SimResult {
        let b = Benchmark::by_name("li").unwrap();
        let mut cfg = SimConfig::paper_baseline();
        cfg.classify = classify;
        cfg.prefetch = classify; // vary more fields through the codec
        let w = b.workload().unwrap();
        Simulator::new(cfg).run(w.executor(b.path_seed()).take_instrs(5_000))
    }

    #[test]
    fn result_round_trips_with_and_without_classification() {
        for classify in [false, true] {
            let r = real_result(classify);
            assert_eq!(r.classification.is_some(), classify);
            let line = encode_result(&r);
            let back = decode_result(&line).unwrap();
            assert_eq!(back, r, "round trip diverged for {line:?}");
        }
    }

    #[test]
    fn decode_rejects_missing_and_unknown_keys() {
        let line = encode_result(&real_result(false));
        // Drop one field.
        let missing: String = line
            .split_ascii_whitespace()
            .filter(|t| !t.starts_with("cycles="))
            .collect::<Vec<_>>()
            .join(" ");
        assert!(decode_result(&missing).is_err());
        // Add an unknown field.
        let unknown = format!("{line} bogus=7");
        assert!(decode_result(&unknown).is_err());
        // Duplicate a field.
        let dup = format!("{line} cycles=1");
        assert!(decode_result(&dup).is_err());
        // Classification keys without class=1 are unknown.
        let stray = format!("{line} cl.bm=1");
        assert!(decode_result(&stray).is_err());
    }

    #[test]
    fn decode_rejects_malformed_terms() {
        for bad in ["x", "policy=Zap", "cycles=abc", "class=7"] {
            assert!(decode_result(bad).is_err(), "{bad:?} unexpectedly parsed");
        }
    }

    #[test]
    fn json_escape_round_trips_hostile_strings() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab",
            "control\u{1}char",
            "unicode ☃ snowman",
            "",
        ] {
            let line = format!("{{\"msg\":\"{}\"}}", json_escape(s));
            assert_eq!(json_string_field(&line, "msg").as_deref(), Some(s), "via {line:?}");
        }
    }

    #[test]
    fn json_field_extraction() {
        let line = "{\"kind\":\"point\",\"gid\":12,\"idx\":3,\"cfg\":\"v=1 policy=Res\"}";
        assert_eq!(json_string_field(line, "kind").as_deref(), Some("point"));
        assert_eq!(json_u64_field(line, "gid"), Some(12));
        assert_eq!(json_u64_field(line, "idx"), Some(3));
        assert_eq!(json_string_field(line, "cfg").as_deref(), Some("v=1 policy=Res"));
        assert_eq!(json_string_field(line, "nope"), None);
        assert_eq!(json_u64_field(line, "kind"), None);
    }
}
