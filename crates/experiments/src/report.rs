//! The rendered output of one experiment.

use crate::{Format, Table};

/// One regenerated paper artifact: an identifier, a human title, the data
/// table, and explanatory notes (what shape to expect vs. the paper).
#[derive(Clone, PartialEq, Debug)]
pub struct ExperimentReport {
    /// Stable identifier (`"table4"`, `"figure1"`, ...).
    pub id: &'static str,
    /// Human-readable title quoting the paper artifact.
    pub title: String,
    /// The measured (and paper-reference) data.
    pub table: Table,
    /// Free-form notes: expected shape, caveats, substitutions.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Number of `FAILED(...)` cells in the report's table — zero for a
    /// fully successful run.
    pub fn failed_cells(&self) -> usize {
        self.table.failed_cells()
    }

    /// Renders the full report (title, table, notes).
    pub fn render(&self, format: Format) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n\n", self.id, self.title));
        out.push_str(&self.table.render(format));
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("note: {n}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_parts() {
        let mut table = Table::new(["a"]);
        table.row(vec!["1".into()]);
        let r = ExperimentReport {
            id: "table0",
            title: "Demo".into(),
            table,
            notes: vec!["hello".into()],
        };
        let s = r.render(Format::Plain);
        assert!(s.contains("table0"));
        assert!(s.contains("Demo"));
        assert!(s.contains("note: hello"));
    }
}
