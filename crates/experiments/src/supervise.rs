//! Supervision state shared by the runner, the worker pool, and the
//! CLI: the graceful-shutdown flag, outcome counters for the partial
//! summary, and the seeded retry backoff (DESIGN §5j).
//!
//! Signal *handlers* live in `bin/repro.rs` (the tidy signal-confinement
//! rule keeps handler installation out of library code); they call
//! [`request_shutdown`], and everything under the runner polls
//! [`shutdown_requested`] at point and group boundaries. The first
//! request drains: in-flight points finish, pending points are recorded
//! as `interrupted` (never negatively cached), stores and journal are
//! flushed, and the CLI exits 130.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// How many shutdown requests have been received. `0` = run normally;
/// `1` = drain and exit 130; the CLI escalates a second request to an
/// immediate abort before this counter is ever read again.
static SHUTDOWN_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// Grid cells that finished OK since process start.
static COMPLETED: AtomicU64 = AtomicU64::new(0);
/// Grid cells that ended in a terminal `FAILED(...)`.
static FAILED: AtomicU64 = AtomicU64::new(0);
/// Grid cells skipped or unwound by a shutdown request.
static INTERRUPTED: AtomicU64 = AtomicU64::new(0);

/// Records a shutdown request (signal-handler-safe: one atomic store).
/// Returns the number of requests *including* this one, so the caller
/// can escalate on the second.
pub fn request_shutdown() -> u64 {
    SHUTDOWN_REQUESTS.fetch_add(1, Ordering::SeqCst) + 1
}

/// Whether a graceful shutdown has been requested. Polled by the runner
/// at group/point boundaries and by cooperative waits.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTS.load(Ordering::SeqCst) > 0
}

/// Jobs cancelled individually (`DELETE /jobs/<id>`), as opposed to the
/// process-wide shutdown above. Grow-only: a cancelled job id stays
/// cancelled for the life of the process, which keeps the check a plain
/// membership test with no re-arm races.
fn cancelled_jobs() -> &'static Mutex<Vec<u64>> {
    static CANCELLED: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();
    CANCELLED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Cancels one job: every grid running under `job` drains with the
/// Interrupted semantics of a process-wide shutdown (in-flight points
/// finish, pending points are journaled `interrupted`, nothing is
/// negatively cached), while other jobs keep running.
pub fn cancel_job(job: u64) {
    let mut cancelled = match cancelled_jobs().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !cancelled.contains(&job) {
        cancelled.push(job);
    }
}

/// Whether `job` must stop: either the whole process is shutting down
/// or this job was cancelled individually. Polled by the runner at
/// group/point boundaries in place of the bare [`shutdown_requested`].
pub fn job_shutdown_requested(job: u64) -> bool {
    if shutdown_requested() {
        return true;
    }
    let cancelled = match cancelled_jobs().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    cancelled.contains(&job)
}

/// Tallies one grid's outcomes into the process-wide counters the
/// partial summary prints.
pub(crate) fn note_outcomes(completed: u64, failed: u64, interrupted: u64) {
    COMPLETED.fetch_add(completed, Ordering::Relaxed);
    FAILED.fetch_add(failed, Ordering::Relaxed);
    INTERRUPTED.fetch_add(interrupted, Ordering::Relaxed);
}

/// `(completed, failed, interrupted)` cell counts since process start —
/// the partial summary a drained shutdown prints.
pub fn outcome_counts() -> (u64, u64, u64) {
    (
        COMPLETED.load(Ordering::Relaxed),
        FAILED.load(Ordering::Relaxed),
        INTERRUPTED.load(Ordering::Relaxed),
    )
}

/// The delay before retry pass `attempt` (1-based): seeded exponential
/// backoff with deterministic jitter, so reruns reproduce byte-for-byte
/// *and* sleep the same amount. `base_ms` doubles per attempt
/// (saturating) and the jitter adds up to 25% more, derived from an
/// FNV-1a hash of `(attempt, points)` — no wall clock, no RNG state.
pub(crate) fn backoff_delay(attempt: u32, base_ms: u64, points: u64) -> Duration {
    if base_ms == 0 {
        return Duration::ZERO;
    }
    let exp = base_ms.saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(0));
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in attempt.to_le_bytes().iter().chain(points.to_le_bytes().iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let jitter = if exp == 0 { 0 } else { h % (exp / 4).max(1) };
    Duration::from_millis(exp.saturating_add(jitter))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let d1 = backoff_delay(1, 100, 7);
        let d2 = backoff_delay(2, 100, 7);
        let d3 = backoff_delay(3, 100, 7);
        assert_eq!(d1, backoff_delay(1, 100, 7), "same inputs, same delay");
        assert!(d2 >= d1 && d3 >= d2, "delays must not shrink: {d1:?} {d2:?} {d3:?}");
        assert!(d1 >= Duration::from_millis(100) && d1 <= Duration::from_millis(125));
        assert!(d3 >= Duration::from_millis(400) && d3 <= Duration::from_millis(500));
    }

    #[test]
    fn zero_base_disables_backoff() {
        assert_eq!(backoff_delay(5, 0, 3), Duration::ZERO);
    }

    #[test]
    fn jitter_depends_on_the_grid() {
        let delays: Vec<_> = (0..16).map(|pts| backoff_delay(1, 1000, pts)).collect();
        let distinct = delays.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 1, "jitter should vary with the grid: {delays:?}");
    }

    #[test]
    fn job_cancellation_is_per_job_and_sticky() {
        // Ids chosen to stay clear of other tests: cancellation is
        // process-wide and grow-only.
        assert!(!job_shutdown_requested(0xDEAD_0001));
        cancel_job(0xDEAD_0001);
        cancel_job(0xDEAD_0001); // idempotent
        assert!(job_shutdown_requested(0xDEAD_0001));
        assert!(!job_shutdown_requested(0xDEAD_0002), "other jobs keep running");
    }

    #[test]
    fn outcome_counters_accumulate() {
        let (c0, f0, i0) = outcome_counts();
        note_outcomes(2, 1, 3);
        let (c, f, i) = outcome_counts();
        assert_eq!((c - c0, f - f0, i - i0), (2, 1, 3));
    }
}
