//! Persistent, self-healing store of finished [`SimResult`]s.
//!
//! `--result-dir <dir>` keys every simulated grid point by **schema
//! version + benchmark + window length + canonical config hash** and
//! persists it as one small checksummed text file, so a later process —
//! a resumed sweep, a warm re-run, or a sibling worker — renders the row
//! instead of recomputing it. The canonical config encoding lives in
//! `specfetch_core::canon` (`SimConfig::canonical_hash`), which is
//! stable across processes and compile sessions, unlike `std::hash`.
//!
//! Layout: `<dir>/v1/<bench>-<instrs>-<confighash:016x>.sr`. Bumping
//! either [`specfetch_core::CANON_VERSION`] (config encoding) or
//! [`FORMAT_VERSION`] (file format) strands old entries harmlessly —
//! the `v1` path segment and the header line both change, so stale
//! results are never *read*, merely ignored.
//!
//! The store follows the same trust model as the SFTB trace cache
//! ([`crate::disk_cache`]): every load is verified end to end (header,
//! full canonical config match — not just the hash — result decode,
//! FNV-1a footer checksum) and any failure quarantines the file
//! (`*.quarantined`) and reports a miss, so a corrupt entry costs one
//! warning and one recompute, never a wrong number or a failed cell.
//! Writes go through a per-process unique temp file + atomic rename:
//! two processes racing on one key both land a complete, valid file,
//! and readers never observe a half-written entry. Failure to write
//! (read-only dir, disk full) is a warning — persistence is an
//! optimisation, and the result is already in hand.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use specfetch_core::{fnv1a, SimConfig, SimResult, SpecfetchError};

use crate::codec::{decode_result, encode_result, json_escape, json_unescape};

/// Version of the store's file format (header line + path segment).
pub const FORMAT_VERSION: u32 = 1;

/// What the store remembers about a grid point: a finished result, or —
/// the negative cache (DESIGN §5j) — a *terminal* failure whose reason
/// replays verbatim as `FAILED(...)` so resumed sweeps skip known-bad
/// points. Interrupted points are never stored; `--retry-failed` makes
/// readers ignore `Failed` entries (a later success overwrites them).
#[derive(Clone, PartialEq, Debug)]
#[allow(clippy::large_enum_variant)] // transient return value, matched immediately
pub enum StoredOutcome {
    /// The point completed with this result.
    Completed(SimResult),
    /// The point failed terminally (retries exhausted) with this reason.
    Failed(String),
}

static DIR: OnceLock<PathBuf> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);

/// Enables the result store, rooted at `dir` (created on first store).
/// Called once by the CLI (`--result-dir`) before any experiment runs.
///
/// # Errors
///
/// [`SpecfetchError::InvalidSpec`] if a store directory is already
/// configured.
pub fn set_dir(dir: PathBuf) -> Result<(), SpecfetchError> {
    DIR.set(dir).map_err(|d| SpecfetchError::InvalidSpec {
        detail: format!("result store directory already set to {}", d.display()),
    })
}

/// The configured store root, if `--result-dir` was given.
pub fn dir() -> Option<&'static Path> {
    DIR.get().map(PathBuf::as_path)
}

/// Lifetime `(hits, stores)` counters for this process — the CLI prints
/// them so resume tests can assert "no completed point reruns".
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), STORES.load(Ordering::Relaxed))
}

fn entry_path(dir: &Path, bench: &str, instrs: u64, cfg: &SimConfig) -> PathBuf {
    dir.join(format!("v{FORMAT_VERSION}"))
        .join(format!("{bench}-{instrs}-{:016x}.sr", cfg.canonical_hash()))
}

/// Looks up the stored outcome for one grid point. `None` when the
/// store is not configured, the entry is absent, or it failed
/// verification (in which case it has been quarantined and the caller
/// recomputes).
pub(crate) fn get(bench: &str, instrs: u64, cfg: &SimConfig) -> Option<StoredOutcome> {
    let dir = DIR.get()?;
    get_in(dir, bench, instrs, cfg)
}

/// Persists the result for one grid point (no-op unless configured).
pub(crate) fn put(bench: &str, instrs: u64, cfg: &SimConfig, result: &SimResult) {
    if let Some(dir) = DIR.get() {
        put_in(dir, bench, instrs, cfg, result);
    }
}

/// Persists a terminal failure for one grid point (no-op unless
/// configured) — the negative cache.
pub(crate) fn put_failed(bench: &str, instrs: u64, cfg: &SimConfig, reason: &str) {
    if let Some(dir) = DIR.get() {
        put_failed_in(dir, bench, instrs, cfg, reason);
    }
}

/// [`get`] with an explicit root, so tests drive the disk paths without
/// touching the process-wide configuration.
pub fn get_in(dir: &Path, bench: &str, instrs: u64, cfg: &SimConfig) -> Option<StoredOutcome> {
    let path = entry_path(dir, bench, instrs, cfg);
    if !path.exists() {
        return None;
    }
    match load(&path, cfg) {
        Ok(r) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            Some(r)
        }
        Err(e) => {
            quarantine(&path, &e.to_string());
            None
        }
    }
}

/// [`put`] with an explicit root (see [`get_in`]).
pub fn put_in(dir: &Path, bench: &str, instrs: u64, cfg: &SimConfig, result: &SimResult) {
    write_entry(dir, bench, instrs, cfg, &render(cfg, result));
}

/// [`put_failed`] with an explicit root (see [`get_in`]).
pub fn put_failed_in(dir: &Path, bench: &str, instrs: u64, cfg: &SimConfig, reason: &str) {
    write_entry(dir, bench, instrs, cfg, &render_failed(cfg, reason));
}

fn write_entry(dir: &Path, bench: &str, instrs: u64, cfg: &SimConfig, text: &str) {
    let path = entry_path(dir, bench, instrs, cfg);
    if let Err(e) = store(&path, text) {
        eprintln!(
            "specfetch: warning: could not persist result {}: {e} (continuing unstored)",
            path.display()
        );
    } else {
        STORES.fetch_add(1, Ordering::Relaxed);
    }
}

fn seal(body: String) -> String {
    format!("{body}checksum={:016x}\n", fnv1a(body.as_bytes()))
}

fn render(cfg: &SimConfig, result: &SimResult) -> String {
    seal(format!(
        "specfetch-result/{FORMAT_VERSION}\ncfg={}\nresult={}\n",
        cfg.canonical_string(),
        encode_result(result)
    ))
}

fn render_failed(cfg: &SimConfig, reason: &str) -> String {
    seal(format!(
        "specfetch-result/{FORMAT_VERSION}\ncfg={}\nfailed={}\n",
        cfg.canonical_string(),
        json_escape(reason)
    ))
}

fn corrupt(path: &Path, detail: impl Into<String>) -> SpecfetchError {
    SpecfetchError::CorruptTrace { path: path.to_path_buf(), detail: detail.into() }
}

/// Reads and fully verifies one store entry. Any structural problem —
/// unreadable file, bad header, checksum mismatch, config mismatch
/// (hash collision or a renamed file), or an undecodable result — is a
/// [`SpecfetchError::CorruptTrace`].
fn load(path: &Path, cfg: &SimConfig) -> Result<StoredOutcome, SpecfetchError> {
    let text = std::fs::read_to_string(path).map_err(|source| SpecfetchError::Io {
        context: format!("opening result store entry {}", path.display()),
        source,
    })?;
    let (body, footer) =
        text.rsplit_once("checksum=").ok_or_else(|| corrupt(path, "missing checksum footer"))?;
    let want = footer.trim_end_matches('\n').trim();
    let got = format!("{:016x}", fnv1a(body.as_bytes()));
    if want != got {
        return Err(corrupt(path, format!("checksum mismatch (footer {want}, computed {got})")));
    }
    let mut lines = body.lines();
    let header = lines.next().unwrap_or_default();
    let expect_header = format!("specfetch-result/{FORMAT_VERSION}");
    if header != expect_header {
        return Err(corrupt(path, format!("bad header {header:?}, expected {expect_header:?}")));
    }
    let cfg_line = lines
        .next()
        .and_then(|l| l.strip_prefix("cfg="))
        .ok_or_else(|| corrupt(path, "missing cfg line"))?;
    // Compare the full canonical string, not just the hash the filename
    // encodes: this catches hash collisions and hand-renamed files.
    if cfg_line != cfg.canonical_string() {
        return Err(corrupt(path, "stored config does not match the requested grid point"));
    }
    let outcome_line = lines.next().ok_or_else(|| corrupt(path, "missing result line"))?;
    if lines.next().is_some() {
        return Err(corrupt(path, "trailing data after result line"));
    }
    if let Some(result_line) = outcome_line.strip_prefix("result=") {
        return decode_result(result_line)
            .map(StoredOutcome::Completed)
            .map_err(|e| corrupt(path, format!("undecodable result: {e}")));
    }
    if let Some(reason) = outcome_line.strip_prefix("failed=") {
        return json_unescape(reason)
            .map(StoredOutcome::Failed)
            .ok_or_else(|| corrupt(path, "undecodable failure reason"));
    }
    Err(corrupt(path, "missing result line"))
}

/// Persists one entry atomically: write to a per-process unique temp
/// file in the same directory, then rename over the final path. Racing
/// writers both produce complete files; the last rename wins and both
/// contents are identical for a deterministic simulator.
fn store(path: &Path, text: &str) -> Result<(), SpecfetchError> {
    let parent = path.parent().ok_or_else(|| corrupt(path, "entry path has no parent"))?;
    std::fs::create_dir_all(parent).map_err(|source| SpecfetchError::Io {
        context: format!("creating result store directory {}", parent.display()),
        source,
    })?;
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = parent.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    std::fs::write(&tmp, text).map_err(|source| SpecfetchError::Io {
        context: format!("writing result store entry {}", tmp.display()),
        source,
    })?;
    std::fs::rename(&tmp, path).map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        SpecfetchError::Io {
            context: format!("publishing result store entry {}", path.display()),
            source,
        }
    })
}

/// Moves a bad entry out of the way (to `<file>.quarantined`) so the
/// caller recomputes, keeping the corpse for post-mortems.
fn quarantine(path: &Path, detail: &str) {
    let parked = {
        let mut os = path.as_os_str().to_owned();
        os.push(".quarantined");
        PathBuf::from(os)
    };
    let outcome = match std::fs::rename(path, &parked) {
        Ok(()) => format!("quarantined to {}", parked.display()),
        Err(_) => match std::fs::remove_file(path) {
            Ok(()) => "removed".to_owned(),
            Err(e) => format!("could not be moved aside ({e})"),
        },
    };
    eprintln!(
        "specfetch: warning: result store entry {} failed verification ({detail}); {outcome}; \
         recomputing",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfetch_core::Simulator;
    use specfetch_synth::suite::Benchmark;
    use specfetch_trace::PathSource;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("specfetch-result-store-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn point(classify: bool) -> (SimConfig, SimResult) {
        let b = Benchmark::by_name("li").unwrap();
        let mut cfg = SimConfig::paper_baseline();
        cfg.classify = classify;
        let w = b.workload().unwrap();
        let r = Simulator::new(cfg).run(w.executor(b.path_seed()).take_instrs(4_000));
        (cfg, r)
    }

    #[test]
    fn round_trip_and_miss_on_other_keys() {
        let dir = scratch("rt");
        let (cfg, r) = point(true);
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), None, "cold store must miss");
        put_in(&dir, "li", 4_000, &cfg, &r);
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), Some(StoredOutcome::Completed(r)));
        // Different bench, window, or config: all misses.
        assert_eq!(get_in(&dir, "tex", 4_000, &cfg), None);
        assert_eq!(get_in(&dir, "li", 5_000, &cfg), None);
        let mut other = cfg;
        other.miss_penalty = cfg.miss_penalty + 1;
        assert_eq!(get_in(&dir, "li", 4_000, &other), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_entries_round_trip_and_are_overwritten_by_success() {
        let dir = scratch("neg");
        let (cfg, r) = point(true);
        put_failed_in(&dir, "li", 4_000, &cfg, "timeout after 30s");
        assert_eq!(
            get_in(&dir, "li", 4_000, &cfg),
            Some(StoredOutcome::Failed("timeout after 30s".to_owned())),
            "negative entries replay their reason verbatim"
        );
        // A later success (e.g. under --retry-failed) overwrites the
        // negative entry.
        put_in(&dir, "li", 4_000, &cfg, &r);
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), Some(StoredOutcome::Completed(r)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_reasons_survive_escaping() {
        let dir = scratch("negesc");
        let (cfg, _) = point(false);
        let nasty = "panicked:\n \"quote\" \\ tab\t";
        put_failed_in(&dir, "li", 4_000, &cfg, nasty);
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), Some(StoredOutcome::Failed(nasty.to_owned())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_quarantined_and_misses() {
        let dir = scratch("trunc");
        let (cfg, r) = point(false);
        put_in(&dir, "li", 4_000, &cfg, &r);
        let path = entry_path(&dir, "li", 4_000, &cfg);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert_eq!(get_in(&dir, "li", 4_000, &cfg), None, "truncated entry must miss");
        let parked = {
            let mut os = path.as_os_str().to_owned();
            os.push(".quarantined");
            PathBuf::from(os)
        };
        assert!(parked.exists(), "the bad file must be kept for post-mortems");
        assert!(!path.exists(), "the bad file must be moved out of the way");

        // Self-heal: recompute + re-store lands a fresh valid entry.
        put_in(&dir, "li", 4_000, &cfg, &r);
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), Some(StoredOutcome::Completed(r)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_is_caught_by_the_checksum() {
        let dir = scratch("flip");
        let (cfg, r) = point(false);
        put_in(&dir, "li", 4_000, &cfg, &r);
        let path = entry_path(&dir, "li", 4_000, &cfg);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a digit inside the result line (keeps the file structurally
        // valid — only the checksum can catch it).
        let idx = bytes.windows(7).position(|w| w == b"cycles=").unwrap() + 7;
        bytes[idx] = if bytes[idx] == b'9' { b'8' } else { bytes[idx] + 1 };
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), None, "flipped byte must miss");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_for_a_different_config_is_rejected_even_with_matching_name() {
        // Simulate a hash collision / hand-renamed file: a valid entry for
        // config A placed at config B's path must not serve B.
        let dir = scratch("collide");
        let (cfg, r) = point(false);
        let mut other = cfg;
        other.max_unresolved = cfg.max_unresolved + 1;
        put_in(&dir, "li", 4_000, &cfg, &r);
        std::fs::rename(entry_path(&dir, "li", 4_000, &cfg), entry_path(&dir, "li", 4_000, &other))
            .unwrap();
        assert_eq!(get_in(&dir, "li", 4_000, &other), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_format_version_is_ignored_not_trusted() {
        let dir = scratch("future");
        let (cfg, r) = point(false);
        put_in(&dir, "li", 4_000, &cfg, &r);
        let path = entry_path(&dir, "li", 4_000, &cfg);
        // Rewrite as a "version 2" file with a correct checksum: the
        // header check must still reject it.
        let body = std::fs::read_to_string(&path)
            .unwrap()
            .rsplit_once("checksum=")
            .unwrap()
            .0
            .replacen("specfetch-result/1", "specfetch-result/2", 1);
        std::fs::write(&path, format!("{body}checksum={:016x}\n", fnv1a(body.as_bytes()))).unwrap();
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn racing_writers_both_land_valid_entries() {
        let dir = scratch("race");
        let (cfg, r) = point(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| put_in(&dir, "li", 4_000, &cfg, &r));
            }
        });
        assert_eq!(get_in(&dir, "li", 4_000, &cfg), Some(StoredOutcome::Completed(r)));
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("v1"))
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unwritable_store_is_a_warning_not_an_error() {
        let dir = scratch("rofs");
        let blocking = dir.join("blocked");
        std::fs::write(&blocking, b"not a directory").unwrap();
        let (cfg, r) = point(false);
        // put into a path whose parent is a file: create_dir_all fails,
        // warn-only — must not panic or error.
        put_in(&blocking.join("sub"), "li", 4_000, &cfg, &r);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
