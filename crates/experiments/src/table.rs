//! Plain-text / markdown / CSV table rendering.

use std::fmt;

/// Output format for rendered tables.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Format {
    /// Aligned monospace columns.
    #[default]
    Plain,
    /// GitHub-flavoured markdown.
    Markdown,
    /// Comma-separated values (headers included).
    Csv,
}

impl Format {
    /// Parses a CLI format name.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "plain" => Some(Format::Plain),
            "markdown" | "md" => Some(Format::Markdown),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }
}

/// A rendered experiment table.
///
/// # Examples
///
/// ```
/// use specfetch_experiments::{Format, Table};
///
/// let mut t = Table::new(["bench", "ISPI"]);
/// t.row(["gcc".into(), "1.88".into()]);
/// let text = t.render(Format::Plain);
/// assert!(text.contains("gcc"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count (a harness
    /// bug, not a data condition).
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator<Item = String>,
    {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header width");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty of data rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw cell at `(row, col)`, for tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Number of cells rendered as `FAILED(...)` — the isolated runner's
    /// marker for a grid point that did not complete.
    pub fn failed_cells(&self) -> usize {
        self.rows.iter().flatten().filter(|c| c.starts_with("FAILED(")).count()
    }

    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Plain => self.render_plain(),
            Format::Markdown => self.render_markdown(),
            Format::Csv => self.render_csv(),
        }
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    fn render_plain(&self) -> String {
        use fmt::Write;
        let w = self.widths();
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                if i == 0 {
                    let _ = write!(out, "{:<width$}", c, width = w[i]);
                } else {
                    let _ = write!(out, "{:>width$}", c, width = w[i]);
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", self.headers.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    fn render_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["bench", "ISPI", "paper"]);
        t.row(vec!["gcc".into(), "1.92".into(), "1.88".into()]);
        t.row(vec!["li".into(), "1.51".into(), "1.54".into()]);
        t
    }

    #[test]
    fn plain_aligns_columns() {
        let s = sample().render(Format::Plain);
        assert!(s.contains("bench"));
        assert!(s.contains("gcc"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn markdown_has_separator() {
        let s = sample().render(Format::Markdown);
        assert!(s.starts_with("| bench | ISPI | paper |"));
        assert!(s.lines().nth(1).unwrap().contains("---"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a"]);
        t.row(vec!["x,y".into()]);
        let s = t.render(Format::Csv);
        assert!(s.contains("\"x,y\""));
    }

    #[test]
    fn cell_access() {
        let t = sample();
        assert_eq!(t.cell(0, 0), Some("gcc"));
        assert_eq!(t.cell(1, 2), Some("1.54"));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn failed_cells_are_counted() {
        let mut t = sample();
        assert_eq!(t.failed_cells(), 0);
        t.row(vec!["tex".into(), "FAILED(injected panic)".into(), "1.54".into()]);
        t.row(vec!["db++".into(), "FAILED(x)".into(), "FAILED(y)".into()]);
        assert_eq!(t.failed_cells(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("plain"), Some(Format::Plain));
        assert_eq!(Format::parse("md"), Some(Format::Markdown));
        assert_eq!(Format::parse("csv"), Some(Format::Csv));
        assert_eq!(Format::parse("xml"), None);
    }
}
