//! End-to-end tests of the `specfetch-repro` binary: argument
//! validation, exit codes, fault injection, and the on-disk trace cache.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args(args)
        .output()
        .expect("spawning specfetch-repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("specfetch-repro-cli-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

#[test]
fn unknown_experiment_is_rejected_up_front_with_the_valid_ids() {
    let out = repro(&["--experiment", "table99"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = stderr(&out);
    assert!(err.contains("unknown experiment \"table99\""), "stderr: {err}");
    assert!(err.contains("valid ids:"), "stderr: {err}");
    for id in ["table2", "table7", "figure4", "ablation-bus"] {
        assert!(err.contains(id), "stderr must list {id}: {err}");
    }
    assert!(stdout(&out).is_empty(), "nothing may run before validation");
}

#[test]
fn unknown_argument_and_bad_inject_grammar_exit_2() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument"));

    for bad in
        ["point=table3", "point=table3:x,panic", "point=table3:1,explode", "chaos=2000@1,err"]
    {
        let out = repro(&["--experiment", "table3", "--inject", bad]);
        assert_eq!(out.status.code(), Some(2), "--inject {bad:?} must be a usage error");
        assert!(stdout(&out).is_empty(), "--inject {bad:?} must not run anything");
    }
}

#[test]
fn injected_panic_fails_one_cell_and_the_exit_code_while_the_rest_renders() {
    // table3 point 2 is doduc's 32K run: exactly one derived column.
    let out =
        repro(&["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:2,panic"]);
    assert_eq!(out.status.code(), Some(1), "failed cells exit 1, at the end");
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 1, "exactly one cell fails: {text}");
    assert!(text.contains("Average"), "the rest of the table still renders: {text}");
    assert!(text.contains("doduc") && text.contains("porky"), "all rows render: {text}");
    assert!(stderr(&out).contains("1 failed cell(s)"), "stderr: {}", stderr(&out));
}

#[test]
fn injected_error_is_typed_and_isolated() {
    let out =
        repro(&["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:0,err"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    // Point 0 is doduc's depth-4 baseline, which feeds four columns.
    assert_eq!(text.matches("FAILED(injected err)").count(), 4, "{text}");
    assert!(text.contains("porky"), "other rows still render");
}

#[test]
fn injected_slowdown_does_not_fail_anything() {
    let out =
        repro(&["--experiment", "table2", "--instrs", "2000", "--inject", "point=table2:0,slow"]);
    assert_eq!(out.status.code(), Some(0), "slow is not a failure: {}", stderr(&out));
    assert!(!stdout(&out).contains("FAILED"));
}

#[test]
fn injection_into_one_experiment_leaves_the_others_alone() {
    let out = repro(&[
        "--experiment",
        "extras",
        "--instrs",
        "1000",
        "--inject",
        "point=ablation-assoc:1,panic",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 3, "one assoc row = 3 cells");
    for id in ["ablation-prefetch", "ablation-bpred", "ablation-penalty", "ablation-bus"] {
        assert!(text.contains(&format!("== {id}")), "{id} must still render");
    }
}

#[test]
fn trace_dir_round_trips_and_a_corrupt_file_self_heals() {
    let dir = scratch("heal");
    let dir_s = dir.to_str().unwrap();
    let run = |extra: &[&str]| {
        let mut args = vec!["--experiment", "table2", "--instrs", "1500", "--trace-dir", dir_s];
        args.extend_from_slice(extra);
        repro(&args)
    };

    let cold = run(&[]);
    assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
    let cached: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sftb"))
        .collect();
    assert_eq!(cached.len(), 13, "one cache file per benchmark");

    let warm = run(&[]);
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(stdout(&warm), stdout(&cold), "cached replay must not change the report");

    // Corrupt one cache file; the run warns, quarantines, regenerates,
    // and still succeeds with identical output.
    let victim = &cached[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() / 3]).unwrap();
    let healed = run(&[]);
    assert_eq!(healed.status.code(), Some(0), "{}", stderr(&healed));
    assert_eq!(stdout(&healed), stdout(&cold));
    assert!(stderr(&healed).contains("failed verification"), "{}", stderr(&healed));
    assert!(
        victim.with_extension("sftb.quarantined").exists()
            || std::fs::read(victim).unwrap().len() > bytes.len() / 3,
        "bad file must be replaced"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_runs_a_user_defined_grid() {
    let out =
        repro(&["--sweep", "policy=Res,Pess depth=1,4 bench=li metric=ispi", "--instrs", "2000"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for label in ["Res/1", "Res/4", "Pess/1", "Pess/4"] {
        assert!(text.contains(label), "column {label} must render: {text}");
    }
    assert!(text.contains("li"), "{text}");
}

#[test]
fn sweep_typos_exit_2_with_a_hint_before_anything_runs() {
    let out = repro(&["--sweep", "polcy=Res"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(stderr(&out).contains("did you mean \"policy\"?"), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "nothing may run before validation");

    let out = repro(&["--sweep", "policy=Rez"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("did you mean \"Res\"?"), "{}", stderr(&out));
}

#[test]
fn sweep_and_experiment_are_mutually_exclusive() {
    let out = repro(&["--sweep", "depth=1", "--experiment", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"), "{}", stderr(&out));
}

#[test]
fn sweep_cells_are_fault_isolated() {
    let out = repro(&[
        "--sweep",
        "depth=1,2 bench=li,gcc",
        "--instrs",
        "2000",
        "--inject",
        "point=sweep:1,panic",
    ]);
    assert_eq!(out.status.code(), Some(1), "failed cells exit 1");
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 1, "{text}");
    assert!(text.contains("gcc"), "other rows still render: {text}");
}

#[test]
fn injected_panic_is_isolated_identically_with_and_without_lockstep() {
    // The lockstep scheduler must preserve fault isolation exactly: one
    // panicking point costs one FAILED cell, sibling lanes complete, and
    // the rendered report is byte-identical to the sequential scheduler's
    // (which re-runs every point on its own).
    let args = ["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:2,panic"];
    let lockstep = repro(&args);
    let sequential = repro(&[&args[..], &["--no-lockstep"]].concat());
    assert_eq!(lockstep.status.code(), Some(1), "failed cells exit 1 under lockstep");
    assert_eq!(sequential.status.code(), Some(1), "failed cells exit 1 sequentially");
    let fast = stdout(&lockstep);
    let slow = stdout(&sequential);
    assert_eq!(fast, slow, "fault-isolated reports must match across schedulers");
    assert_eq!(fast.matches("FAILED(injected panic)").count(), 1, "exactly one cell: {fast}");
    assert!(fast.contains("porky"), "sibling lanes still render: {fast}");
}

#[test]
fn analyze_verifies_every_benchmark_and_matches_the_golden_table() {
    let out = repro(&["--analyze"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let golden = include_str!("golden/analyze.txt");
    assert_eq!(text.trim_end(), golden.trim_end(), "analyze table drifted from the golden");
    assert!(!text.contains("FAILED"), "{text}");
    assert!(stderr(&out).is_empty(), "clean analysis must not write to stderr");
}

#[test]
fn analyze_single_benchmark_prints_one_row() {
    let out = repro(&["--analyze", "--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("li"), "{text}");
    assert!(!text.contains("gcc"), "only the requested benchmark may appear: {text}");
}

#[test]
fn analyze_corrupt_target_exits_1_with_typed_diagnostics() {
    let out = repro(&["--analyze", "--corrupt-target", "li", "--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(1), "a failing image must exit 1");
    let text = stdout(&out);
    assert!(text.contains("FAILED(transfer at"), "verdict carries the diagnostic: {text}");
    let err = stderr(&out);
    assert!(err.contains("error: li:"), "per-issue diagnostics on stderr: {err}");
    assert!(err.contains("failed static analysis"), "{err}");
}

#[test]
fn analyze_usage_errors_exit_2_before_anything_runs() {
    let out = repro(&["--analyze", "--benchmark", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown benchmark"), "{}", stderr(&out));
    assert!(stderr(&out).contains("li"), "valid names are listed: {}", stderr(&out));

    let out = repro(&["--analyze", "--experiment", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"), "{}", stderr(&out));

    let out = repro(&["--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("only applies to --analyze"), "{}", stderr(&out));

    let out = repro(&["--analyze", "--corrupt-target", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown benchmark"), "{}", stderr(&out));
}

#[test]
fn corrupted_benchmark_renders_a_failed_analysis_cell_in_a_sweep() {
    let out = repro(&[
        "--sweep",
        "policy=Res bench=li,gcc metric=ispi",
        "--instrs",
        "2000",
        "--corrupt-target",
        "li",
    ]);
    assert_eq!(out.status.code(), Some(1), "an analysis failure is a failed cell");
    let text = stdout(&out);
    assert!(text.contains("FAILED(analysis:"), "li's cell fails preflight: {text}");
    assert!(text.contains("gcc"), "gcc still simulates: {text}");
    assert!(!stdout(&out).contains("gcc	FAILED"), "gcc must not fail: {text}");
}

#[test]
fn list_and_help_exit_cleanly() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("table2") && text.contains("ablation-bus"));

    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("--inject"));
}
