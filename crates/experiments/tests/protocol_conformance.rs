//! WAL conformance over a *real* run (DESIGN §5l): execute an actual
//! experiment under an activated journal, then replay the on-disk WAL
//! through the model's strict writer-side transition function and
//! assert every recorded event order is one the model allows.
//!
//! The `#[cfg(test)]` conformance module checks model walks against the
//! journal; this test closes the loop from the other side — whatever
//! the production runner actually writes must be a trace of the model.

use std::collections::HashMap;

use specfetch_core::fnv1a;
use specfetch_experiments::{journal, run_experiment, RunOptions};
use specfetch_verify::{parse_tag, point_step, PointEvent, PointState, Step};

#[test]
fn a_real_run_writes_only_model_legal_event_orders() {
    let dir =
        std::env::temp_dir().join(format!("specfetch-protocol-conformance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let job = 0xBEEF_0001;
    let key = journal::run_key("protocol-conformance", 2_000);
    journal::activate_job(job, &dir, key, false).expect("activate journal");

    let opts = RunOptions::smoke().with_instrs(2_000).with_job(job);
    run_experiment("table3", &opts).expect("table3 runs");
    journal::flush();
    journal::release(job);

    let text = std::fs::read_to_string(journal::path_for(&dir, key)).expect("read WAL");
    let mut points: HashMap<(String, u64), PointState> = HashMap::new();
    let mut events = 0usize;
    let mut terminal = (0u64, 0u64, 0u64); // completed, failed, interrupted
    for (lineno, line) in text.lines().enumerate() {
        let (payload, sum) = line.rsplit_once('|').expect("sealed line");
        assert_eq!(
            format!("{:016x}", fnv1a(payload.as_bytes())),
            sum,
            "line {}: checksum mismatch",
            lineno + 1
        );
        if lineno == 0 {
            assert!(payload.starts_with("specfetch-journal/1 run="), "header: {payload}");
            continue;
        }
        let mut parts = payload.splitn(4, ' ');
        let event = parse_tag(parts.next().expect("tag")).expect("known event tag");
        let exp = parts.next().expect("experiment").to_owned();
        let idx: u64 = parts.next().expect("idx").parse().expect("numeric idx");
        let state = points.entry((exp.clone(), idx)).or_insert(PointState::Unscheduled);
        match point_step(state, &event) {
            Step::Next(next) => *state = next,
            other => panic!(
                "line {}: runner wrote {event:?} for {exp}:{idx} in {state:?} — \
                 the strict model rejects it ({other:?})",
                lineno + 1
            ),
        }
        events += 1;
        match event {
            PointEvent::Complete => terminal.0 += 1,
            PointEvent::Fail => terminal.1 += 1,
            PointEvent::Interrupt => terminal.2 += 1,
            _ => {}
        }
    }
    assert!(events > 0, "the run journalled nothing");
    // A clean uninterrupted run owes every point a Completed terminal.
    assert_eq!(terminal.1, 0, "unexpected terminal failures");
    assert_eq!(terminal.2, 0, "unexpected interruptions");
    for ((exp, idx), state) in &points {
        assert_eq!(*state, PointState::Completed, "{exp}:{idx} did not run to completion");
    }
    assert_eq!(terminal.0 as usize, points.len());
    let _ = std::fs::remove_dir_all(&dir);
}
