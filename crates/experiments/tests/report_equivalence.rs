//! End-to-end report equivalence: the pre-decoded overlay, the engine's
//! batched fetch fast path, and the per-(benchmark, config) result memo
//! must be invisible optimisations — every rendered experiment report
//! must come out byte-identical with the caches on and off.

use specfetch_experiments::{run_experiment, Format, RunOptions, EXPERIMENT_IDS};

fn assert_reports_identical(instrs: u64) {
    let fast = RunOptions::new().with_instrs(instrs);
    let slow = fast.with_predict_cache(false);
    for id in EXPERIMENT_IDS {
        let a = run_experiment(id, &fast).expect("known id").render(Format::Plain);
        let b = run_experiment(id, &slow).expect("known id").render(Format::Plain);
        assert_eq!(a, b, "{id}: overlay + batched replay changed the report");
    }
}

#[test]
fn all_reports_identical_at_smoke_scale() {
    assert_reports_identical(12_000);
}

#[test]
fn figure1_report_identical_to_fully_uncached_run() {
    // One experiment against the ground-truth path with *every* cache
    // off (fresh behavioural interpretation per run).
    let fast = RunOptions::new().with_instrs(9_000);
    let raw = fast.with_predict_cache(false).with_share_traces(false);
    let a = run_experiment("figure1", &fast).unwrap().render(Format::Plain);
    let b = run_experiment("figure1", &raw).unwrap().render(Format::Plain);
    assert_eq!(a, b, "figure1: cached replay diverged from direct interpretation");
}

/// The acceptance check at the 500k-instruction window; multi-minute in
/// debug builds, so run it via
/// `cargo test -p specfetch-experiments --release -- --ignored`.
#[test]
#[ignore = "multi-minute in debug builds; run with --release -- --ignored"]
fn all_reports_identical_at_500k() {
    assert_reports_identical(500_000);
}
