//! End-to-end tests of the `specfetch-repro` binary: argument
//! validation, exit codes, fault injection, and the on-disk trace cache.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args(args)
        .output()
        .expect("spawning specfetch-repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("specfetch-repro-cli-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

#[test]
fn unknown_experiment_is_rejected_up_front_with_the_valid_ids() {
    let out = repro(&["--experiment", "table99"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = stderr(&out);
    assert!(err.contains("unknown experiment \"table99\""), "stderr: {err}");
    assert!(err.contains("valid ids:"), "stderr: {err}");
    for id in ["table2", "table7", "figure4", "ablation-bus"] {
        assert!(err.contains(id), "stderr must list {id}: {err}");
    }
    assert!(stdout(&out).is_empty(), "nothing may run before validation");
}

#[test]
fn unknown_argument_and_bad_inject_grammar_exit_2() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument"));

    for bad in
        ["point=table3", "point=table3:x,panic", "point=table3:1,explode", "chaos=2000@1,err"]
    {
        let out = repro(&["--experiment", "table3", "--inject", bad]);
        assert_eq!(out.status.code(), Some(2), "--inject {bad:?} must be a usage error");
        assert!(stdout(&out).is_empty(), "--inject {bad:?} must not run anything");
    }
}

#[test]
fn injected_panic_fails_one_cell_and_the_exit_code_while_the_rest_renders() {
    // table3 point 2 is doduc's 32K run: exactly one derived column.
    let out =
        repro(&["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:2,panic"]);
    assert_eq!(out.status.code(), Some(1), "failed cells exit 1, at the end");
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 1, "exactly one cell fails: {text}");
    assert!(text.contains("Average"), "the rest of the table still renders: {text}");
    assert!(text.contains("doduc") && text.contains("porky"), "all rows render: {text}");
    assert!(stderr(&out).contains("1 failed cell(s)"), "stderr: {}", stderr(&out));
}

#[test]
fn injected_error_is_typed_and_isolated() {
    let out =
        repro(&["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:0,err"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    // Point 0 is doduc's depth-4 baseline, which feeds four columns.
    assert_eq!(text.matches("FAILED(injected err)").count(), 4, "{text}");
    assert!(text.contains("porky"), "other rows still render");
}

#[test]
fn injected_slowdown_does_not_fail_anything() {
    let out =
        repro(&["--experiment", "table2", "--instrs", "2000", "--inject", "point=table2:0,slow"]);
    assert_eq!(out.status.code(), Some(0), "slow is not a failure: {}", stderr(&out));
    assert!(!stdout(&out).contains("FAILED"));
}

#[test]
fn injection_into_one_experiment_leaves_the_others_alone() {
    let out = repro(&[
        "--experiment",
        "extras",
        "--instrs",
        "1000",
        "--inject",
        "point=ablation-assoc:1,panic",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 3, "one assoc row = 3 cells");
    for id in ["ablation-prefetch", "ablation-bpred", "ablation-penalty", "ablation-bus"] {
        assert!(text.contains(&format!("== {id}")), "{id} must still render");
    }
}

#[test]
fn trace_dir_round_trips_and_a_corrupt_file_self_heals() {
    let dir = scratch("heal");
    let dir_s = dir.to_str().unwrap();
    let run = |extra: &[&str]| {
        let mut args = vec!["--experiment", "table2", "--instrs", "1500", "--trace-dir", dir_s];
        args.extend_from_slice(extra);
        repro(&args)
    };

    let cold = run(&[]);
    assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
    let cached: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sftb"))
        .collect();
    assert_eq!(cached.len(), 13, "one cache file per benchmark");

    let warm = run(&[]);
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(stdout(&warm), stdout(&cold), "cached replay must not change the report");

    // Corrupt one cache file; the run warns, quarantines, regenerates,
    // and still succeeds with identical output.
    let victim = &cached[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() / 3]).unwrap();
    let healed = run(&[]);
    assert_eq!(healed.status.code(), Some(0), "{}", stderr(&healed));
    assert_eq!(stdout(&healed), stdout(&cold));
    assert!(stderr(&healed).contains("failed verification"), "{}", stderr(&healed));
    assert!(
        victim.with_extension("sftb.quarantined").exists()
            || std::fs::read(victim).unwrap().len() > bytes.len() / 3,
        "bad file must be replaced"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_runs_a_user_defined_grid() {
    let out =
        repro(&["--sweep", "policy=Res,Pess depth=1,4 bench=li metric=ispi", "--instrs", "2000"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    for label in ["Res/1", "Res/4", "Pess/1", "Pess/4"] {
        assert!(text.contains(label), "column {label} must render: {text}");
    }
    assert!(text.contains("li"), "{text}");
}

#[test]
fn sweep_typos_exit_2_with_a_hint_before_anything_runs() {
    let out = repro(&["--sweep", "polcy=Res"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(stderr(&out).contains("did you mean \"policy\"?"), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "nothing may run before validation");

    let out = repro(&["--sweep", "policy=Rez"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("did you mean \"Res\"?"), "{}", stderr(&out));
}

#[test]
fn sweep_and_experiment_are_mutually_exclusive() {
    let out = repro(&["--sweep", "depth=1", "--experiment", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"), "{}", stderr(&out));
}

#[test]
fn sweep_cells_are_fault_isolated() {
    let out = repro(&[
        "--sweep",
        "depth=1,2 bench=li,gcc",
        "--instrs",
        "2000",
        "--inject",
        "point=sweep:1,panic",
    ]);
    assert_eq!(out.status.code(), Some(1), "failed cells exit 1");
    let text = stdout(&out);
    assert_eq!(text.matches("FAILED(injected panic)").count(), 1, "{text}");
    assert!(text.contains("gcc"), "other rows still render: {text}");
}

#[test]
fn injected_panic_is_isolated_identically_with_and_without_lockstep() {
    // The lockstep scheduler must preserve fault isolation exactly: one
    // panicking point costs one FAILED cell, sibling lanes complete, and
    // the rendered report is byte-identical to the sequential scheduler's
    // (which re-runs every point on its own).
    let args = ["--experiment", "table3", "--instrs", "2000", "--inject", "point=table3:2,panic"];
    let lockstep = repro(&args);
    let sequential = repro(&[&args[..], &["--no-lockstep"]].concat());
    assert_eq!(lockstep.status.code(), Some(1), "failed cells exit 1 under lockstep");
    assert_eq!(sequential.status.code(), Some(1), "failed cells exit 1 sequentially");
    let fast = stdout(&lockstep);
    let slow = stdout(&sequential);
    assert_eq!(fast, slow, "fault-isolated reports must match across schedulers");
    assert_eq!(fast.matches("FAILED(injected panic)").count(), 1, "exactly one cell: {fast}");
    assert!(fast.contains("porky"), "sibling lanes still render: {fast}");
}

#[test]
fn analyze_verifies_every_benchmark_and_matches_the_golden_table() {
    let out = repro(&["--analyze"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    let golden = include_str!("golden/analyze.txt");
    assert_eq!(text.trim_end(), golden.trim_end(), "analyze table drifted from the golden");
    assert!(!text.contains("FAILED"), "{text}");
    assert!(stderr(&out).is_empty(), "clean analysis must not write to stderr");
}

#[test]
fn analyze_single_benchmark_prints_one_row() {
    let out = repro(&["--analyze", "--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("li"), "{text}");
    assert!(!text.contains("gcc"), "only the requested benchmark may appear: {text}");
}

#[test]
fn analyze_corrupt_target_exits_1_with_typed_diagnostics() {
    let out = repro(&["--analyze", "--corrupt-target", "li", "--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(1), "a failing image must exit 1");
    let text = stdout(&out);
    assert!(text.contains("FAILED(transfer at"), "verdict carries the diagnostic: {text}");
    let err = stderr(&out);
    assert!(err.contains("error: li:"), "per-issue diagnostics on stderr: {err}");
    assert!(err.contains("failed static analysis"), "{err}");
}

#[test]
fn analyze_usage_errors_exit_2_before_anything_runs() {
    let out = repro(&["--analyze", "--benchmark", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown benchmark"), "{}", stderr(&out));
    assert!(stderr(&out).contains("li"), "valid names are listed: {}", stderr(&out));

    let out = repro(&["--analyze", "--experiment", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"), "{}", stderr(&out));

    let out = repro(&["--benchmark", "li"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("only applies to --analyze"), "{}", stderr(&out));

    let out = repro(&["--analyze", "--corrupt-target", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown benchmark"), "{}", stderr(&out));
}

#[test]
fn corrupted_benchmark_renders_a_failed_analysis_cell_in_a_sweep() {
    let out = repro(&[
        "--sweep",
        "policy=Res bench=li,gcc metric=ispi",
        "--instrs",
        "2000",
        "--corrupt-target",
        "li",
    ]);
    assert_eq!(out.status.code(), Some(1), "an analysis failure is a failed cell");
    let text = stdout(&out);
    assert!(text.contains("FAILED(analysis:"), "li's cell fails preflight: {text}");
    assert!(text.contains("gcc"), "gcc still simulates: {text}");
    assert!(!stdout(&out).contains("gcc	FAILED"), "gcc must not fail: {text}");
}

/// Parses the `[result-store] hits=H stores=S` stderr line.
fn store_stats(err: &str) -> (u64, u64) {
    let line = err
        .lines()
        .find(|l| l.starts_with("[result-store]"))
        .unwrap_or_else(|| panic!("no [result-store] line in stderr:\n{err}"));
    let field = |key: &str| {
        let tail = line.split(&format!("{key}=")).nth(1).unwrap();
        tail.split_whitespace().next().unwrap().parse::<u64>().unwrap()
    };
    (field("hits"), field("stores"))
}

/// Lists the store's entry files (`*.sr` under `<dir>/v1`).
fn store_entries(dir: &std::path::Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir.join("v1"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sr"))
        .collect()
}

#[test]
fn worker_stream_and_store_modes_render_byte_identical_reports() {
    let dir = scratch("modes");
    let dir_s = dir.to_str().unwrap();
    let base = ["--experiment", "table4", "--instrs", "2000"];
    let default = repro(&base);
    assert_eq!(default.status.code(), Some(0), "{}", stderr(&default));
    let golden = stdout(&default);

    let workers = repro(&[&base[..], &["--workers", "2"]].concat());
    assert_eq!(workers.status.code(), Some(0), "{}", stderr(&workers));
    assert_eq!(stdout(&workers), golden, "--workers 2 must not change the report");

    let stream = repro(&[&base[..], &["--stream"]].concat());
    assert_eq!(stream.status.code(), Some(0), "{}", stderr(&stream));
    assert_eq!(stdout(&stream), golden, "--stream must not change the report");
    assert!(stderr(&stream).contains("[row] "), "rows stream to stderr: {}", stderr(&stream));

    let off = repro(&[&base[..], &["--result-dir", dir_s, "--no-result-store"]].concat());
    assert_eq!(off.status.code(), Some(0), "{}", stderr(&off));
    assert_eq!(stdout(&off), golden, "--no-result-store must not change the report");
    assert_eq!(store_stats(&stderr(&off)), (0, 0), "the bypassed store must stay untouched");

    let cold = repro(&[&base[..], &["--result-dir", dir_s]].concat());
    assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
    assert_eq!(stdout(&cold), golden, "a cold store must not change the report");
    let (hits, stores) = store_stats(&stderr(&cold));
    assert_eq!(hits, 0, "nothing to hit on a cold store");
    assert!(stores > 0, "a cold run must populate the store");

    let warm = repro(&[&base[..], &["--result-dir", dir_s]].concat());
    assert_eq!(stdout(&warm), golden, "a warm store must not change the report");
    let (hits, re_stores) = store_stats(&stderr(&warm));
    assert_eq!(hits, stores, "every stored point replays as a hit");
    assert_eq!(re_stores, 0, "a warm run recomputes nothing");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_interrupted_run_resumes_from_the_store_without_recomputing() {
    let dir = scratch("resume");
    let dir_s = dir.to_str().unwrap();
    let base = ["--experiment", "table3", "--instrs", "2000", "--result-dir", dir_s];

    // Kill the run mid-sweep: points before the abort land in the store,
    // then the process dies without any cleanup pass.
    let killed = repro(&[&base[..], &["--inject", "point=table3:2,abort"]].concat());
    assert!(!killed.status.success(), "the injected abort must kill the run");
    let stored = store_entries(&dir).len() as u64;
    assert!(stored > 0, "completed points must persist before the crash");

    // The resumed run replays every stored point and computes only the rest.
    let resumed = repro(&base);
    assert_eq!(resumed.status.code(), Some(0), "{}", stderr(&resumed));
    let (hits, stores) = store_stats(&stderr(&resumed));
    assert_eq!(hits, stored, "every surviving entry must resume as a hit");
    assert!(stores > 0, "the interrupted remainder must be computed and stored");

    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    assert_eq!(stdout(&resumed), stdout(&baseline), "resume must not change the report");

    // Fully warm now: a third run recomputes nothing at all.
    let warm = repro(&base);
    let (warm_hits, warm_stores) = store_stats(&stderr(&warm));
    assert_eq!(warm_stores, 0, "no completed point may rerun");
    assert_eq!(warm_hits, hits + stores);
    assert_eq!(stdout(&warm), stdout(&baseline));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_crashing_worker_fails_its_cell_while_siblings_complete() {
    let out = repro(&[
        "--experiment",
        "table4",
        "--instrs",
        "2000",
        "--workers",
        "2",
        "--inject",
        "point=table4:2,abort",
    ]);
    assert_eq!(out.status.code(), Some(1), "failed cells exit 1: {}", stderr(&out));
    let text = stdout(&out);
    // Point 2 is su2cor's single run, which feeds all five derived columns.
    let failed_rows = text.lines().filter(|l| l.contains("FAILED(worker exited")).count();
    assert_eq!(failed_rows, 1, "exactly one row fails: {text}");
    assert_eq!(text.matches("FAILED(worker exited").count(), 5, "one point = 5 cells: {text}");
    assert!(text.contains("li") && text.contains("gcc"), "sibling rows still render: {text}");
    assert!(stderr(&out).contains("5 failed cell(s)"), "stderr: {}", stderr(&out));
}

#[test]
fn two_processes_racing_on_one_store_agree_and_leave_it_valid() {
    let dir = scratch("race");
    let dir_s = dir.to_str().unwrap();
    let args = ["--experiment", "table4", "--instrs", "1500", "--result-dir", dir_s];
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| repro(&args));
        let b = s.spawn(|| repro(&args));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(a.status.code(), Some(0), "{}", stderr(&a));
    assert_eq!(b.status.code(), Some(0), "{}", stderr(&b));
    assert_eq!(stdout(&a), stdout(&b), "racing processes must agree");

    // Atomic publication: no torn temp files, nothing quarantined.
    let leftovers: Vec<_> = std::fs::read_dir(dir.join("v1"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| !n.ends_with(".sr"))
        .collect();
    assert!(leftovers.is_empty(), "only finished entries may remain: {leftovers:?}");

    // Whatever interleaving happened, the store is fully usable afterwards.
    let warm = repro(&args);
    let (hits, stores) = store_stats(&stderr(&warm));
    assert_eq!(stores, 0, "a warm run after the race recomputes nothing");
    assert!(hits > 0);
    assert_eq!(stdout(&warm), stdout(&a));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_corrupt_store_entry_is_quarantined_and_recomputed() {
    let dir = scratch("store-heal");
    let dir_s = dir.to_str().unwrap();
    let args = ["--experiment", "table4", "--instrs", "1500", "--result-dir", dir_s];
    let cold = repro(&args);
    assert_eq!(cold.status.code(), Some(0), "{}", stderr(&cold));
    let entries = store_entries(&dir);
    assert!(!entries.is_empty());

    // Truncate one entry mid-body; the next run must not trust it.
    let victim = &entries[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() / 2]).unwrap();

    let healed = repro(&args);
    assert_eq!(healed.status.code(), Some(0), "{}", stderr(&healed));
    assert_eq!(stdout(&healed), stdout(&cold), "healing must not change the report");
    let err = stderr(&healed);
    assert!(err.contains("failed verification"), "corruption is reported: {err}");
    let mut parked = victim.clone().into_os_string();
    parked.push(".quarantined");
    assert!(PathBuf::from(parked).exists(), "the bad entry is parked, not deleted");
    let (_, stores) = store_stats(&err);
    assert_eq!(stores, 1, "exactly the corrupted point recomputes");
    assert_eq!(std::fs::read(victim).unwrap(), bytes, "the entry is rewritten verbatim");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn the_overlay_size_heuristic_never_changes_the_report() {
    // Below the --overlay-min threshold the runner skips the predicted-trace
    // overlay (and with it lockstep batching); both fetch paths must render
    // byte-identical reports either side of the cutoff.
    let base = ["--experiment", "table4", "--instrs", "2000"];
    let overlaid = repro(&[&base[..], &["--overlay-min", "0"]].concat());
    let plain = repro(&[&base[..], &["--overlay-min", "1000000"]].concat());
    assert_eq!(overlaid.status.code(), Some(0), "{}", stderr(&overlaid));
    assert_eq!(plain.status.code(), Some(0), "{}", stderr(&plain));
    assert_eq!(stdout(&overlaid), stdout(&plain), "the heuristic is a pure perf choice");
}

#[test]
fn worker_mode_is_internal_and_takes_no_experiment_selection() {
    for sel in [&["--worker", "--experiment", "table2"][..], &["--worker", "--analyze"][..]] {
        let out = repro(sel);
        assert_eq!(out.status.code(), Some(2), "{sel:?} must be a usage error");
        assert!(stderr(&out).contains("child-process mode"), "{}", stderr(&out));
    }
}

#[test]
fn list_and_help_exit_cleanly() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.contains("table2") && text.contains("ablation-bus"));

    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("--inject"));
}

/// The machine-readable registry listing is golden: ids, summaries and
/// grid axes in registry order, shared verbatim with `GET /experiments`.
#[test]
fn list_json_matches_the_committed_golden() {
    let out = repro(&["--list", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(stdout(&out), include_str!("golden/list.json"));
    assert!(stderr(&out).is_empty(), "the listing is stdout-only");

    let out = repro(&["--json"]);
    assert_eq!(out.status.code(), Some(2), "--json without --list is a usage error");
}

/// `--quiet` silences status chatter (journal, result-store, timing
/// lines) but not reports, rows, or the failure summary.
#[test]
fn quiet_suppresses_status_chatter_but_not_reports_or_rows() {
    let dir = scratch("quiet");
    let loud = repro(&[
        "--experiment",
        "table2",
        "--instrs",
        "2000",
        "--result-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(loud.status.code(), Some(0));
    let err = stderr(&loud);
    assert!(err.contains("[journal] "), "stderr: {err}");
    assert!(err.contains("[result-store] hits="), "stderr: {err}");
    assert!(err.contains("[table2 done in "), "stderr: {err}");

    let dir2 = scratch("quiet2");
    let quiet = repro(&[
        "--experiment",
        "table2",
        "--instrs",
        "2000",
        "--result-dir",
        dir2.to_str().unwrap(),
        "--quiet",
        "--stream",
    ]);
    assert_eq!(quiet.status.code(), Some(0));
    assert_eq!(stdout(&quiet), stdout(&loud), "reports are not chatter");
    let err = stderr(&quiet);
    assert!(!err.contains("[journal] "), "stderr: {err}");
    assert!(!err.contains("[result-store]"), "stderr: {err}");
    assert!(!err.contains("done in "), "stderr: {err}");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}
