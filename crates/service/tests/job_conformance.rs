//! Job lifecycle conformance (DESIGN §5l): every state trajectory a
//! real [`Controller`] exhibits must stay inside the model-checked
//! [`JobMachine`]'s reachable transition graph.
//!
//! A poller can miss intermediate states (a fast job goes Queued →
//! Running → Done between two polls), so observed consecutive pairs are
//! checked against the *reachability closure* of the model's edge set,
//! not the single-step edges.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use specfetch_experiments::{Format, JobSpec, RunOptions};
use specfetch_service::{Controller, ControllerConfig, JobState};
use specfetch_verify::{explore, JobMachine, Machine, Step};

fn ci_config() -> ControllerConfig {
    ControllerConfig {
        opts: RunOptions::smoke().with_instrs(2_000),
        format: Format::Plain,
        journal_root: None,
        max_concurrent: 1,
    }
}

/// The model's multi-step reachability relation over [`JobState`]:
/// `(a, b)` is present when some event sequence takes a job from a
/// phase in state `a` to one in state `b`. Derived from the same
/// `JobMachine` the checker exhausts, via its own `events`/`step`.
fn reachable_pairs() -> HashSet<(JobState, JobState)> {
    let machine = JobMachine;
    let phases = explore(&machine, 1_000).expect("job machine verifies").states;
    // Single-step edges over phases, projected to the visible state.
    let mut edges: HashSet<(JobState, JobState)> = HashSet::new();
    for phase in &phases {
        for event in machine.events(phase) {
            if let Step::Next(next) = machine.step(phase, &event) {
                edges.insert((phase.state, next.state));
            }
        }
    }
    // Transitive closure: a poll can skip any number of steps.
    loop {
        let mut grew = false;
        let snapshot: Vec<_> = edges.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(c, d) in &snapshot {
                if b == c && edges.insert((a, d)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    edges
}

/// Polls `status` until terminal, recording every distinct state seen.
fn observe(c: &Controller, id: u64) -> Vec<JobState> {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut seen = Vec::new();
    loop {
        let snap = c.status(id).expect("job exists");
        if seen.last() != Some(&snap.state) {
            seen.push(snap.state);
        }
        if snap.state.is_terminal() {
            return seen;
        }
        assert!(Instant::now() < deadline, "job {id} never reached a terminal state");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn assert_trajectory_in_model(traj: &[JobState], allowed: &HashSet<(JobState, JobState)>) {
    for pair in traj.windows(2) {
        assert!(
            allowed.contains(&(pair[0], pair[1])),
            "observed {} -> {} is outside the model's reachability: {traj:?}",
            pair[0].name(),
            pair[1].name()
        );
    }
}

#[test]
fn controller_trajectories_stay_inside_the_model() {
    let allowed = reachable_pairs();
    let c = Controller::start(ci_config());

    // A job that runs to completion.
    let done = c.submit(JobSpec::Experiment("table2".into()), None).expect("submit");
    let traj = observe(&c, done);
    assert_trajectory_in_model(&traj, &allowed);
    assert_eq!(traj.last(), Some(&JobState::Done), "clean run must land on done: {traj:?}");

    // A job cancelled as soon as possible: whatever the race outcome
    // (cancelled while queued, drained while running, or finished
    // first), the trajectory must still be a model path.
    let raced = c.submit(JobSpec::Experiment("table2".into()), None).expect("submit");
    c.cancel(raced);
    let traj = observe(&c, raced);
    assert_trajectory_in_model(&traj, &allowed);

    // Cancel on a terminal job is idempotent and changes nothing.
    let before = c.status(done).expect("status").state;
    c.cancel(done);
    assert_eq!(c.status(done).expect("status").state, before);

    c.drain();
}

/// Long-run randomized variant:
/// `cargo test -p specfetch-service --test job_conformance -- --ignored`.
#[test]
#[ignore = "long-run randomized cancel-timing sweep; run explicitly with --ignored"]
fn randomized_cancel_timing_trajectories_stay_inside_the_model() {
    let allowed = reachable_pairs();
    let c = Controller::start(ci_config());
    // A deterministic xorshift so failures reproduce; seeds vary the
    // cancel delay across the whole submit-to-terminal window.
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut ids = Vec::new();
    for _ in 0..24 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let id = c.submit(JobSpec::Experiment("table2".into()), None).expect("submit");
        std::thread::sleep(Duration::from_millis(rng % 40));
        if !rng.is_multiple_of(3) {
            c.cancel(id);
        }
        ids.push(id);
    }
    for id in ids {
        let traj = observe(&c, id);
        assert_trajectory_in_model(&traj, &allowed);
    }
    c.drain();
}
