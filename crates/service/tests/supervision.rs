//! End-to-end tests of the supervision layer: deadlines, heartbeats,
//! retry-with-backoff, the negative cache, the sweep journal, graceful
//! shutdown, and the worker protocol handshake (DESIGN §5j).

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args(args)
        .output()
        .expect("spawning specfetch-repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("specfetch-supervision-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// Parses the `[result-store] hits=H stores=S` stderr line.
fn store_stats(err: &str) -> (u64, u64) {
    let line = err
        .lines()
        .find(|l| l.starts_with("[result-store]"))
        .unwrap_or_else(|| panic!("no [result-store] line in: {err}"));
    let field = |key: &str| {
        line.split_whitespace()
            .find_map(|w| w.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad stats line: {line}"))
    };
    (field("hits="), field("stores="))
}

/// Completed `.sr` entries currently in a store directory.
fn store_entries(dir: &std::path::Path) -> usize {
    match std::fs::read_dir(dir.join("v1")) {
        Ok(entries) => {
            entries.flatten().filter(|e| e.file_name().to_string_lossy().ends_with(".sr")).count()
        }
        Err(_) => 0,
    }
}

// ---------------------------------------------------------------------
// Liveness: hangs, deadlines, retries
// ---------------------------------------------------------------------

/// The headline acceptance scenario: a worker that hangs at point N is
/// detected by the heartbeat window, killed, respawned, and the point
/// retried — the final table is byte-identical to an uninjected run.
#[test]
fn a_hung_worker_is_killed_respawned_and_the_retried_table_is_byte_identical() {
    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    assert_eq!(baseline.status.code(), Some(0), "{}", stderr(&baseline));

    let out = repro(&[
        "--experiment",
        "table3",
        "--instrs",
        "2000",
        "--workers",
        "2",
        "--point-timeout",
        "30",
        "--heartbeat-ms",
        "500",
        "--retries",
        "1",
        "--backoff-ms",
        "1",
        "--inject",
        "point=table3:2,hang*1",
    ]);
    assert_eq!(out.status.code(), Some(0), "retry must recover: {}", stderr(&out));
    assert_eq!(stdout(&out), stdout(&baseline), "recovered table must be byte-identical");
}

/// Without retries, the killed worker's point renders as a transient
/// heartbeat failure instead of wedging the run.
#[test]
fn a_hung_worker_without_retries_fails_its_cell_with_the_heartbeat_reason() {
    let out = repro(&[
        "--experiment",
        "table3",
        "--instrs",
        "2000",
        "--workers",
        "2",
        "--heartbeat-ms",
        "400",
        "--inject",
        "point=table3:2,hang",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("FAILED(worker hung (no heartbeat for 400ms))"), "{text}");
    assert!(text.contains("porky"), "sibling rows still render: {text}");
}

/// The in-process deadline: a hang with `--point-timeout` but no workers
/// resolves cooperatively into a typed timeout cell.
#[test]
fn an_in_process_hang_times_out_with_the_deadline_reason() {
    let out = repro(&[
        "--experiment",
        "table3",
        "--instrs",
        "2000",
        "--point-timeout",
        "1",
        "--inject",
        "point=table3:2,hang",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stdout(&out).contains("FAILED(timeout after 1s)"), "{}", stdout(&out));
}

/// `exitcode=<n>` kills the worker with that code; the parent reports a
/// worker death, and one retry recovers byte-identically.
#[test]
fn an_injected_exitcode_fault_is_retried_like_any_worker_death() {
    let baseline = repro(&["--experiment", "table4", "--instrs", "2000"]);
    let out = repro(&[
        "--experiment",
        "table4",
        "--instrs",
        "2000",
        "--workers",
        "2",
        "--retries",
        "1",
        "--backoff-ms",
        "1",
        "--inject",
        "point=table4:1,exitcode=7*1",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), stdout(&baseline));
}

/// A transient injected error burns out after its attempt limit, so
/// `--retries` converges to the uninjected table in-process too.
#[test]
fn transient_errors_retry_in_process_and_converge() {
    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    let out = repro(&[
        "--experiment",
        "table3",
        "--instrs",
        "2000",
        "--retries",
        "2",
        "--backoff-ms",
        "1",
        "--inject",
        "point=table3:0,err*1;point=table3:4,err*2",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert_eq!(stdout(&out), stdout(&baseline));
}

// ---------------------------------------------------------------------
// Chaos soak: seeded kills + hangs vs the uninjected run
// ---------------------------------------------------------------------

/// The chaos-soak harness: `soak=<permille>@<seed>` kills or freezes a
/// seeded sample of first-attempt points at the process level; with
/// supervision on, the sweep's final table must be byte-identical to a
/// run with no injection at all.
#[test]
fn chaos_soak_under_supervision_is_byte_identical_to_the_clean_sweep() {
    let sweep = "policy=Res,Pess cache=8K penalty=5,20 metric=ispi";
    let baseline = repro(&["--sweep", sweep, "--instrs", "2000"]);
    assert_eq!(baseline.status.code(), Some(0), "{}", stderr(&baseline));

    let out = repro(&[
        "--sweep",
        sweep,
        "--instrs",
        "2000",
        "--workers",
        "2",
        "--point-timeout",
        "30",
        "--heartbeat-ms",
        "500",
        "--retries",
        "3",
        "--backoff-ms",
        "1",
        "--inject",
        "soak=250@7",
    ]);
    assert_eq!(out.status.code(), Some(0), "soak must fully recover: {}", stderr(&out));
    assert_eq!(stdout(&out), stdout(&baseline), "soaked sweep must match the clean one");
}

// ---------------------------------------------------------------------
// Negative cache
// ---------------------------------------------------------------------

/// A terminal failure is negatively cached: the re-run replays the
/// FAILED cell from the store without recomputing, and `--retry-failed`
/// opts back into recomputation (whose success overwrites the entry).
#[test]
fn terminal_failures_replay_from_the_negative_cache_until_retry_failed() {
    let dir = scratch("negcache");
    let dir_s = dir.to_str().unwrap();
    let base = ["--experiment", "table3", "--instrs", "2000", "--result-dir", dir_s];

    let first = repro(&[&base[..], &["--inject", "point=table3:2,panic"]].concat());
    assert_eq!(first.status.code(), Some(1), "{}", stderr(&first));
    assert!(stdout(&first).contains("FAILED(injected panic)"));
    let (_, first_stores) = store_stats(&stderr(&first));

    // No injection this time — yet the failure replays from the store.
    let replay = repro(&base);
    assert_eq!(replay.status.code(), Some(1), "{}", stderr(&replay));
    assert!(
        stdout(&replay).contains("FAILED(injected panic)"),
        "the cached reason replays verbatim: {}",
        stdout(&replay)
    );
    let (replay_hits, replay_stores) = store_stats(&stderr(&replay));
    assert_eq!(replay_stores, 0, "a negatively cached run recomputes nothing");
    assert_eq!(replay_hits, first_stores, "every entry, failed one included, is a hit");

    // Opting back in recomputes the bad point and heals the store.
    let healed = repro(&[&base[..], &["--retry-failed"]].concat());
    assert_eq!(healed.status.code(), Some(0), "{}", stderr(&healed));
    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    assert_eq!(stdout(&healed), stdout(&baseline), "healed table matches a clean run");

    let warm = repro(&base);
    assert_eq!(warm.status.code(), Some(0), "the healed entry persists");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Graceful shutdown + journal resume
// ---------------------------------------------------------------------

/// SIGINT mid-sweep: the run drains, flushes store + journal, reports a
/// partial summary, and exits 130. The `--resume` run replays every
/// completed point from the store (hits == the killed run's stores) and
/// produces the same bytes as a never-interrupted run.
#[test]
fn sigint_mid_run_exits_130_and_resume_recomputes_no_completed_point() {
    let dir = scratch("sigint");
    let dir_s = dir.to_str().unwrap();
    std::fs::create_dir_all(&dir).unwrap();

    // Point 5 hangs forever (no deadline), pinning the run mid-sweep
    // while every other point completes and lands in the store.
    let child = Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args([
            "--experiment",
            "table3",
            "--instrs",
            "2000",
            "--result-dir",
            dir_s,
            "--inject",
            "point=table3:5,hang",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning specfetch-repro");

    // Wait until real progress is on disk, then interrupt gracefully.
    let started = Instant::now();
    while store_entries(&dir) < 3 {
        assert!(started.elapsed() < Duration::from_secs(60), "no store progress before SIGINT");
        std::thread::sleep(Duration::from_millis(50));
    }
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("sending SIGINT");
    assert!(kill.success(), "kill -INT must succeed");
    let killed = child.wait_with_output().expect("waiting for the interrupted run");

    assert_eq!(killed.status.code(), Some(130), "graceful interrupt exits 130");
    let err = stderr(&killed);
    assert!(err.contains("interrupted —"), "partial summary on stderr: {err}");
    let (_, killed_stores) = store_stats(&err);
    assert!(killed_stores >= 3, "completed points persisted before exit: {err}");
    let wals: Vec<_> = std::fs::read_dir(dir.join("journal"))
        .expect("journal dir exists")
        .flatten()
        .map(|e| e.file_name().into_string().unwrap())
        .collect();
    assert_eq!(wals.len(), 1, "one journal per run key: {wals:?}");
    assert!(wals[0].starts_with("run-") && wals[0].ends_with(".wal"), "{wals:?}");

    // Resume: every completed point is a store hit — zero recomputation
    // of finished work — and the output matches a clean run.
    let resumed =
        repro(&["--experiment", "table3", "--instrs", "2000", "--result-dir", dir_s, "--resume"]);
    assert_eq!(resumed.status.code(), Some(0), "{}", stderr(&resumed));
    let (hits, stores) = store_stats(&stderr(&resumed));
    assert_eq!(hits, killed_stores, "every completed point must resume as a hit");
    assert!(stores > 0, "the interrupted remainder is computed");

    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    assert_eq!(stdout(&resumed), stdout(&baseline), "resume must not change the report");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// SIGINT while worker children are in flight: interactively, a Ctrl-C
/// SIGINTs the whole foreground process group, so the handler-less
/// children die and their unfinished points surface as *transient*
/// worker failures. Those are interruptions, not failures — the journal
/// must record them as interrupted (never negatively cache them), and
/// `--resume` must recompute them instead of replaying
/// `FAILED(worker hung ...)` cells.
#[test]
fn sigint_with_workers_resumes_in_flight_transients_instead_of_replaying_them() {
    let dir = scratch("sigint-workers");
    let dir_s = dir.to_str().unwrap();
    std::fs::create_dir_all(&dir).unwrap();

    // Point 5 freezes its worker; the generous heartbeat window keeps
    // that group in flight long after the store shows real progress, so
    // the SIGINT below lands mid-drive and the eventual heartbeat kill
    // resolves under an already-requested shutdown.
    let child = Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args([
            "--experiment",
            "table3",
            "--instrs",
            "2000",
            "--result-dir",
            dir_s,
            "--workers",
            "2",
            "--heartbeat-ms",
            "8000",
            "--inject",
            "point=table3:5,hang",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning specfetch-repro");

    let started = Instant::now();
    while store_entries(&dir) < 1 {
        assert!(started.elapsed() < Duration::from_secs(60), "no store progress before SIGINT");
        std::thread::sleep(Duration::from_millis(50));
    }
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("sending SIGINT");
    assert!(kill.success(), "kill -INT must succeed");
    let killed = child.wait_with_output().expect("waiting for the interrupted run");
    assert_eq!(killed.status.code(), Some(130), "graceful interrupt exits 130");

    // No injection this time: if the hung point had been journaled as a
    // terminal failure, this would replay its FAILED cell (exit 1 and a
    // different table) instead of recomputing it.
    let resumed =
        repro(&["--experiment", "table3", "--instrs", "2000", "--result-dir", dir_s, "--resume"]);
    assert_eq!(resumed.status.code(), Some(0), "{}", stderr(&resumed));
    let baseline = repro(&["--experiment", "table3", "--instrs", "2000"]);
    assert_eq!(stdout(&resumed), stdout(&baseline), "interrupted points must recompute");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A first invocation that already passes `--resume` (nothing to replay
/// yet) must still create a headed journal the next `--resume` can load.
#[test]
fn a_first_invocation_with_resume_writes_a_loadable_journal() {
    let dir = scratch("fresh-resume");
    let base =
        ["--experiment", "table3", "--instrs", "2000", "--result-dir", dir.to_str().unwrap()];
    let first = repro(&[&base[..], &["--resume"]].concat());
    assert_eq!(first.status.code(), Some(0), "{}", stderr(&first));

    let second = repro(&[&base[..], &["--resume"]].concat());
    assert_eq!(second.status.code(), Some(0), "the journal must reload: {}", stderr(&second));
    let (hits, stores) = store_stats(&stderr(&second));
    assert_eq!(stores, 0, "the resumed rerun recomputes nothing");
    assert!(hits > 0, "completed points resume as store hits");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sweep journal events must carry the `sweep` experiment id, exactly
/// like `run_experiment` journals its id — not an empty field.
#[test]
fn sweep_journal_events_carry_the_sweep_experiment_id() {
    let dir = scratch("sweep-journal");
    let out = repro(&[
        "--sweep",
        "policy=Res,Pess cache=8K metric=ispi",
        "--instrs",
        "2000",
        "--result-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let wal = std::fs::read_dir(dir.join("journal"))
        .expect("journal dir exists")
        .flatten()
        .next()
        .expect("one journal per run")
        .path();
    let text = std::fs::read_to_string(&wal).unwrap();
    assert!(text.lines().any(|l| l.starts_with("s sweep ")), "scheduled events: {text}");
    assert!(text.lines().any(|l| l.starts_with("c sweep ")), "completed events: {text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Worker protocol handshake
// ---------------------------------------------------------------------

/// A version-mismatched hello is refused with a typed protocol error,
/// not a parse failure further into the stream.
#[test]
fn worker_protocol_version_mismatch_is_a_typed_error() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning worker");
    child
        .stdin
        .take()
        .expect("worker stdin")
        .write_all(b"{\"kind\":\"hello\",\"proto\":99}\n")
        .expect("writing hello");
    let out = child.wait_with_output().expect("waiting for worker");
    assert_eq!(out.status.code(), Some(1), "mismatch is fatal");
    let err = stderr(&out);
    assert!(
        err.contains("protocol") && err.contains("v99") && err.contains("v2"),
        "typed mismatch on stderr: {err}"
    );
    assert!(stdout(&out).is_empty(), "no protocol traffic after a refused hello");
}

/// A worker probed with EOF (no hello at all) exits cleanly — that is
/// the pool's spawn probe.
#[test]
fn worker_with_immediate_eof_exits_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .arg("--worker")
        .stdin(Stdio::null())
        .output()
        .expect("spawning worker");
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

// ---------------------------------------------------------------------
// CLI validation
// ---------------------------------------------------------------------

#[test]
fn resume_without_a_result_dir_is_a_usage_error() {
    let out = repro(&["--experiment", "table3", "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--resume needs --result-dir"), "{}", stderr(&out));

    let dir = scratch("resume-usage");
    let out = repro(&[
        "--experiment",
        "table3",
        "--result-dir",
        dir.to_str().unwrap(),
        "--no-result-store",
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--no-result-store"), "{}", stderr(&out));
}

#[test]
fn bad_supervision_flag_values_exit_2() {
    for args in [
        &["--retries", "x"][..],
        &["--point-timeout", "-1"][..],
        &["--backoff-ms", "ten"][..],
        &["--heartbeat-ms", "0"][..],
        // Below the ~100ms child beat interval every healthy worker
        // would read as hung; the CLI requires at least twice the beat.
        &["--heartbeat-ms", "199"][..],
    ] {
        let out = repro(&[&["--experiment", "table3"][..], args].concat());
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
    }
}
