//! End-to-end tests of `specfetch-repro --serve`: a real server on an
//! ephemeral port, driven over real sockets — submit, poll, fetch the
//! result, cancel, and the 400 paths.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// The CI sweep both the HTTP job and the CLI comparison run.
const SWEEP: &str = "policy=Res,Pess cache=8K penalty=5 metric=ispi";
const INSTRS: &str = "2000";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specfetch-serve-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

/// A `--serve` child on an ephemeral port, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `specfetch-repro --serve 127.0.0.1:0 <extra...>` and
    /// reads the announced address off stderr.
    fn spawn(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
            .args(["--serve", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning --serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before announcing its address")
                .expect("reading server stderr");
            if let Some(addr) = line.strip_prefix("[serve] listening on ") {
                break addr.to_owned();
            }
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    /// One HTTP request; returns (status, body). Chunked bodies are
    /// de-chunked.
    fn request(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connecting to server");
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        stream.write_all(req.as_bytes()).expect("writing request");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("reading response");
        let response = String::from_utf8(response).expect("utf-8 response");
        let (head, payload) = response.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 =
            head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
        let payload = if head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
            dechunk(payload)
        } else {
            payload.to_owned()
        };
        (status, payload)
    }

    /// Polls `GET /jobs/<id>` until `pred(state)` holds, with a
    /// generous deadline (this container has one slow CPU).
    fn poll_until(&self, id: u64, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(240);
        loop {
            let (status, body) = self.request("GET", &format!("/jobs/{id}"), None);
            assert_eq!(status, 200, "{body}");
            let state = json_field(&body, "state");
            if pred(&state) {
                return body;
            }
            assert!(Instant::now() < deadline, "job {id} stuck: {body}");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn dechunk(payload: &str) -> String {
    let mut rest = payload;
    let mut out = String::new();
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).expect("chunk size");
        if size == 0 {
            break;
        }
        out.push_str(&after[..size]);
        rest = &after[size + 2..]; // skip the chunk's trailing CRLF
    }
    out
}

/// Pulls a `"key":"value"` or `"key":123` field out of a one-object
/// JSON body (the server renders flat, predictable objects).
fn json_field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {body}")) + pat.len();
    let rest = &body[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        inner[..inner.find('"').expect("closing quote")].to_owned()
    } else {
        rest[..rest.find([',', '}']).expect("value end")].to_owned()
    }
}

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_specfetch-repro"))
        .args(args)
        .output()
        .expect("spawning specfetch-repro")
}

#[test]
fn submitted_sweep_result_is_byte_identical_to_the_cli() {
    let server = Server::spawn(&[]);

    let body = format!("{{\"sweep\":\"{SWEEP}\",\"instrs\":{INSTRS}}}");
    let (status, resp) = server.request("POST", "/jobs", Some(&body));
    assert_eq!(status, 201, "{resp}");
    let id: u64 = json_field(&resp, "id").parse().unwrap();
    assert_eq!(json_field(&resp, "state"), "queued");

    // The result endpoint must refuse until the job is terminal.
    let (status, early) = server.request("GET", &format!("/jobs/{id}/result"), None);
    if status != 200 {
        assert_eq!(status, 409, "{early}");
        assert!(early.contains("not finished"), "{early}");
    }

    let done = server.poll_until(id, |s| s == "done" || s == "failed" || s == "cancelled");
    assert_eq!(json_field(&done, "state"), "done", "{done}");
    assert_eq!(json_field(&done, "spec"), format!("sweep:{SWEEP}"));

    let (status, http_result) = server.request("GET", &format!("/jobs/{id}/result"), None);
    assert_eq!(status, 200);

    let out = cli(&["--sweep", SWEEP, "--instrs", INSTRS]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let cli_stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(http_result, cli_stdout, "HTTP result must be the CLI's stdout, byte for byte");

    // The streamed rows cover the sweep's grid and are terminated.
    let (status, rows) = server.request("GET", &format!("/jobs/{id}/stream"), None);
    assert_eq!(status, 200);
    assert!(rows.lines().all(|l| l.starts_with("[row] ")), "{rows}");
    assert!(rows.matches("[row] ").count() >= 2, "both policies stream: {rows}");
}

#[test]
fn listing_matches_the_cli_json_listing_and_unknown_routes_404() {
    let server = Server::spawn(&[]);
    let (status, listing) = server.request("GET", "/experiments", None);
    assert_eq!(status, 200);

    let out = cli(&["--list", "--json"]);
    assert!(out.status.success());
    assert_eq!(listing, String::from_utf8(out.stdout).unwrap(), "one listing, two facades");

    let (status, _) = server.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, body) = server.request("GET", "/jobs/999", None);
    assert_eq!(status, 404, "{body}");
    let (status, _) = server.request("GET", "/jobs/not-a-number", None);
    assert_eq!(status, 400);
}

#[test]
fn bad_submissions_are_400s_with_hints() {
    let server = Server::spawn(&[]);

    // Malformed JSON (no recognizable field at all).
    let (status, body) = server.request("POST", "/jobs", Some("this is not json"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains(r#"naming \"experiment\" or \"sweep\""#), "{body}");

    // Unknown experiment id: rejected with the CLI's did-you-mean hint.
    let (status, body) = server.request("POST", "/jobs", Some("{\"experiment\":\"tabel3\"}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown experiment"), "{body}");
    assert!(body.contains("did you mean \\\"table3\\\"?"), "{body}");

    // Bad sweep grammar: the sweep parser's own hint comes through.
    let (status, body) = server.request("POST", "/jobs", Some("{\"sweep\":\"polcy=Res\"}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("did you mean"), "{body}");

    // Both selections at once.
    let (status, body) =
        server.request("POST", "/jobs", Some("{\"experiment\":\"all\",\"sweep\":\"cache=8K\"}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("mutually exclusive"), "{body}");

    // A zero instruction budget.
    let (status, body) =
        server.request("POST", "/jobs", Some("{\"experiment\":\"all\",\"instrs\":0}"));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("positive"), "{body}");
}

#[test]
fn cancelling_a_running_job_drains_and_journals_interrupted_points() {
    let dir = scratch("cancel");
    let server = Server::spawn(&["--result-dir", dir.to_str().unwrap()]);

    // table5 has the biggest grid, and a budget big enough that
    // cancellation always lands mid-grid on this container while
    // draining stays quick.
    let (status, resp) =
        server.request("POST", "/jobs", Some("{\"experiment\":\"table5\",\"instrs\":200000}"));
    assert_eq!(status, 201, "{resp}");
    let id: u64 = json_field(&resp, "id").parse().unwrap();

    // Wait until the grid has actually journalled scheduled points, so
    // the cancellation is guaranteed to drain some of them.
    server.poll_until(id, |s| s == "running");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = server.request("GET", &format!("/jobs/{id}"), None);
        if body.contains("\"progress\":{")
            && json_field(&body, "scheduled").parse::<u64>().unwrap_or(0) > 0
        {
            break;
        }
        assert!(Instant::now() < deadline, "no points ever scheduled: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, resp) = server.request("DELETE", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200, "{resp}");
    assert!(matches!(json_field(&resp, "state").as_str(), "draining" | "cancelled"), "{resp}");

    let terminal = server.poll_until(id, |s| s == "done" || s == "failed" || s == "cancelled");
    assert_eq!(json_field(&terminal, "state"), "cancelled", "{terminal}");

    // Cancelling again is a no-op, and the partial result is served.
    let (status, resp) = server.request("DELETE", &format!("/jobs/{id}"), None);
    assert_eq!(status, 200);
    assert_eq!(json_field(&resp, "state"), "cancelled");
    let (status, _) = server.request("GET", &format!("/jobs/{id}/result"), None);
    assert_eq!(status, 200);

    // The per-job journal recorded the drained points as interrupted
    // (`i <experiment> <idx>` records under jobs/job-<id>/journal/).
    let journal_dir = dir.join("jobs").join(format!("job-{id}")).join("journal");
    let wal = std::fs::read_dir(&journal_dir)
        .unwrap_or_else(|e| panic!("{}: {e}", journal_dir.display()))
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("run-"))
        .expect("a run-*.wal journal");
    let text = std::fs::read_to_string(wal.path()).unwrap();
    let interrupted = text
        .lines()
        .filter_map(|l| l.rsplit_once('|').map(|(payload, _)| payload))
        .filter(|p| p.starts_with("i "))
        .count();
    assert!(interrupted > 0, "drained points must journal as interrupted:\n{text}");

    std::fs::remove_dir_all(&dir).ok();
}
